//! Property tests for the causal substrate: d-separation against a
//! brute-force path enumeration oracle on random DAGs, and SEM sampling
//! invariants.

use std::collections::BTreeSet;

use explainit_causal::{d_separated, Dag, NodeId};
use proptest::prelude::*;

/// Random small DAG: edges only from lower to higher index (guarantees
/// acyclicity).
fn dag_strategy(n: usize) -> impl Strategy<Value = Dag> {
    proptest::collection::vec(any::<bool>(), n * (n - 1) / 2).prop_map(move |mask| {
        let mut dag = Dag::new();
        for i in 0..n {
            dag.add_node(format!("n{i}"));
        }
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if mask[k] {
                    dag.add_edge(NodeId(i), NodeId(j));
                }
                k += 1;
            }
        }
        dag
    })
}

/// Brute-force d-separation oracle: enumerate all undirected paths between
/// x and y and test each for activeness under Z using the chain/fork/
/// collider rules.
fn d_separated_oracle(dag: &Dag, x: NodeId, y: NodeId, z: &BTreeSet<NodeId>) -> bool {
    // Build undirected adjacency with direction info.
    let n = dag.len();
    let mut paths: Vec<Vec<NodeId>> = Vec::new();
    let mut stack = vec![(x, vec![x])];
    while let Some((cur, path)) = stack.pop() {
        if cur == y {
            paths.push(path);
            continue;
        }
        if path.len() > n {
            continue;
        }
        let mut neighbours: Vec<NodeId> = dag.children(cur).to_vec();
        neighbours.extend_from_slice(dag.parents(cur));
        for next in neighbours {
            if !path.contains(&next) {
                let mut p = path.clone();
                p.push(next);
                stack.push((next, p));
            }
        }
    }
    // A path is active iff every interior node passes its rule.
    'paths: for path in &paths {
        for w in path.windows(3) {
            let (a, m, b) = (w[0], w[1], w[2]);
            let into_m_from_a = dag.children(a).contains(&m);
            let into_m_from_b = dag.children(b).contains(&m);
            let is_collider = into_m_from_a && into_m_from_b;
            if is_collider {
                // Open iff m or a descendant of m is in Z.
                let mut open = z.contains(&m);
                if !open {
                    for d in dag.descendants(m) {
                        if z.contains(&d) {
                            open = true;
                            break;
                        }
                    }
                }
                if !open {
                    continue 'paths;
                }
            } else if z.contains(&m) {
                continue 'paths; // chain/fork blocked
            }
        }
        return false; // found an active path
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bayes_ball_matches_brute_force(dag in dag_strategy(6), z_mask in proptest::collection::vec(any::<bool>(), 6)) {
        let x = NodeId(0);
        let y = NodeId(5);
        let z: BTreeSet<NodeId> = (1..5)
            .filter(|&i| z_mask[i])
            .map(NodeId)
            .collect();
        let fast = d_separated(&dag, x, y, &z);
        let slow = d_separated_oracle(&dag, x, y, &z);
        prop_assert_eq!(fast, slow, "disagreement on {:?} with Z={:?}", dag.edges(), z);
    }

    #[test]
    fn dsep_is_symmetric(dag in dag_strategy(6)) {
        let z = BTreeSet::from([NodeId(2), NodeId(3)]);
        let a = d_separated(&dag, NodeId(0), NodeId(5), &z);
        let b = d_separated(&dag, NodeId(5), NodeId(0), &z);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ancestors_and_descendants_are_dual(dag in dag_strategy(7)) {
        for i in 0..7 {
            for j in 0..7 {
                if i == j {
                    continue;
                }
                let i_anc_of_j = dag.ancestors(NodeId(j)).contains(&NodeId(i));
                let j_desc_of_i = dag.descendants(NodeId(i)).contains(&NodeId(j));
                prop_assert_eq!(i_anc_of_j, j_desc_of_i);
            }
        }
    }

    #[test]
    fn topological_order_is_valid(dag in dag_strategy(8)) {
        let order = dag.topological_order();
        prop_assert_eq!(order.len(), 8);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (f, t) in dag.edges() {
            prop_assert!(pos[&f] < pos[&t]);
        }
    }

    #[test]
    fn disconnected_nodes_always_separated(n_edges_mask in proptest::collection::vec(any::<bool>(), 10)) {
        // Two components: nodes 0-2 and 3-5, never connected.
        let mut dag = Dag::new();
        for i in 0..6 {
            dag.add_node(format!("n{i}"));
        }
        let pairs = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
        for (k, &(a, b)) in pairs.iter().enumerate() {
            if n_edges_mask[k % n_edges_mask.len()] {
                dag.add_edge(NodeId(a), NodeId(b));
            }
        }
        let empty = BTreeSet::new();
        prop_assert!(d_separated(&dag, NodeId(0), NodeId(3), &empty));
        prop_assert!(d_separated(&dag, NodeId(2), NodeId(5), &empty));
    }
}
