//! Causal Bayesian network substrate.
//!
//! §3.1 of the paper models the monitored system as an unknown causal
//! Bayesian network and reduces root-cause analysis to probing conditional
//! (in)dependence structure. This crate provides:
//!
//! * [`Dag`] — directed acyclic graphs with ancestor/descendant queries and
//!   **d-separation** (the graphical criterion the Causal Markov /
//!   Faithfulness assumptions connect to statistical independence);
//! * [`LinearGaussianSem`] — linear Gaussian structural equation models for
//!   sampling synthetic observational data with known ground truth (used by
//!   the workload simulator and by the soundness property tests);
//! * [`ci`] — conditional-independence tests on data (partial correlation
//!   with Fisher's z), the statistical primitive of constraint-based
//!   discovery;
//! * [`pc`] — the PC skeleton-discovery algorithm (Spirtes et al.),
//!   referenced by the paper (§3.3, §7) as the classical baseline that
//!   ExplainIt!'s targeted hypothesis queries generalise.

#![forbid(unsafe_code)]

pub mod ci;
pub mod dag;
pub mod dsep;
pub mod pc;
pub mod sem;

pub use ci::{fisher_z_test, partial_correlation, CiTest};
pub use dag::{Dag, NodeId};
pub use dsep::d_separated;
pub use pc::{pc_skeleton, PcConfig, Skeleton};
pub use sem::{LinearGaussianSem, NodeSpec};
