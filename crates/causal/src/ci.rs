//! Conditional-independence testing on data: partial correlation with
//! Fisher's z transform.
//!
//! The PC baseline (§3.3/§7) and the engine's validation suites need a
//! classical CI test: `X ⊥ Y | Z` for univariate X, Y and a small
//! conditioning set Z. For jointly Gaussian data the partial correlation is
//! zero iff the conditional independence holds — the same fact Appendix B
//! proves for the residual-regression score.

use explainit_linalg::{Cholesky, Matrix};
use explainit_stats::{pearson, Normal};

/// Computes the partial correlation of columns `x` and `y` given the columns
/// in `z` (all column indices into `data`).
///
/// Uses the precision-matrix identity: invert the correlation matrix of
/// `[x, y, z...]`; the partial correlation is
/// `-P_xy / sqrt(P_xx P_yy)`. A tiny ridge is added when the correlation
/// matrix is numerically singular.
///
/// # Panics
/// Panics if indices overlap or exceed the column count.
pub fn partial_correlation(data: &Matrix, x: usize, y: usize, z: &[usize]) -> f64 {
    assert!(x != y, "x and y must differ");
    assert!(!z.contains(&x) && !z.contains(&y), "z must exclude x and y");
    let mut cols = vec![x, y];
    cols.extend_from_slice(z);
    let k = cols.len();
    // Build the correlation matrix of the selected columns.
    let selected: Vec<Vec<f64>> = cols.iter().map(|&c| data.column(c)).collect();
    let mut corr = Matrix::identity(k);
    for i in 0..k {
        for j in (i + 1)..k {
            let r = pearson(&selected[i], &selected[j]);
            corr[(i, j)] = r;
            corr[(j, i)] = r;
        }
    }
    // Invert (with escalating jitter for near-singular inputs).
    let mut jitter = 0.0;
    let precision = loop {
        let mut m = corr.clone();
        if jitter > 0.0 {
            m.add_diagonal(jitter);
        }
        match Cholesky::factor(&m).and_then(|c| c.inverse()) {
            Ok(inv) => break inv,
            Err(_) => {
                jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                assert!(jitter < 1.0, "correlation matrix irrecoverably singular");
            }
        }
    };
    let denom = (precision[(0, 0)] * precision[(1, 1)]).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (-precision[(0, 1)] / denom).clamp(-1.0, 1.0)
}

/// Fisher z-test of zero partial correlation.
///
/// Returns the two-sided p-value for the hypothesis that the partial
/// correlation is zero, given `n` samples and `|z|` conditioning variables.
/// Returns 1.0 when the effective sample size is too small.
pub fn fisher_z_test(partial_corr: f64, n: usize, z_size: usize) -> f64 {
    let df = n as f64 - z_size as f64 - 3.0;
    if df <= 0.0 {
        return 1.0;
    }
    let r = partial_corr.clamp(-0.999_999, 0.999_999);
    let z = 0.5 * ((1.0 + r) / (1.0 - r)).ln() * df.sqrt();
    let normal = Normal::standard();
    (2.0 * normal.sf(z.abs())).clamp(0.0, 1.0)
}

/// A reusable CI test with a significance level.
#[derive(Debug, Clone, Copy)]
pub struct CiTest {
    /// Significance level; p-values above it mean "independent".
    pub alpha: f64,
}

impl CiTest {
    /// Creates a test at the given level.
    ///
    /// # Panics
    /// Panics unless `alpha` is in `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        CiTest { alpha }
    }

    /// True when the test *fails to reject* independence of columns `x` and
    /// `y` given `z` — i.e. the data looks conditionally independent.
    pub fn independent(&self, data: &Matrix, x: usize, y: usize, z: &[usize]) -> bool {
        let pc = partial_correlation(data, x, y, z);
        fisher_z_test(pc, data.nrows(), z.len()) > self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::sem::{LinearGaussianSem, NodeSpec};
    use std::collections::HashMap;

    fn chain_data(n: usize, seed: u64) -> Matrix {
        // Z -> Y -> X, column order is insertion order: Z=0, Y=1, X=2.
        let mut dag = Dag::new();
        dag.add_edge_by_name("Z", "Y");
        dag.add_edge_by_name("Y", "X");
        let mut specs = HashMap::new();
        specs.insert("Z".into(), NodeSpec::default().noise(1.0));
        specs.insert("Y".into(), NodeSpec::with_weights(&[("Z", 1.5)]).noise(0.7));
        specs.insert("X".into(), NodeSpec::with_weights(&[("Y", 1.2)]).noise(0.7));
        LinearGaussianSem::new(dag, specs).sample(n, seed)
    }

    #[test]
    fn marginal_equals_pearson() {
        let data = chain_data(500, 1);
        let pc = partial_correlation(&data, 0, 2, &[]);
        let r = pearson(&data.column(0), &data.column(2));
        assert!((pc - r).abs() < 1e-9);
    }

    #[test]
    fn chain_conditioning_kills_correlation() {
        let data = chain_data(3000, 2);
        let marginal = partial_correlation(&data, 0, 2, &[]);
        let conditional = partial_correlation(&data, 0, 2, &[1]);
        assert!(marginal.abs() > 0.5, "marginal {marginal}");
        assert!(conditional.abs() < 0.08, "conditional {conditional}");
    }

    #[test]
    fn ci_test_verdicts_on_chain() {
        let data = chain_data(3000, 3);
        let test = CiTest::new(0.01);
        assert!(!test.independent(&data, 0, 2, &[]), "marginally dependent");
        assert!(test.independent(&data, 0, 2, &[1]), "conditionally independent");
        assert!(!test.independent(&data, 0, 1, &[]), "direct edge dependent");
    }

    #[test]
    fn collider_conditioning_creates_dependence() {
        // X -> C <- Y: marginally independent, dependent given C.
        let mut dag = Dag::new();
        dag.add_edge_by_name("X", "C");
        dag.add_edge_by_name("Y", "C");
        let mut specs = HashMap::new();
        specs.insert("X".into(), NodeSpec::default().noise(1.0));
        specs.insert("Y".into(), NodeSpec::default().noise(1.0));
        specs.insert("C".into(), NodeSpec::with_weights(&[("X", 1.0), ("Y", 1.0)]).noise(0.3));
        let data = LinearGaussianSem::new(dag, specs).sample(3000, 4);
        // Column order: X=0, C=1, Y=2.
        let marginal = partial_correlation(&data, 0, 2, &[]);
        let given_c = partial_correlation(&data, 0, 2, &[1]);
        assert!(marginal.abs() < 0.06, "marginal {marginal}");
        assert!(given_c.abs() > 0.3, "collider opens: {given_c}");
    }

    #[test]
    fn fisher_z_pvalue_behaviour() {
        // Strong correlation, many samples: tiny p.
        assert!(fisher_z_test(0.5, 1000, 0) < 1e-10);
        // Zero correlation: p = 1.
        assert!((fisher_z_test(0.0, 1000, 0) - 1.0).abs() < 1e-12);
        // Tiny sample: degenerate p = 1.
        assert_eq!(fisher_z_test(0.9, 3, 1), 1.0);
        // Larger conditioning set weakens evidence (higher p).
        let p_small_z = fisher_z_test(0.1, 50, 0);
        let p_big_z = fisher_z_test(0.1, 50, 30);
        assert!(p_big_z > p_small_z);
    }

    #[test]
    #[should_panic(expected = "must exclude")]
    fn overlapping_z_rejected() {
        let data = chain_data(100, 5);
        partial_correlation(&data, 0, 2, &[0]);
    }
}
