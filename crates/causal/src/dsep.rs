//! d-separation: the graphical criterion for conditional independence.
//!
//! Under the Causal Markov and Faithfulness assumptions (§3.1 of the paper),
//! `X ⊥ Y | Z` in the data *iff* X and Y are d-separated by Z in the causal
//! DAG. The engine's residual-regression score is a statistical test of the
//! left side; this module computes the right side, which the property tests
//! use to validate the scorer end-to-end on synthetic SEMs.
//!
//! Implementation: the "Bayes ball" reachability algorithm — walk over
//! `(node, arrival-direction)` states applying the chain/fork/collider
//! opening rules.

use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::dag::{Dag, NodeId};

/// Direction the ball arrived at a node from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    /// Arrived along an edge pointing *into* the node (from a parent).
    FromParent,
    /// Arrived along an edge pointing *out of* the node (from a child).
    FromChild,
}

/// Returns true when `x` and `y` are d-separated given conditioning set `z`.
///
/// # Panics
/// Panics if `x == y` or either endpoint appears in `z` (the paper's
/// hypothesis triples are required to be disjoint, §3.3).
pub fn d_separated(dag: &Dag, x: NodeId, y: NodeId, z: &BTreeSet<NodeId>) -> bool {
    assert!(x != y, "d-separation endpoints must differ");
    assert!(!z.contains(&x) && !z.contains(&y), "conditioning set must exclude endpoints");
    // Precompute: nodes that are in Z or have a descendant in Z (colliders
    // open when they or a descendant is conditioned on).
    let mut z_or_descendant_in_z = vec![false; dag.len()];
    for &zi in z {
        z_or_descendant_in_z[zi.0] = true;
        for a in dag.ancestors(zi) {
            z_or_descendant_in_z[a.0] = true;
        }
    }
    // Wait: we need nodes whose DESCENDANTS include a member of Z, i.e. the
    // ancestors of Z — which is exactly what the loop above marks (plus Z
    // itself). `z_or_descendant_in_z[n]` is true iff n ∈ Z or n has a
    // descendant in Z.
    let in_z = |n: NodeId| z.contains(&n);

    let mut visited: HashSet<(NodeId, Dir)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, Dir)> = VecDeque::new();
    // Start from x as if we came "up" from a child: both parents and
    // children are explorable.
    queue.push_back((x, Dir::FromChild));
    while let Some((node, dir)) = queue.pop_front() {
        if !visited.insert((node, dir)) {
            continue;
        }
        if node == y {
            return false; // active path found
        }
        match dir {
            Dir::FromChild => {
                // Trail ... <- node or start node. If node not in Z we may
                // go to parents (continuing <-) and to children (fork/start).
                if !in_z(node) {
                    for &p in dag.parents(node) {
                        queue.push_back((p, Dir::FromChild));
                    }
                    for &c in dag.children(node) {
                        queue.push_back((c, Dir::FromParent));
                    }
                }
            }
            Dir::FromParent => {
                // Trail ... -> node. Chain continues to children unless node
                // in Z; collider opens towards parents iff node or one of its
                // descendants is in Z.
                if !in_z(node) {
                    for &c in dag.children(node) {
                        queue.push_back((c, Dir::FromParent));
                    }
                }
                if z_or_descendant_in_z[node.0] {
                    for &p in dag.parents(node) {
                        queue.push_back((p, Dir::FromChild));
                    }
                }
            }
        }
    }
    true
}

/// Convenience wrapper taking node names.
///
/// # Panics
/// Panics on unknown names or violated disjointness.
pub fn d_separated_by_name(dag: &Dag, x: &str, y: &str, z: &[&str]) -> bool {
    let xi = dag.node(x).unwrap_or_else(|| panic!("unknown node {x}"));
    let yi = dag.node(y).unwrap_or_else(|| panic!("unknown node {y}"));
    let zs: BTreeSet<NodeId> =
        z.iter().map(|n| dag.node(n).unwrap_or_else(|| panic!("unknown node {n}"))).collect();
    d_separated(dag, xi, yi, &zs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain Z -> Y -> X (paper Figure 1 hypothesis (a)).
    fn chain() -> Dag {
        let mut g = Dag::new();
        g.add_edge_by_name("Z", "Y");
        g.add_edge_by_name("Y", "X");
        g
    }

    /// Fork Y <- Z -> X (paper hypothesis (b)).
    fn fork() -> Dag {
        let mut g = Dag::new();
        g.add_edge_by_name("Z", "Y");
        g.add_edge_by_name("Z", "X");
        g
    }

    /// Collider Y -> Z <- X (paper hypothesis (c)).
    fn collider() -> Dag {
        let mut g = Dag::new();
        g.add_edge_by_name("Y", "Z");
        g.add_edge_by_name("X", "Z");
        g
    }

    #[test]
    fn chain_blocked_by_middle() {
        let g = chain();
        // Z ⊥ X | Y — the paper's §3.1 example of Faithfulness.
        assert!(d_separated_by_name(&g, "Z", "X", &["Y"]));
        assert!(!d_separated_by_name(&g, "Z", "X", &[]));
    }

    #[test]
    fn fork_blocked_by_common_cause() {
        let g = fork();
        assert!(d_separated_by_name(&g, "Y", "X", &["Z"]));
        assert!(!d_separated_by_name(&g, "Y", "X", &[]));
    }

    #[test]
    fn collider_opens_when_conditioned() {
        let g = collider();
        // Marginally independent...
        assert!(d_separated_by_name(&g, "Y", "X", &[]));
        // ...but conditioning on the collider opens the path.
        assert!(!d_separated_by_name(&g, "Y", "X", &["Z"]));
    }

    #[test]
    fn collider_descendant_also_opens() {
        let mut g = collider();
        g.add_edge_by_name("Z", "W");
        assert!(!d_separated_by_name(&g, "Y", "X", &["W"]));
    }

    #[test]
    fn pseudocause_structure_of_fig3() {
        // Figure 3: Cs -> Ys -> Y1 <- Yr <- Cr, conditioning on Ys blocks
        // Cs from Y1 — the justification for pseudocauses.
        let mut g = Dag::new();
        g.add_edge_by_name("Cs", "Ys");
        g.add_edge_by_name("Ys", "Y1");
        g.add_edge_by_name("Cr", "Yr");
        g.add_edge_by_name("Yr", "Y1");
        assert!(!d_separated_by_name(&g, "Cs", "Y1", &[]));
        assert!(d_separated_by_name(&g, "Cs", "Y1", &["Ys"]));
        // And Cr stays connected after that conditioning — the ranking boost.
        assert!(!d_separated_by_name(&g, "Cr", "Y1", &["Ys"]));
    }

    #[test]
    fn diamond_needs_both_paths_blocked() {
        let mut g = Dag::new();
        g.add_edge_by_name("A", "B");
        g.add_edge_by_name("A", "C");
        g.add_edge_by_name("B", "D");
        g.add_edge_by_name("C", "D");
        assert!(!d_separated_by_name(&g, "A", "D", &[]));
        assert!(!d_separated_by_name(&g, "A", "D", &["B"]));
        assert!(d_separated_by_name(&g, "A", "D", &["B", "C"]));
    }

    #[test]
    fn disconnected_nodes_always_separated() {
        let mut g = Dag::new();
        g.add_node("A");
        g.add_node("B");
        assert!(d_separated_by_name(&g, "A", "B", &[]));
    }

    #[test]
    fn conditioning_on_descendant_of_middle_does_not_block_chain() {
        // A -> M -> B, M -> W; conditioning on W alone leaves A-B connected.
        let mut g = Dag::new();
        g.add_edge_by_name("A", "M");
        g.add_edge_by_name("M", "B");
        g.add_edge_by_name("M", "W");
        assert!(!d_separated_by_name(&g, "A", "B", &["W"]));
    }

    #[test]
    #[should_panic(expected = "exclude endpoints")]
    fn conditioning_on_endpoint_rejected() {
        let g = chain();
        let z = BTreeSet::from([g.node("X").unwrap()]);
        d_separated(&g, g.node("X").unwrap(), g.node("Y").unwrap(), &z);
    }
}
