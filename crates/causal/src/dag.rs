//! Directed acyclic graphs with the reachability queries RCA needs.

use std::collections::{BTreeSet, HashMap, VecDeque};

/// Index of a node inside one [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A named DAG stored as forward + reverse adjacency lists.
///
/// The root-cause question of §3.1 — *find the ancestors of the target* — is
/// [`Dag::ancestors`]; the labelling of simulator metrics as cause vs effect
/// uses [`Dag::ancestors`] / [`Dag::descendants`] of the fault node.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds a node, returning its id. Duplicate names return the existing
    /// node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Adds the edge `from → to`.
    ///
    /// # Panics
    /// Panics if the edge would create a cycle (checked eagerly — this type
    /// guarantees acyclicity) or if either id is stale.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.0 < self.names.len() && to.0 < self.names.len(), "stale node id");
        assert!(from != to, "self edges are not allowed");
        if self.children[from.0].contains(&to) {
            return;
        }
        assert!(
            !self.is_reachable(to, from),
            "edge {} -> {} would create a cycle",
            self.names[from.0],
            self.names[to.0]
        );
        self.children[from.0].push(to);
        self.parents[to.0].push(from);
    }

    /// Convenience: add an edge by node names, creating nodes as needed.
    pub fn add_edge_by_name(&mut self, from: &str, to: &str) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        self.add_edge(f, t);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Node id by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Node name by id.
    ///
    /// # Panics
    /// Panics on a stale id.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Direct parents of a node.
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id.0]
    }

    /// Direct children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.0]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// True if `to` is reachable from `from` along directed edges.
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.names.len()];
        let mut queue = VecDeque::from([from]);
        seen[from.0] = true;
        while let Some(cur) = queue.pop_front() {
            for &c in &self.children[cur.0] {
                if c == to {
                    return true;
                }
                if !seen[c.0] {
                    seen[c.0] = true;
                    queue.push_back(c);
                }
            }
        }
        false
    }

    /// All (strict) ancestors of a node.
    pub fn ancestors(&self, id: NodeId) -> BTreeSet<NodeId> {
        self.closure(id, |n| &self.parents[n.0])
    }

    /// All (strict) descendants of a node.
    pub fn descendants(&self, id: NodeId) -> BTreeSet<NodeId> {
        self.closure(id, |n| &self.children[n.0])
    }

    fn closure<'a>(
        &'a self,
        id: NodeId,
        step: impl Fn(NodeId) -> &'a [NodeId],
    ) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([id]);
        while let Some(cur) = queue.pop_front() {
            for &next in step(cur) {
                if out.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Topological order (parents before children). Always succeeds because
    /// edges are cycle-checked on insertion.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.names.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        let mut queue: VecDeque<NodeId> = (0..n).filter(|&i| indeg[i] == 0).map(NodeId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(cur) = queue.pop_front() {
            order.push(cur);
            for &c in &self.children[cur.0] {
                indeg[c.0] -= 1;
                if indeg[c.0] == 0 {
                    queue.push_back(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "cycle detected in supposedly acyclic graph");
        order
    }

    /// Root nodes (no parents).
    pub fn roots(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.parents[n.0].is_empty()).collect()
    }

    /// All directed edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (i, cs) in self.children.iter().enumerate() {
            for &c in cs {
                out.push((NodeId(i), c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 chain: Z -> Y -> X.
    fn chain() -> Dag {
        let mut g = Dag::new();
        g.add_edge_by_name("Z", "Y");
        g.add_edge_by_name("Y", "X");
        g
    }

    #[test]
    fn add_node_dedups() {
        let mut g = Dag::new();
        let a = g.add_node("a");
        let a2 = g.add_node("a");
        assert_eq!(a, a2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn ancestors_and_descendants_of_chain() {
        let g = chain();
        let (z, y, x) = (g.node("Z").unwrap(), g.node("Y").unwrap(), g.node("X").unwrap());
        assert_eq!(g.ancestors(x), BTreeSet::from([z, y]));
        assert_eq!(g.descendants(z), BTreeSet::from([y, x]));
        assert!(g.ancestors(z).is_empty());
        assert!(g.descendants(x).is_empty());
    }

    #[test]
    fn cycle_rejected() {
        let mut g = chain();
        let (z, x) = (g.node("Z").unwrap(), g.node("X").unwrap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.add_edge(x, z);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = chain();
        let (z, y) = (g.node("Z").unwrap(), g.node("Y").unwrap());
        g.add_edge(z, y);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = Dag::new();
        g.add_edge_by_name("a", "c");
        g.add_edge_by_name("b", "c");
        g.add_edge_by_name("c", "d");
        let order = g.topological_order();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (f, t) in g.edges() {
            assert!(pos[&f] < pos[&t], "edge {f:?}->{t:?} violates order");
        }
    }

    #[test]
    fn reachability() {
        let g = chain();
        let (z, x) = (g.node("Z").unwrap(), g.node("X").unwrap());
        assert!(g.is_reachable(z, x));
        assert!(!g.is_reachable(x, z));
        assert!(g.is_reachable(z, z));
    }

    #[test]
    fn roots_detection() {
        let mut g = Dag::new();
        g.add_edge_by_name("r1", "m");
        g.add_edge_by_name("r2", "m");
        let roots = g.roots();
        assert_eq!(roots.len(), 2);
        assert!(roots.contains(&g.node("r1").unwrap()));
    }

    #[test]
    #[should_panic(expected = "self edges")]
    fn self_edge_rejected() {
        let mut g = Dag::new();
        let a = g.add_node("a");
        g.add_edge(a, a);
    }
}
