//! The PC skeleton-discovery algorithm (Spirtes–Glymour–Scheines).
//!
//! §3.3 of the paper notes that "testing any form of dependency (chains,
//! forks, or colliders) in the causal BN can be reduced to scoring a
//! hypothesis for appropriate choices of X, Y, Z; see the PC algorithm for
//! more details", and §7 positions PC/SGS as the full-structure-learning
//! baseline that ExplainIt! deliberately avoids running at scale. This
//! module implements PC's skeleton phase so the repo can demonstrate (and
//! benchmark) that contrast: PC performs `O(p²)` CI tests per conditioning
//! order, while ExplainIt! scores only the user-declared hypotheses.

use std::collections::BTreeSet;

use explainit_linalg::Matrix;

use crate::ci::CiTest;

/// Configuration for the PC skeleton search.
#[derive(Debug, Clone, Copy)]
pub struct PcConfig {
    /// CI-test significance level (edges with p-value above it are cut).
    pub alpha: f64,
    /// Maximum conditioning-set size to try (PC order cap).
    pub max_order: usize,
}

impl Default for PcConfig {
    fn default() -> Self {
        PcConfig { alpha: 0.01, max_order: 3 }
    }
}

/// An undirected skeleton over `n` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    n: usize,
    /// Adjacency sets (symmetric).
    adj: Vec<BTreeSet<usize>>,
    /// Number of CI tests performed during discovery.
    pub tests_run: usize,
}

impl Skeleton {
    /// Complete graph over `n` variables.
    fn complete(n: usize) -> Self {
        let adj = (0..n).map(|i| (0..n).filter(|&j| j != i).collect()).collect();
        Skeleton { n, adj, tests_run: 0 }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when `i — j` is present.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }

    /// Neighbours of `i`.
    pub fn neighbors(&self, i: usize) -> &BTreeSet<usize> {
        &self.adj[i]
    }

    /// All undirected edges as ordered pairs `i < j`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for &j in &self.adj[i] {
                if i < j {
                    out.push((i, j));
                }
            }
        }
        out
    }

    fn remove_edge(&mut self, i: usize, j: usize) {
        self.adj[i].remove(&j);
        self.adj[j].remove(&i);
    }
}

/// Runs the PC skeleton phase on columns of `data`.
///
/// Starts from the complete graph; for conditioning-set order
/// `0..=max_order`, for each remaining edge `i — j`, tests `i ⊥ j | S` for
/// every subset `S` of size `order` drawn from `adj(i) \ {j}`; removes the
/// edge on the first independence found.
pub fn pc_skeleton(data: &Matrix, cfg: &PcConfig) -> Skeleton {
    let n = data.ncols();
    let mut skel = Skeleton::complete(n);
    let test = CiTest::new(cfg.alpha);
    for order in 0..=cfg.max_order {
        // Collect current edges up front; mutate after testing each.
        let edges = skel.edges();
        let mut removed_any = false;
        for (i, j) in edges {
            if !skel.has_edge(i, j) {
                continue;
            }
            // Candidate conditioning variables: neighbours of i without j
            // (the PC-stable variant would snapshot these; order-0/1 results
            // are identical and our graphs are small).
            let candidates: Vec<usize> =
                skel.neighbors(i).iter().copied().filter(|&k| k != j).collect();
            if candidates.len() < order {
                continue;
            }
            let mut cut = false;
            for_subsets(&candidates, order, &mut |subset| {
                if cut {
                    return;
                }
                skel.tests_run += 1;
                if test.independent(data, i, j, subset) {
                    cut = true;
                }
            });
            if cut {
                skel.remove_edge(i, j);
                removed_any = true;
            }
        }
        if !removed_any && order > 0 {
            break;
        }
    }
    skel
}

/// Calls `f` with every `k`-subset of `items` (lexicographic order).
fn for_subsets(items: &[usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == 0 {
        f(&[]);
        return;
    }
    if items.len() < k {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let n = items.len();
    loop {
        let subset: Vec<usize> = idx.iter().map(|&i| items[i]).collect();
        f(&subset);
        // Advance the combination.
        let mut pos = k;
        while pos > 0 {
            pos -= 1;
            if idx[pos] != pos + n - k {
                idx[pos] += 1;
                for later in (pos + 1)..k {
                    idx[later] = idx[later - 1] + 1;
                }
                break;
            }
            if pos == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::sem::{LinearGaussianSem, NodeSpec};
    use std::collections::HashMap;

    #[test]
    fn subset_enumeration() {
        let items = [10, 20, 30, 40];
        let mut seen = Vec::new();
        for_subsets(&items, 2, &mut |s| seen.push(s.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![10, 20]));
        assert!(seen.contains(&vec![30, 40]));
        let mut zero = 0;
        for_subsets(&items, 0, &mut |_| zero += 1);
        assert_eq!(zero, 1);
        let mut none = 0;
        for_subsets(&items[..1], 2, &mut |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn recovers_chain_skeleton() {
        // Z -> Y -> X: skeleton is Z—Y, Y—X (no Z—X).
        let mut dag = Dag::new();
        dag.add_edge_by_name("Z", "Y");
        dag.add_edge_by_name("Y", "X");
        let mut specs = HashMap::new();
        specs.insert("Z".into(), NodeSpec::default().noise(1.0));
        specs.insert("Y".into(), NodeSpec::with_weights(&[("Z", 1.5)]).noise(0.6));
        specs.insert("X".into(), NodeSpec::with_weights(&[("Y", 1.2)]).noise(0.6));
        let data = LinearGaussianSem::new(dag, specs).sample(4000, 11);
        let skel = pc_skeleton(&data, &PcConfig::default());
        // Column order Z=0, Y=1, X=2.
        assert!(skel.has_edge(0, 1));
        assert!(skel.has_edge(1, 2));
        assert!(!skel.has_edge(0, 2), "transitive edge must be cut by conditioning on Y");
    }

    #[test]
    fn recovers_fork_skeleton() {
        let mut dag = Dag::new();
        dag.add_edge_by_name("Z", "A");
        dag.add_edge_by_name("Z", "B");
        let mut specs = HashMap::new();
        specs.insert("Z".into(), NodeSpec::default().noise(1.0));
        specs.insert("A".into(), NodeSpec::with_weights(&[("Z", 1.3)]).noise(0.6));
        specs.insert("B".into(), NodeSpec::with_weights(&[("Z", 1.3)]).noise(0.6));
        let data = LinearGaussianSem::new(dag, specs).sample(4000, 12);
        let skel = pc_skeleton(&data, &PcConfig::default());
        // Column order Z=0, A=1, B=2.
        assert!(skel.has_edge(0, 1) && skel.has_edge(0, 2));
        assert!(!skel.has_edge(1, 2), "siblings disconnect given the parent");
    }

    #[test]
    fn independent_variables_fully_disconnect() {
        let mut dag = Dag::new();
        for name in ["A", "B", "C"] {
            dag.add_node(name);
        }
        let sem = LinearGaussianSem::new(dag, HashMap::new());
        let data = sem.sample(2000, 13);
        let skel = pc_skeleton(&data, &PcConfig::default());
        assert!(skel.edges().is_empty());
    }

    #[test]
    fn test_count_grows_with_density() {
        // Complete-ish data keeps more edges -> more higher-order tests.
        let mut dag = Dag::new();
        dag.add_edge_by_name("A", "B");
        dag.add_edge_by_name("A", "C");
        dag.add_edge_by_name("B", "C");
        let mut specs = HashMap::new();
        specs.insert("A".into(), NodeSpec::default().noise(1.0));
        specs.insert("B".into(), NodeSpec::with_weights(&[("A", 1.0)]).noise(0.5));
        specs.insert("C".into(), NodeSpec::with_weights(&[("A", 1.0), ("B", 1.0)]).noise(0.5));
        let data = LinearGaussianSem::new(dag, specs).sample(2000, 14);
        let skel = pc_skeleton(&data, &PcConfig::default());
        assert!(skel.tests_run >= 3, "at least the order-0 sweep must run");
        // The two edges into the sink C always survive; the A—B edge can be
        // masked by the collider-conditioning cancellation (a near-
        // unfaithful parameterisation), so we don't assert on it.
        assert!(skel.has_edge(0, 2), "A—C must survive");
        assert!(skel.has_edge(1, 2), "B—C must survive");
    }
}
