//! Linear Gaussian structural equation models (SEMs).
//!
//! A SEM over a [`Dag`] assigns every node a linear function of its parents
//! plus independent Gaussian noise, optionally with a deterministic
//! exogenous driver (trend/seasonality/fault pulses). Sampling T steps
//! yields an observational dataset whose ground-truth conditional
//! independence structure is known — the foundation of both the workload
//! simulator and the scorer soundness tests (Appendix B: the conditional
//! score is zero iff `X ⊥ Y | Z` for jointly Gaussian data).

use std::collections::HashMap;

use explainit_linalg::Matrix;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dag::{Dag, NodeId};

/// Per-node structural equation specification.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Coefficient per parent (aligned with `Dag::parents` order at sample
    /// time via the name map; missing parents default to 1.0).
    pub parent_weights: HashMap<String, f64>,
    /// Standard deviation of the independent Gaussian noise term.
    pub noise_std: f64,
    /// Additive offset.
    pub bias: f64,
    /// Optional deterministic exogenous driver evaluated at each step.
    pub driver: Option<fn(usize) -> f64>,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec { parent_weights: HashMap::new(), noise_std: 1.0, bias: 0.0, driver: None }
    }
}

impl NodeSpec {
    /// Spec with unit noise and the given parent weights.
    pub fn with_weights(weights: &[(&str, f64)]) -> Self {
        NodeSpec {
            parent_weights: weights.iter().map(|&(n, w)| (n.to_string(), w)).collect(),
            ..NodeSpec::default()
        }
    }

    /// Builder: set noise standard deviation.
    pub fn noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise std must be non-negative");
        self.noise_std = std;
        self
    }

    /// Builder: set bias.
    pub fn bias(mut self, bias: f64) -> Self {
        self.bias = bias;
        self
    }

    /// Builder: set a deterministic exogenous driver.
    pub fn driver(mut self, f: fn(usize) -> f64) -> Self {
        self.driver = Some(f);
        self
    }
}

/// A linear Gaussian SEM bound to a DAG.
#[derive(Debug, Clone)]
pub struct LinearGaussianSem {
    dag: Dag,
    specs: Vec<NodeSpec>,
}

impl LinearGaussianSem {
    /// Builds a SEM; nodes without an explicit spec get
    /// [`NodeSpec::default`].
    pub fn new(dag: Dag, mut specs: HashMap<String, NodeSpec>) -> Self {
        let ordered: Vec<NodeSpec> =
            (0..dag.len()).map(|i| specs.remove(dag.name(NodeId(i))).unwrap_or_default()).collect();
        assert!(specs.is_empty(), "specs given for unknown nodes: {:?}", specs.keys());
        LinearGaussianSem { dag, specs: ordered }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Samples `t_steps` observations of every node, returning a
    /// `t_steps × n_nodes` matrix whose columns follow `Dag` node order.
    pub fn sample(&self, t_steps: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let order = self.dag.topological_order();
        let n = self.dag.len();
        let mut data = Matrix::zeros(t_steps, n);
        for t in 0..t_steps {
            for &node in &order {
                let spec = &self.specs[node.0];
                let mut v = spec.bias;
                for &p in self.dag.parents(node) {
                    let w = spec.parent_weights.get(self.dag.name(p)).copied().unwrap_or(1.0);
                    v += w * data[(t, p.0)];
                }
                if let Some(driver) = spec.driver {
                    v += driver(t);
                }
                if spec.noise_std > 0.0 {
                    v += spec.noise_std * crate::sem::normal(&mut rng);
                }
                data[(t, node.0)] = v;
            }
        }
        data
    }

    /// Samples and returns one named column per node.
    pub fn sample_named(&self, t_steps: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
        let m = self.sample(t_steps, seed);
        (0..self.dag.len()).map(|i| (self.dag.name(NodeId(i)).to_string(), m.column(i))).collect()
    }
}

/// Box–Muller standard normal (local copy to avoid a dependency edge back to
/// mlkit).
pub(crate) fn normal<R: rand::Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_stats::pearson;

    fn chain_sem() -> LinearGaussianSem {
        // Z -> Y -> X with strong weights and modest noise.
        let mut dag = Dag::new();
        dag.add_edge_by_name("Z", "Y");
        dag.add_edge_by_name("Y", "X");
        let mut specs = HashMap::new();
        specs.insert("Z".into(), NodeSpec::default().noise(1.0));
        specs.insert("Y".into(), NodeSpec::with_weights(&[("Z", 2.0)]).noise(0.5));
        specs.insert("X".into(), NodeSpec::with_weights(&[("Y", 1.5)]).noise(0.5));
        LinearGaussianSem::new(dag, specs)
    }

    #[test]
    fn sample_shape_and_determinism() {
        let sem = chain_sem();
        let a = sem.sample(100, 7);
        let b = sem.sample(100, 7);
        assert_eq!(a.shape(), (100, 3));
        assert_eq!(a, b);
        let c = sem.sample(100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn chain_induces_correlations() {
        let sem = chain_sem();
        let data = sem.sample(2000, 1);
        let z = data.column(sem.dag().node("Z").unwrap().0);
        let y = data.column(sem.dag().node("Y").unwrap().0);
        let x = data.column(sem.dag().node("X").unwrap().0);
        assert!(pearson(&z, &y).abs() > 0.8, "Z-Y should correlate");
        assert!(pearson(&y, &x).abs() > 0.8, "Y-X should correlate");
        assert!(pearson(&z, &x).abs() > 0.6, "Z-X correlate through chain");
    }

    #[test]
    fn noise_free_node_is_deterministic_in_parents() {
        let mut dag = Dag::new();
        dag.add_edge_by_name("A", "B");
        let mut specs = HashMap::new();
        specs.insert("A".into(), NodeSpec::default().noise(1.0));
        specs.insert("B".into(), NodeSpec::with_weights(&[("A", 3.0)]).noise(0.0).bias(2.0));
        let sem = LinearGaussianSem::new(dag, specs);
        let data = sem.sample(50, 3);
        for t in 0..50 {
            let a = data[(t, sem.dag().node("A").unwrap().0)];
            let b = data[(t, sem.dag().node("B").unwrap().0)];
            assert!((b - (3.0 * a + 2.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn driver_shapes_the_series() {
        let mut dag = Dag::new();
        dag.add_node("S");
        let mut specs = HashMap::new();
        fn ramp(t: usize) -> f64 {
            t as f64
        }
        specs.insert("S".into(), NodeSpec::default().noise(0.0).driver(ramp));
        let sem = LinearGaussianSem::new(dag, specs);
        let data = sem.sample(10, 0);
        for t in 0..10 {
            assert_eq!(data[(t, 0)], t as f64);
        }
    }

    #[test]
    fn default_weight_is_one() {
        let mut dag = Dag::new();
        dag.add_edge_by_name("A", "B");
        let mut specs = HashMap::new();
        specs.insert("A".into(), NodeSpec::default().noise(0.0).bias(5.0));
        specs.insert("B".into(), NodeSpec::default().noise(0.0));
        let sem = LinearGaussianSem::new(dag, specs);
        let data = sem.sample(3, 0);
        for t in 0..3 {
            assert_eq!(data[(t, 1)], 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown nodes")]
    fn spec_for_missing_node_rejected() {
        let mut dag = Dag::new();
        dag.add_node("A");
        let mut specs = HashMap::new();
        specs.insert("ZZZ".into(), NodeSpec::default());
        LinearGaussianSem::new(dag, specs);
    }

    #[test]
    fn sample_named_aligns_columns() {
        let sem = chain_sem();
        let named = sem.sample_named(20, 9);
        let raw = sem.sample(20, 9);
        for (name, col) in &named {
            let id = sem.dag().node(name).unwrap();
            assert_eq!(*col, raw.column(id.0));
        }
    }
}
