//! Property tests for the statistics crate: distribution laws, correlation
//! invariants, decomposition identities, multiple-testing monotonicity.

use explainit_stats::{
    benjamini_hochberg, bonferroni, pearson, seasonal_decompose, Beta, ChiSquared, Normal,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normal_cdf_monotone_and_symmetric(mu in -5.0f64..5.0, sigma in 0.1f64..4.0) {
        let d = Normal::new(mu, sigma);
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = mu + i as f64 * sigma / 10.0;
            let c = d.cdf(x);
            prop_assert!(c >= prev - 1e-12, "CDF must be monotone");
            prev = c;
        }
        // Symmetry about the mean.
        for i in 1..10 {
            let dx = i as f64 * sigma / 3.0;
            let left = d.cdf(mu - dx);
            let right = 1.0 - d.cdf(mu + dx);
            prop_assert!((left - right).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_quantile_round_trip(mu in -3.0f64..3.0, sigma in 0.2f64..3.0, p in 0.001f64..0.999) {
        let d = Normal::new(mu, sigma);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn beta_cdf_in_unit_interval_and_monotone(a in 0.2f64..50.0, b in 0.2f64..50.0) {
        let d = Beta::new(a, b);
        let mut prev = 0.0;
        for i in 0..=40 {
            let x = i as f64 / 40.0;
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        prop_assert!((d.cdf(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beta_quantile_round_trip(a in 0.5f64..20.0, b in 0.5f64..20.0, p in 0.01f64..0.99) {
        let d = Beta::new(a, b);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn chi_squared_cdf_monotone(k in 0.5f64..60.0) {
        let d = ChiSquared::new(k);
        let mut prev = 0.0;
        for i in 0..60 {
            let x = i as f64 * k / 15.0;
            let c = d.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn pearson_bounds_and_symmetry(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..50),
    ) {
        let ys: Vec<f64> = xs.iter().rev().copied().collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((pearson(&ys, &xs) - r).abs() < 1e-12, "symmetry");
        // Self-correlation is 1 for non-constant series.
        if explainit_stats::variance(&xs) > 1e-9 {
            prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_affine_invariance(
        xs in proptest::collection::vec(-10.0f64..10.0, 4..30),
        a in 0.1f64..5.0,
        b in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, &v)| v + (i as f64).sin()).collect();
        let r1 = pearson(&xs, &ys);
        let scaled: Vec<f64> = xs.iter().map(|&v| a * v + b).collect();
        let r2 = pearson(&scaled, &ys);
        prop_assert!((r1 - r2).abs() < 1e-8, "positive affine maps preserve correlation");
    }

    #[test]
    fn decomposition_identity(
        base in proptest::collection::vec(-5.0f64..5.0, 24..96),
        period in 2usize..8,
    ) {
        let d = seasonal_decompose(&base, period);
        for (i, &b) in base.iter().enumerate() {
            let recon = d.trend[i] + d.seasonal[i] + d.residual[i];
            prop_assert!((recon - b).abs() < 1e-9);
        }
        // The per-phase pattern is re-centred to zero mean; over whole
        // periods the seasonal series therefore averages to zero (partial
        // trailing periods can leave a remainder, so truncate).
        let whole = (base.len() / period) * period;
        let mean: f64 = d.seasonal[..whole].iter().sum::<f64>() / whole as f64;
        prop_assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn bonferroni_dominates_bh(
        ps in proptest::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let bf = bonferroni(&ps);
        let bh = benjamini_hochberg(&ps);
        for ((&raw, &b), &h) in ps.iter().zip(bf.iter()).zip(bh.iter()) {
            prop_assert!(b >= raw - 1e-12, "bonferroni never decreases p");
            prop_assert!(h <= b + 1e-12, "BH is no more conservative than Bonferroni");
            prop_assert!((0.0..=1.0).contains(&h));
        }
    }

    #[test]
    fn bh_is_permutation_equivariant(
        ps in proptest::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let q = benjamini_hochberg(&ps);
        let mut reversed = ps.clone();
        reversed.reverse();
        let q_rev = benjamini_hochberg(&reversed);
        for (a, b) in q.iter().zip(q_rev.iter().rev()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
