//! Fixed-width histograms used by the figure reports (Figures 6, 12 and 13
//! of the paper are histograms / density plots).

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the boundary bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Builds a histogram from data with the range taken from the data's
    /// min/max (expanded slightly so the max lands inside the last bin).
    ///
    /// # Panics
    /// Panics if `values` is empty or `bins == 0`.
    pub fn from_data(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "histogram needs data");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut h = Histogram::new(lo, hi + span * 1e-9, bins);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Normalised density value for bin `i` (integrates to ~1 over the
    /// range).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / (self.total as f64 * w)
    }

    /// Renders a simple ASCII bar chart, one row per bin, for terminal
    /// reports. `width` is the maximum bar width in characters.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>10.4} | {:<width$} {}\n",
                self.bin_center(i),
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        out
    }

    /// Approximate quantile from the histogram (linear within bins).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]` or the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        assert!(self.total > 0, "quantile of empty histogram");
        let target = q * self.total as f64;
        let mut acc = 0.0;
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target {
                let within = if c > 0 { (target - acc) / c as f64 } else { 0.0 };
                return self.lo + w * (i as f64 + within);
            }
            acc = next;
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(42.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn from_data_covers_all_points() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = Histogram::from_data(&data, 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) / 100.0).collect();
        let h = Histogram::from_data(&data, 20);
        let w = h.bin_center(1) - h.bin_center(0);
        let integral: f64 = (0..20).map(|i| h.density(i) * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_median_of_uniform() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let h = Histogram::from_data(&data, 100);
        let med = h.quantile(0.5);
        assert!((med - 0.5).abs() < 0.02, "median {med}");
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let h = Histogram::from_data(&[1.0, 2.0, 2.5], 4);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 4);
    }
}
