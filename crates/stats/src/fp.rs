//! Multiple-testing control: Bonferroni correction and the
//! Benjamini–Hochberg false discovery rate procedure (Appendix A.2).
//!
//! ExplainIt! scores hundreds-to-thousands of hypotheses simultaneously;
//! these procedures decide how many of the top-K scores are "statistically
//! significant" rather than lucky draws from the null.

/// Bonferroni-corrected p-values: `min(1, p * m)` where `m` is the number of
/// simultaneous tests.
pub fn bonferroni(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len() as f64;
    p_values.iter().map(|&p| (p * m).min(1.0)).collect()
}

/// Benjamini–Hochberg adjusted p-values (q-values).
///
/// Returns, for each input position, the smallest FDR level at which that
/// hypothesis would be rejected. Input order is preserved.
pub fn benjamini_hochberg(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    // Sort indices by ascending p-value.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    // Raw BH values p_(i) * m / i, then enforce monotonicity from the top.
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let raw = p_values[idx] * m as f64 / (rank + 1) as f64;
        running_min = running_min.min(raw).min(1.0);
        adjusted[idx] = running_min;
    }
    adjusted
}

/// Indices (into the original slice) of hypotheses rejected by the BH
/// procedure at FDR level `alpha`.
pub fn bh_rejections(p_values: &[f64], alpha: f64) -> Vec<usize> {
    benjamini_hochberg(p_values)
        .iter()
        .enumerate()
        .filter(|(_, &q)| q <= alpha)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_scales_and_caps() {
        let p = [0.01, 0.2, 0.5];
        let adj = bonferroni(&p);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[1] - 0.6).abs() < 1e-12);
        assert_eq!(adj[2], 1.0);
    }

    #[test]
    fn bonferroni_empty() {
        assert!(bonferroni(&[]).is_empty());
    }

    #[test]
    fn bh_known_example() {
        // Classic example: p = [0.01, 0.04, 0.03, 0.005], m=4.
        // sorted: 0.005, 0.01, 0.03, 0.04
        // raw: 0.02, 0.02, 0.04, 0.04 -> monotone from top: same.
        let p = [0.01, 0.04, 0.03, 0.005];
        let q = benjamini_hochberg(&p);
        assert!((q[3] - 0.02).abs() < 1e-12);
        assert!((q[0] - 0.02).abs() < 1e-12);
        assert!((q[2] - 0.04).abs() < 1e-12);
        assert!((q[1] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn bh_monotone_in_p() {
        let p = [0.001, 0.01, 0.02, 0.8];
        let q = benjamini_hochberg(&p);
        for w in [0usize, 1, 2].windows(2) {
            assert!(q[w[0]] <= q[w[1]] + 1e-15);
        }
        assert!(q[3] <= 1.0);
    }

    #[test]
    fn bh_less_conservative_than_bonferroni() {
        let p: Vec<f64> = (1..=20).map(|i| i as f64 * 0.002).collect();
        let bf = bonferroni(&p);
        let bh = benjamini_hochberg(&p);
        for (b, h) in bf.iter().zip(bh.iter()) {
            assert!(h <= b, "BH must not exceed Bonferroni");
        }
    }

    #[test]
    fn bh_rejections_at_level() {
        let p = [0.001, 0.011, 0.02, 0.9];
        let rej = bh_rejections(&p, 0.05);
        assert_eq!(rej, vec![0, 1, 2]);
        let none = bh_rejections(&p, 0.0001);
        assert!(none.is_empty());
    }

    #[test]
    fn bh_all_equal_p_values() {
        let p = [0.05; 5];
        let q = benjamini_hochberg(&p);
        // p * m / m = p at top rank; monotone pass makes all equal p.
        for &v in &q {
            assert!((v - 0.05).abs() < 1e-12);
        }
    }
}
