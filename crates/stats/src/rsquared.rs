//! The r² machinery of Appendix A: plain and adjusted r², the Beta null
//! distribution, and the Chebyshev p-value bound that ExplainIt! uses to
//! control false positives over many simultaneous hypotheses.

use crate::dist::Beta;

/// A computed coefficient of determination together with the problem size it
/// came from, so p-values and adjustment can be derived later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RSquared {
    /// Plain (unadjusted) r².
    pub r2: f64,
    /// Number of observations.
    pub n: usize,
    /// Number of predictors.
    pub p: usize,
}

impl RSquared {
    /// Computes r² = 1 - RSS/TSS from observed and predicted values.
    ///
    /// TSS is taken around `baseline_mean` (the *training* mean, per §3.5's
    /// cross-validation protocol where the validation fold is scored against
    /// the model "predict the training mean"). Degenerate targets (TSS = 0)
    /// yield r² = 0.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_predictions(
        observed: &[f64],
        predicted: &[f64],
        baseline_mean: f64,
        p: usize,
    ) -> Self {
        assert_eq!(observed.len(), predicted.len(), "r² length mismatch");
        let n = observed.len();
        let mut rss = 0.0;
        let mut tss = 0.0;
        for (&y, &yh) in observed.iter().zip(predicted.iter()) {
            let e = y - yh;
            rss += e * e;
            let d = y - baseline_mean;
            tss += d * d;
        }
        let r2 = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        RSquared { r2, n, p }
    }

    /// Wherry's adjusted r² (Appendix A):
    /// `r²_adj = 1 - (1 - r²)(n - 1)/(n - p)`.
    ///
    /// Returns `None` when `n <= p` (the adjustment is undefined; the ridge
    /// path with its effective-dof argument applies there instead).
    pub fn adjusted(&self) -> Option<f64> {
        adjusted_r2(self.r2, self.n, self.p)
    }

    /// Exact p-value of this r² under the OLS null (no dependency), using
    /// the `Beta((p-1)/2, (n-p)/2)` distribution from Appendix A.1.
    ///
    /// Returns `None` when the Beta shape parameters would be non-positive
    /// (p < 2 or n <= p).
    pub fn null_p_value(&self) -> Option<f64> {
        let d = r2_null_distribution(self.n, self.p)?;
        Some(d.sf(self.r2.clamp(0.0, 1.0)))
    }

    /// Chebyshev upper bound on the p-value of the *adjusted* score `s`,
    /// Appendix A.2: `P(r²_adj >= s) <= 2(p-1) / ((n-p)(n-1) s²)`.
    pub fn chebyshev_p_value(&self, s: f64) -> f64 {
        chebyshev_p_value(s, self.n, self.p)
    }
}

/// Wherry's adjusted r²; `None` when `n <= p`.
pub fn adjusted_r2(r2: f64, n: usize, p: usize) -> Option<f64> {
    if n <= p || n < 2 {
        return None;
    }
    let n = n as f64;
    let p = p as f64;
    Some(1.0 - (1.0 - r2) * (n - 1.0) / (n - p))
}

/// Null distribution of OLS r² with `n` data points and `p` predictors:
/// `Beta((p-1)/2, (n-p)/2)` (Appendix A.1). `None` when shapes would be
/// non-positive.
pub fn r2_null_distribution(n: usize, p: usize) -> Option<Beta> {
    if p < 2 || n <= p {
        return None;
    }
    Some(Beta::new((p as f64 - 1.0) / 2.0, (n as f64 - p as f64) / 2.0))
}

/// Chebyshev bound from Appendix A.2 on `P(r²_adj >= s)` under the null:
/// `var(r²_adj)/s² = 2(p-1) / ((n-p)(n-1) s²)`, clamped to [0, 1].
///
/// Non-positive scores give the trivial bound 1.
pub fn chebyshev_p_value(s: f64, n: usize, p: usize) -> f64 {
    if s <= 0.0 || n <= p || p < 2 {
        return 1.0;
    }
    let n = n as f64;
    let p = p as f64;
    let var = 2.0 * (p - 1.0) / ((n - p) * (n - 1.0));
    (var / (s * s)).min(1.0)
}

/// Effective degrees of freedom of ridge regression at penalty `lambda`,
/// given the eigenvalues `d²_j` of `X^T X` (Appendix A.2):
///
/// `df = Σ_j [ 2 d²_j/(d²_j+λ) − 1/n − (d²_j/(d²_j+λ))² ]`, clamped at 0.
///
/// Monotonically decreasing in λ; `λ → 0` recovers ≈ `p − p/n ≈ p − 1` and
/// `λ → ∞` drives it to 0.
pub fn ridge_effective_dof(eigenvalues: &[f64], lambda: f64, n: usize) -> f64 {
    let n = n as f64;
    let mut df = 0.0;
    for &d2 in eigenvalues {
        if d2 <= 0.0 {
            continue;
        }
        let h = d2 / (d2 + lambda);
        df += 2.0 * h - 1.0 / n - h * h;
    }
    df.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_r2_is_one() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let r = RSquared::from_predictions(&y, &y, 2.5, 1);
        assert!((r.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_r2_is_zero() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let yh = [2.5; 4];
        let r = RSquared::from_predictions(&y, &yh, 2.5, 1);
        assert!(r.r2.abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_gives_negative_r2() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let yh = [4.0, 3.0, 2.0, 1.0];
        let r = RSquared::from_predictions(&y, &yh, 2.5, 1);
        assert!(r.r2 < 0.0);
    }

    #[test]
    fn constant_target_gives_zero() {
        let y = [5.0; 4];
        let yh = [5.0; 4];
        let r = RSquared::from_predictions(&y, &yh, 5.0, 1);
        assert_eq!(r.r2, 0.0);
    }

    #[test]
    fn adjusted_r2_known_value() {
        // r²=0.8, n=100, p=10: adj = 1 - 0.2 * 99/90 = 0.78.
        assert!((adjusted_r2(0.8, 100, 10).unwrap() - 0.78).abs() < 1e-12);
    }

    #[test]
    fn adjusted_r2_undefined_when_saturated() {
        assert!(adjusted_r2(0.5, 10, 10).is_none());
        assert!(adjusted_r2(0.5, 5, 10).is_none());
    }

    #[test]
    fn adjusted_null_mean_is_zero() {
        // Under the null E[r²] = (p-1)/(n-1); plugging that into Wherry's
        // formula must give exactly 0 (Appendix A: E[r²_adj] = 0).
        let (n, p) = (1000usize, 500usize);
        let r2 = (p as f64 - 1.0) / (n as f64 - 1.0);
        let adj = adjusted_r2(r2, n, p).unwrap();
        assert!(adj.abs() < 1e-12);
    }

    #[test]
    fn null_distribution_mean_matches_formula() {
        let d = r2_null_distribution(1440, 50).unwrap();
        let expect = 49.0 / 1439.0 / 2.0 * 2.0; // (p-1)/(n-1)
        assert!((d.mean() - expect).abs() < 1e-12);
    }

    #[test]
    fn null_distribution_requires_valid_shapes() {
        assert!(r2_null_distribution(100, 1).is_none());
        assert!(r2_null_distribution(10, 10).is_none());
    }

    #[test]
    fn chebyshev_bound_matches_papers_example() {
        // Paper: L2-P50, n=1440, p=50 -> p(s) ≈ 4.9e-5 / s².
        let p_at_1 = chebyshev_p_value(1.0, 1440, 50);
        assert!((p_at_1 - 4.9e-5).abs() < 5e-6, "got {p_at_1}");
        // And s=0.03 with n=1000, p=50 gives ≈ 0.05 (paper's closing example
        // uses the same order of magnitude).
        let p_small = chebyshev_p_value(0.03, 1000, 50);
        assert!(p_small > 0.02 && p_small < 0.2, "got {p_small}");
    }

    #[test]
    fn chebyshev_degenerate_cases() {
        assert_eq!(chebyshev_p_value(0.0, 1000, 50), 1.0);
        assert_eq!(chebyshev_p_value(-1.0, 1000, 50), 1.0);
        assert_eq!(chebyshev_p_value(0.5, 10, 50), 1.0);
    }

    #[test]
    fn ridge_dof_monotone_in_lambda() {
        let eig: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut prev = f64::INFINITY;
        for &l in &[0.0, 0.1, 1.0, 10.0, 100.0, 1e4, 1e6] {
            let df = ridge_effective_dof(&eig, l, 100);
            assert!(df <= prev + 1e-12, "df must decrease with lambda");
            prev = df;
        }
        // λ→∞ drives df to ~0.
        assert!(ridge_effective_dof(&eig, 1e12, 100) < 1e-6);
    }

    #[test]
    fn ridge_dof_ols_limit() {
        // λ = 0: df = Σ (2 - 1/n - 1) = p (1 - 1/n) ≈ p - p/n.
        let p = 8;
        let eig = vec![3.0; p];
        let df = ridge_effective_dof(&eig, 0.0, 100);
        assert!((df - (p as f64) * (1.0 - 1.0 / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn null_p_value_sane() {
        let r = RSquared { r2: 0.9, n: 1000, p: 50 };
        // An r² of 0.9 with n≫p is astronomically unlikely under the null.
        assert!(r.null_p_value().unwrap() < 1e-12);
        let r = RSquared { r2: 0.05, n: 1000, p: 50 };
        // Near the null mean (49/999 ≈ 0.049): p-value near 0.5.
        let p = r.null_p_value().unwrap();
        assert!(p > 0.2 && p < 0.8, "got {p}");
    }
}
