//! Special functions: log-gamma, error function, regularised incomplete
//! beta and gamma functions.
//!
//! These back the distribution CDFs in [`crate::dist`]; accuracy targets are
//! ~1e-10 relative error over the argument ranges the engine uses (p-values,
//! Beta null CDFs with shape parameters up to a few thousand).

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 for x > 0. Negative non-integer arguments go through
/// the reflection formula; poles (x = 0, -1, -2, ...) return `f64::INFINITY`.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x <= 0.0 {
        if x == x.floor() {
            return f64::INFINITY;
        }
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Error function.
///
/// Maclaurin series for |x| < 3 (converges to machine precision in < 60
/// terms there) and the complementary asymptotic expansion beyond; practical
/// accuracy ~1e-12 over the range p-value computations use.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x > 6.0 {
        return 1.0;
    }
    let e = if x < 3.0 {
        let mut term = x;
        let mut sum = x;
        for n in 1..60 {
            term *= -x * x / n as f64;
            sum += term / (2 * n + 1) as f64;
            if term.abs() < 1e-17 {
                break;
            }
        }
        sum * 2.0 / std::f64::consts::PI.sqrt()
    } else {
        let mut s = 1.0;
        let mut term = 1.0;
        for k in 1..10 {
            term *= -(2.0 * k as f64 - 1.0) / (2.0 * x * x);
            s += term;
        }
        1.0 - (-x * x).exp() / (x * std::f64::consts::PI.sqrt()) * s
    };
    e.clamp(-1.0, 1.0)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Regularised incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes §6.4). Defined for `a, b > 0`, `x ∈ [0, 1]`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires positive shape parameters");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry to keep the continued fraction in its fast-converging
    // region x < (a+1)/(a+b+2).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + b * (1.0 - x).ln() + a * x.ln()).exp()
            * beta_cf(b, a, 1.0 - x)
            / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
pub fn incomplete_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "incomplete_gamma requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 5.5, 42.0, 500.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "recurrence at {x}");
        }
    }

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(0.5) - 0.520_499_877_813_047).abs() < 1e-9);
    }

    #[test]
    fn erf_monotone_and_bounded() {
        let mut prev = -1.0;
        for i in -60..=60 {
            let v = erf(i as f64 / 10.0);
            assert!(v >= prev - 1e-12);
            assert!((-1.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.25), (10.0, 2.0, 0.9)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "symmetry at ({a},{b},{x})");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.37, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = 5/32 + ... compute:
        // CDF of Beta(2,2) is 3x^2 - 2x^3.
        let x: f64 = 0.25;
        let expect = 3.0 * x * x - 2.0 * x * x * x;
        assert!((incomplete_beta(2.0, 2.0, x) - expect).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1f64, 1.0, 2.5, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!((incomplete_gamma(1.0, x) - expect).abs() < 1e-10, "P(1,{x})");
        }
    }

    #[test]
    fn incomplete_gamma_monotone() {
        let mut prev = 0.0;
        for i in 1..100 {
            let v = incomplete_gamma(3.0, i as f64 * 0.2);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn erf_relates_to_normal_cdf() {
        // Φ(x) = (1 + erf(x/√2)) / 2; check Φ(1.96) ≈ 0.975.
        let phi = |x: f64| 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
        assert!((phi(1.959_963_985) - 0.975).abs() < 1e-6);
    }
}
