//! Sample moments, correlation and autocorrelation.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by `n`); 0.0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population covariance of two equally sized slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter().zip(ys.iter()).map(|(&x, &y)| (x - mx) * (y - my)).sum::<f64>() / xs.len() as f64
}

/// Pearson product-moment correlation coefficient.
///
/// Returns 0.0 when either input is (numerically) constant — the paper's
/// univariate scorers treat constant metrics as carrying no dependence
/// signal, which also keeps `CorrMean`/`CorrMax` NaN-free.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    r.clamp(-1.0, 1.0)
}

/// Sample autocorrelation at the given lag (lag 0 returns 1 for non-constant
/// series). Series shorter than `lag + 2` return 0.0.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() < lag + 2 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let numer: f64 = xs[lag..].iter().zip(xs.iter()).map(|(&a, &b)| (a - m) * (b - m)).sum();
    numer / denom
}

/// Standardises a slice to zero mean / unit population variance in place.
/// Constant slices are centred only. Returns `(mean, std)`.
pub fn zscore_in_place(xs: &mut [f64]) -> (f64, f64) {
    let m = mean(xs);
    for v in xs.iter_mut() {
        *v -= m;
    }
    let sd = std_dev(xs);
    if sd > 0.0 {
        for v in xs.iter_mut() {
            *v /= sd;
        }
    }
    (m, sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((mean(&xs) - 3.0).abs() < 1e-12);
        assert!((variance(&xs) - 2.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_identical_series_is_variance() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        assert!((covariance(&xs, &xs) - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_orthogonal() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        let ys = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_yields_zero() {
        let xs = [5.0; 8];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_shift_and_scale_invariant() {
        let xs = [1.0, 2.0, 5.0, 3.0, 8.0];
        let ys = [0.5, 1.2, 4.8, 2.0, 9.0];
        let r0 = pearson(&xs, &ys);
        let xs2: Vec<f64> = xs.iter().map(|v| 3.0 * v + 7.0).collect();
        let r1 = pearson(&xs2, &ys);
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_lag0_and_periodic() {
        let xs: Vec<f64> = (0..64).map(|i| ((i % 4) as f64) - 1.5).collect();
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
        // Period-4 signal: lag 4 autocorrelation close to 1.
        assert!(autocorrelation(&xs, 4) > 0.9);
        // Half-period phase of the sawtooth: acf = -0.6 analytically.
        assert!(autocorrelation(&xs, 2) < -0.5);
    }

    #[test]
    fn autocorrelation_short_series_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 3), 0.0);
    }

    #[test]
    fn zscore_standardises() {
        let mut xs = vec![10.0, 20.0, 30.0];
        let (m, s) = zscore_in_place(&mut xs);
        assert!((m - 20.0).abs() < 1e-12);
        assert!(s > 0.0);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((variance(&xs) - 1.0).abs() < 1e-12);
    }
}
