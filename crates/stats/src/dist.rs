//! Probability distributions used by the false-positive analysis
//! (Appendix A of the paper): Normal, Beta and Chi-squared.

use crate::special::{erf, incomplete_beta, incomplete_gamma, ln_gamma};

/// A univariate normal distribution `N(mu, sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma^2)`.
    ///
    /// # Panics
    /// Panics if `sigma <= 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "normal parameters must be finite");
        assert!(sigma > 0.0, "normal sigma must be positive");
        Normal { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Inverse CDF via Acklam's rational approximation refined with one
    /// Newton step. Accurate to ~1e-12 for `p ∈ (1e-300, 1 - 1e-16)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.mu + self.sigma * standard_normal_quantile(p)
    }
}

/// Acklam's inverse normal CDF approximation with one Halley refinement.
fn standard_normal_quantile(p: f64) -> f64 {
    // Coefficients from Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_969_4,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the exact CDF.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// A Beta(a, b) distribution.
///
/// Appendix A: under the null of no dependency, OLS r² on `n` points with
/// `p` predictors is `Beta((p-1)/2, (n-p)/2)` distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates `Beta(a, b)`.
    ///
    /// # Panics
    /// Panics unless both shape parameters are positive and finite.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite(),
            "beta shapes must be positive"
        );
        Beta { a, b }
    }

    /// Shape parameter `a`.
    pub fn alpha(&self) -> f64 {
        self.a
    }

    /// Shape parameter `b`.
    pub fn beta(&self) -> f64 {
        self.b
    }

    /// Distribution mean `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// Distribution variance `ab / ((a+b)^2 (a+b+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.a + self.b;
        self.a * self.b / (s * s * (s + 1.0))
    }

    /// Probability density at `x ∈ [0, 1]` (0 outside).
    pub fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 || x == 1.0 {
            // Density can be infinite at the boundary; report 0 for the
            // interior-measure convention used by the histogram reports.
            return 0.0;
        }
        let ln_b = ln_gamma(self.a + self.b) - ln_gamma(self.a) - ln_gamma(self.b);
        (ln_b + (self.a - 1.0) * x.ln() + (self.b - 1.0) * (1.0 - x).ln()).exp()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        incomplete_beta(self.a, self.b, x.clamp(0.0, 1.0))
    }

    /// Survival function `P(X > x)` — the exact p-value of an observed r²
    /// under the OLS null.
    pub fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// Inverse CDF by bisection on the monotone CDF (50 iterations ≈ 1e-15
    /// interval width).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1]");
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A Chi-squared distribution with (possibly fractional) degrees of freedom.
///
/// Appendix A uses `RSS ~ χ²_trace(A)` with non-integer effective degrees of
/// freedom for ridge regression, so `k` is a float here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of freedom.
    ///
    /// # Panics
    /// Panics if `k <= 0` or non-finite.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "chi-squared dof must be positive");
        ChiSquared { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Distribution mean (= k).
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Distribution variance (= 2k).
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// Probability density at `x >= 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let h = self.k / 2.0;
        ((h - 1.0) * x.ln() - x / 2.0 - h * 2.0f64.ln() - ln_gamma(h)).exp()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        incomplete_gamma(self.k / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_pdf_cdf_standard_values() {
        let n = Normal::standard();
        assert!((n.pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975_002_104_851_780).abs() < 1e-7);
        assert!((n.sf(1.96) - 0.024_997_895_148_220).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(3.0, 2.0);
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9, "round trip at p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn normal_rejects_bad_sigma() {
        let _ = Normal::new(0.0, 0.0);
    }

    #[test]
    fn beta_mean_variance_match_closed_form() {
        // The exact formulas quoted in Appendix A.
        let (p, n) = (50.0, 1440.0);
        let d = Beta::new((p - 1.0) / 2.0, (n - p) / 2.0);
        let mu = (p - 1.0) / (n - 1.0);
        assert!((d.mean() - mu).abs() < 1e-12);
        let var = mu * (1.0 - mu) / (1.0 + (n - 1.0) / 2.0);
        assert!((d.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn beta_cdf_uniform_special_case() {
        let d = Beta::new(1.0, 1.0);
        for &x in &[0.0, 0.3, 0.5, 1.0] {
            assert!((d.cdf(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_quantile_inverts_cdf() {
        let d = Beta::new(2.5, 7.0);
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_pdf_integrates_to_one() {
        let d = Beta::new(3.0, 4.0);
        let n = 20_000;
        let mut acc = 0.0;
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            acc += d.pdf(x) / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-4);
    }

    #[test]
    fn chi_squared_cdf_known_values() {
        // χ²_2 CDF(x) = 1 - exp(-x/2).
        let d = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-x / 2.0f64).exp();
            assert!((d.cdf(x) - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn chi_squared_moments() {
        let d = ChiSquared::new(7.5);
        assert_eq!(d.mean(), 7.5);
        assert_eq!(d.variance(), 15.0);
    }

    #[test]
    fn chi_squared_median_near_mean_for_large_dof() {
        let d = ChiSquared::new(1000.0);
        // Median ≈ k(1 - 2/(9k))³; CDF at mean slightly above 0.5.
        let at_mean = d.cdf(1000.0);
        assert!(at_mean > 0.5 && at_mean < 0.52);
    }
}
