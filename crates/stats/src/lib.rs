//! Statistical primitives for the ExplainIt! reproduction.
//!
//! Everything the paper's scoring and false-positive analysis needs, built
//! from scratch:
//!
//! * moments, Pearson correlation and autocorrelation ([`moments`]);
//! * special functions — log-gamma, erf, regularised incomplete beta/gamma
//!   ([`special`]);
//! * probability distributions — Normal, Beta, Chi-squared ([`dist`]);
//! * the r² machinery of Appendix A — adjusted r², the Beta null
//!   distribution of OLS r², Chebyshev p-value bounds ([`rsquared`]);
//! * multiple-testing control — Bonferroni and Benjamini–Hochberg ([`fp`]);
//! * classical seasonal-trend decomposition used for pseudocauses (§3.4)
//!   ([`decompose`]);
//! * fixed-width histograms used by the figure reports ([`histogram`]).

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // indexed loops read naturally in these math kernels
pub mod decompose;
pub mod dist;
pub mod fp;
pub mod histogram;
pub mod moments;
pub mod rsquared;
pub mod special;

pub use decompose::{seasonal_decompose, Decomposition};
pub use dist::{Beta, ChiSquared, Normal};
pub use fp::{benjamini_hochberg, bonferroni};
pub use histogram::Histogram;
pub use moments::{autocorrelation, covariance, mean, pearson, std_dev, variance, zscore_in_place};
pub use rsquared::{adjusted_r2, chebyshev_p_value, r2_null_distribution, RSquared};
