//! Classical seasonal-trend decomposition.
//!
//! §3.4 of the paper derives a *pseudocause* `Ys` from the target itself:
//! decomposing `Y = trend + seasonal + residual` and conditioning on the
//! seasonal (and/or trend) part blocks the unknown causes of seasonality,
//! letting the ranking surface causes of the residual spike the user cares
//! about. This module implements the additive classical decomposition:
//! centred moving-average trend, per-phase seasonal means, residual.

/// An additive decomposition `series = trend + seasonal + residual`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Smoothed trend component (same length as the input).
    pub trend: Vec<f64>,
    /// Zero-mean periodic component.
    pub seasonal: Vec<f64>,
    /// What remains after removing trend and seasonality.
    pub residual: Vec<f64>,
    /// Period used for the seasonal component.
    pub period: usize,
}

impl Decomposition {
    /// The "pseudocause" series of §3.4: the explained (trend + seasonal)
    /// part of the signal, suitable for use as a conditioning variable `Z`.
    pub fn pseudocause(&self) -> Vec<f64> {
        self.trend.iter().zip(self.seasonal.iter()).map(|(&t, &s)| t + s).collect()
    }
}

/// Decomposes `series` additively with the given seasonal `period`.
///
/// * Trend: centred moving average of window `period` (even periods use the
///   standard 2×MA half-weight endpoints); edges are extended with the
///   nearest interior value so every index has a trend.
/// * Seasonal: mean of the detrended values at each phase, re-centred to
///   zero mean.
/// * Residual: the rest.
///
/// # Panics
/// Panics if `period < 2` or the series is shorter than one full period.
pub fn seasonal_decompose(series: &[f64], period: usize) -> Decomposition {
    assert!(period >= 2, "seasonal period must be at least 2");
    assert!(series.len() >= period, "series length {} shorter than period {period}", series.len());
    let n = series.len();
    let trend = moving_average_trend(series, period);
    // Per-phase means of the detrended series.
    let mut phase_sums = vec![0.0; period];
    let mut phase_counts = vec![0usize; period];
    for i in 0..n {
        let d = series[i] - trend[i];
        phase_sums[i % period] += d;
        phase_counts[i % period] += 1;
    }
    let mut phase_means: Vec<f64> = phase_sums
        .iter()
        .zip(phase_counts.iter())
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Re-centre so the seasonal component has zero mean.
    let grand = phase_means.iter().sum::<f64>() / period as f64;
    for m in &mut phase_means {
        *m -= grand;
    }
    let seasonal: Vec<f64> = (0..n).map(|i| phase_means[i % period]).collect();
    let residual: Vec<f64> = (0..n).map(|i| series[i] - trend[i] - seasonal[i]).collect();
    Decomposition { trend, seasonal, residual, period }
}

/// Centred moving average of window `period`; even windows use the 2×MA
/// convention (half weights at both ends). Edges are clamped to the nearest
/// fully defined value.
fn moving_average_trend(series: &[f64], period: usize) -> Vec<f64> {
    let n = series.len();
    let mut trend = vec![f64::NAN; n];
    let half = period / 2;
    if period % 2 == 1 {
        for i in half..n.saturating_sub(half) {
            let window = &series[i - half..=i + half];
            trend[i] = window.iter().sum::<f64>() / period as f64;
        }
    } else {
        // 2xMA: weights 0.5, 1, ..., 1, 0.5 over period+1 points.
        for i in half..n.saturating_sub(half) {
            let lo = i - half;
            let hi = i + half;
            let mut acc = 0.5 * series[lo] + 0.5 * series[hi];
            for j in (lo + 1)..hi {
                acc += series[j];
            }
            trend[i] = acc / period as f64;
        }
    }
    // Clamp the undefined edges to the nearest defined value (or the series
    // mean when the series is so short no interior point exists).
    let first_defined = trend.iter().position(|v| !v.is_nan());
    match first_defined {
        Some(first) => {
            let last = trend.iter().rposition(|v| !v.is_nan()).unwrap();
            let (f, l) = (trend[first], trend[last]);
            for v in trend[..first].iter_mut() {
                *v = f;
            }
            for v in trend[last + 1..].iter_mut() {
                *v = l;
            }
        }
        None => {
            let m = series.iter().sum::<f64>() / n.max(1) as f64;
            trend.fill(m);
        }
    }
    trend
}

/// Removes a linear trend (least-squares line) from the series, returning
/// the detrended copy. Used by specificity-focused preprocessing when only
/// drift — not seasonality — should be controlled for.
pub fn detrend_linear(series: &[f64]) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return series.to_vec();
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = series.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    series.iter().enumerate().map(|(i, &y)| y - (mean_y + slope * (i as f64 - mean_x))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::{mean, pearson, variance};

    fn synthetic(n: usize, period: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // trend + seasonal + small deterministic "noise"
        let trend: Vec<f64> = (0..n).map(|i| 10.0 + 0.05 * i as f64).collect();
        let seas: Vec<f64> = (0..n)
            .map(|i| 3.0 * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64).sin())
            .collect();
        let series: Vec<f64> = (0..n).map(|i| trend[i] + seas[i]).collect();
        (series, trend, seas)
    }

    #[test]
    fn components_sum_to_series() {
        let (series, _, _) = synthetic(120, 12);
        let d = seasonal_decompose(&series, 12);
        for i in 0..series.len() {
            let recon = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((recon - series[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn recovers_seasonal_shape() {
        let (series, _, seas) = synthetic(240, 12);
        let d = seasonal_decompose(&series, 12);
        // Correlation between recovered and true seasonal component.
        assert!(pearson(&d.seasonal, &seas) > 0.99);
        // Seasonal has (near) zero mean.
        assert!(mean(&d.seasonal).abs() < 1e-9);
    }

    #[test]
    fn recovers_trend_up_to_edges() {
        let (series, trend, _) = synthetic(240, 12);
        let d = seasonal_decompose(&series, 12);
        // Interior trend within small error of the true line.
        for i in 12..228 {
            assert!((d.trend[i] - trend[i]).abs() < 0.5, "trend off at {i}");
        }
    }

    #[test]
    fn residual_small_for_noiseless_input() {
        let (series, _, _) = synthetic(240, 12);
        let d = seasonal_decompose(&series, 12);
        let resid_var = variance(&d.residual);
        let series_var = variance(&series);
        assert!(resid_var < 0.02 * series_var, "residual var {resid_var} vs {series_var}");
    }

    #[test]
    fn pseudocause_plus_residual_is_series() {
        let (series, _, _) = synthetic(60, 6);
        let d = seasonal_decompose(&series, 6);
        let pc = d.pseudocause();
        for i in 0..series.len() {
            assert!((pc[i] + d.residual[i] - series[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn odd_period_works() {
        let (series, _, _) = synthetic(105, 7);
        let d = seasonal_decompose(&series, 7);
        assert_eq!(d.trend.len(), 105);
        assert!(d.trend.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "shorter than period")]
    fn rejects_too_short_series() {
        seasonal_decompose(&[1.0, 2.0, 3.0], 12);
    }

    #[test]
    fn detrend_removes_line() {
        let series: Vec<f64> = (0..50).map(|i| 2.0 + 0.3 * i as f64).collect();
        let d = detrend_linear(&series);
        assert!(d.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn detrend_preserves_oscillation() {
        let series: Vec<f64> = (0..100).map(|i| 0.5 * i as f64 + (i as f64 * 0.7).sin()).collect();
        let d = detrend_linear(&series);
        // Line removed; oscillation variance remains.
        assert!(variance(&d) > 0.2);
        assert!(mean(&d).abs() < 1e-9);
    }
}
