//! Rank fusion: combining rankings from multiple queries/scorers.
//!
//! §8 of the paper: "...and also improving the ranking using results
//! multiple queries". §6.1's takeaway is that univariate and joint scorers
//! have complementary strengths; fusing their rankings hedges the choice.
//! Two standard fusion rules are implemented:
//!
//! * **Reciprocal rank fusion (RRF)** — `score(f) = Σ_r 1/(k + rank_r(f))`
//!   with the conventional `k = 60`; robust to score-scale differences;
//! * **Borda count** — `score(f) = Σ_r (N - rank_r(f))`, linear weighting.

use std::collections::BTreeMap;

use explainit_core::Ranking;

/// Fusion rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionRule {
    /// Reciprocal rank fusion with smoothing constant `k`.
    ReciprocalRank {
        /// Smoothing constant (60 is the literature default).
        k: f64,
    },
    /// Borda count over the union of ranked families.
    Borda,
}

impl Default for FusionRule {
    fn default() -> Self {
        FusionRule::ReciprocalRank { k: 60.0 }
    }
}

/// A fused ranking entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedEntry {
    /// Family name.
    pub family: String,
    /// Fused score (rule-dependent scale; higher is better).
    pub score: f64,
    /// Per-input ranks (1-based), `None` where the family was absent.
    pub ranks: Vec<Option<usize>>,
}

/// Fuses several rankings into one ordered list.
///
/// Families missing from an input ranking contribute nothing for that input
/// (RRF) or zero Borda points; the union of all ranked families is scored.
pub fn fuse_rankings(rankings: &[&Ranking], rule: FusionRule) -> Vec<FusedEntry> {
    let mut families: BTreeMap<String, Vec<Option<usize>>> = BTreeMap::new();
    for (ri, ranking) in rankings.iter().enumerate() {
        for (pos, e) in ranking.entries.iter().enumerate() {
            if e.error.is_some() {
                continue;
            }
            let slot =
                families.entry(e.family.clone()).or_insert_with(|| vec![None; rankings.len()]);
            slot[ri] = Some(pos + 1);
        }
    }
    // Late-created entries may have short vectors if a family appeared only
    // in later rankings — normalise.
    for ranks in families.values_mut() {
        ranks.resize(rankings.len(), None);
    }
    let max_len = rankings.iter().map(|r| r.entries.len()).max().unwrap_or(0);
    let mut out: Vec<FusedEntry> = families
        .into_iter()
        .map(|(family, ranks)| {
            let score = match rule {
                FusionRule::ReciprocalRank { k } => {
                    ranks.iter().flatten().map(|&r| 1.0 / (k + r as f64)).sum()
                }
                FusionRule::Borda => {
                    ranks.iter().flatten().map(|&r| (max_len + 1 - r) as f64).sum()
                }
            };
            FusedEntry { family, score, ranks }
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.family.cmp(&b.family)));
    out
}

/// Position (1-based) of a family in a fused ranking.
pub fn fused_rank_of(fused: &[FusedEntry], family: &str) -> Option<usize> {
    fused.iter().position(|e| e.family == family).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_core::{Engine, EngineConfig, FeatureFamily, ScorerKind};

    /// Engine where `shared` is good under both scorers, `corr_only` only
    /// under CorrMax (single clean column buried among noise columns), and
    /// `joint_only` only under L2 (two half-signals).
    fn build_rankings() -> (Ranking, Ranking) {
        let n = 240usize;
        let ts: Vec<i64> = (0..n as i64).collect();
        let sig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let pseudo = |seed: usize| -> Vec<f64> {
            (0..n).map(|i| (((i * 2654435761 + seed * 97) % 1000) as f64) / 500.0 - 1.0).collect()
        };
        let mut e = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
        e.add_family(FeatureFamily::univariate("y", ts.clone(), sig.clone()));
        e.add_family(FeatureFamily::univariate(
            "shared",
            ts.clone(),
            sig.iter().map(|v| 2.0 * v).collect(),
        ));
        // corr_only: one perfect column + 9 noise columns (CorrMax sees the
        // best pair; L2's CV dilutes across 10 predictors).
        let mut corr_cols: Vec<Vec<f64>> = vec![sig.clone()];
        for s in 0..9 {
            corr_cols.push(pseudo(s));
        }
        e.add_family(FeatureFamily::new(
            "corr_only",
            ts.clone(),
            (0..10).map(|i| format!("c{i}")).collect(),
            explainit_linalg_matrix(&corr_cols),
        ));
        // joint_only: y = a + b where each half is noise-like alone.
        let a = pseudo(40);
        let b: Vec<f64> = sig.iter().zip(a.iter()).map(|(s, av)| s - av).collect();
        e.add_family(FeatureFamily::new(
            "joint_only",
            ts.clone(),
            vec!["a".into(), "b".into()],
            explainit_linalg_matrix(&[a, b]),
        ));
        for s in 0..4 {
            e.add_family(FeatureFamily::univariate(
                format!("noise{s}"),
                ts.clone(),
                pseudo(100 + s),
            ));
        }
        let corr = e.rank("y", &[], ScorerKind::CorrMax).unwrap();
        let joint = e.rank("y", &[], ScorerKind::L2).unwrap();
        (corr, joint)
    }

    fn explainit_linalg_matrix(cols: &[Vec<f64>]) -> explainit_linalg::Matrix {
        explainit_linalg::Matrix::from_columns(cols)
    }

    #[test]
    fn fusion_keeps_both_scorers_winners_high() {
        let (corr, joint) = build_rankings();
        let fused = fuse_rankings(&[&corr, &joint], FusionRule::default());
        let shared = fused_rank_of(&fused, "shared").expect("present");
        let corr_only = fused_rank_of(&fused, "corr_only").expect("present");
        let joint_only = fused_rank_of(&fused, "joint_only").expect("present");
        // `corr_only` embeds a perfect copy of the signal, so it can tie
        // with `shared` for the top; both must be in the top two.
        assert!(shared <= 2, "consensus winner near the top, got {shared}");
        // Both specialist families beat the pure-noise families.
        for s in 0..4 {
            let noise = fused_rank_of(&fused, &format!("noise{s}")).expect("present");
            assert!(corr_only < noise, "corr_only {corr_only} vs noise {noise}");
            assert!(joint_only < noise, "joint_only {joint_only} vs noise {noise}");
        }
    }

    #[test]
    fn borda_and_rrf_agree_on_the_top() {
        let (corr, joint) = build_rankings();
        let rrf = fuse_rankings(&[&corr, &joint], FusionRule::default());
        let borda = fuse_rankings(&[&corr, &joint], FusionRule::Borda);
        assert_eq!(rrf[0].family, borda[0].family);
    }

    #[test]
    fn single_input_preserves_order() {
        let (corr, _) = build_rankings();
        let fused = fuse_rankings(&[&corr], FusionRule::default());
        let original: Vec<&str> =
            corr.entries.iter().filter(|e| e.error.is_none()).map(|e| e.family.as_str()).collect();
        let fused_names: Vec<&str> = fused.iter().map(|e| e.family.as_str()).collect();
        assert_eq!(fused_names, original);
    }

    #[test]
    fn missing_family_contributes_nothing() {
        let (corr, joint) = build_rankings();
        let fused = fuse_rankings(&[&corr, &joint], FusionRule::default());
        for e in &fused {
            // ranks has one slot per input ranking.
            assert_eq!(e.ranks.len(), 2);
        }
    }

    #[test]
    fn empty_inputs_empty_output() {
        let fused = fuse_rankings(&[], FusionRule::default());
        assert!(fused.is_empty());
    }
}
