//! Ranking-quality metrics and summaries for the evaluation harness (§6).
//!
//! The paper measures scorers with:
//!
//! * **Ranking accuracy / discounted gain** — `1/r` where `r` is the rank of
//!   the first true cause in the top-20 (binary relevance, Zipfian
//!   discount), with a log-discount variant (`1/log2(1+r)`) reported to
//!   behave identically;
//! * **Success@k** — 1 if any cause appears in the top-k;
//! * summaries across scenarios: arithmetic mean, harmonic mean (failures
//!   substituted with 0.001), and the standard deviation of the gain.
//!
//! This crate computes those metrics from an engine
//! [`explainit_core::Ranking`] plus a labelling function, keeping it
//! decoupled from how ground truth is produced (simulator labels here,
//! human labels in the paper).

#![forbid(unsafe_code)]

pub mod fusion;

pub use fusion::{fuse_rankings, fused_rank_of, FusedEntry, FusionRule};

use explainit_core::Ranking;

/// Relevance of one ranked family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relevance {
    /// A true cause (binary relevance 1).
    Cause,
    /// An effect of the incident (relevance 0, but "expected").
    Effect,
    /// Irrelevant (relevance 0).
    Irrelevant,
}

/// Evaluation of a single ranking against labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingEval {
    /// 1-based rank of the first cause within the evaluated prefix, if any.
    pub first_cause_rank: Option<usize>,
    /// `1/r` discounted gain; `None` marks the paper's "-" failures.
    pub discounted_gain: Option<f64>,
    /// `1/log2(1+r)` variant.
    pub log_discounted_gain: Option<f64>,
    /// Labels of the evaluated prefix, in rank order.
    pub labels: Vec<Relevance>,
}

impl RankingEval {
    /// Success@k: is there a cause in the top-k?
    pub fn success_at(&self, k: usize) -> bool {
        self.first_cause_rank.is_some_and(|r| r <= k)
    }

    /// The gain value used in summary statistics, substituting `fail_value`
    /// (the paper uses 0.001 for the harmonic mean) for failures.
    pub fn gain_or(&self, fail_value: f64) -> f64 {
        self.discounted_gain.unwrap_or(fail_value)
    }
}

/// Evaluates a ranking's top-`cutoff` prefix with the given labeller.
pub fn evaluate_ranking(
    ranking: &Ranking,
    cutoff: usize,
    label: impl Fn(&str) -> Relevance,
) -> RankingEval {
    let labels: Vec<Relevance> =
        ranking.entries.iter().take(cutoff).map(|e| label(&e.family)).collect();
    let first_cause_rank = labels.iter().position(|&l| l == Relevance::Cause).map(|i| i + 1);
    let discounted_gain = first_cause_rank.map(|r| 1.0 / r as f64);
    let log_discounted_gain = first_cause_rank.map(|r| 1.0 / (1.0 + r as f64).log2());
    RankingEval { first_cause_rank, discounted_gain, log_discounted_gain, labels }
}

/// Cross-scenario summary of one scorer (a column of Table 6's summary
/// block).
#[derive(Debug, Clone, PartialEq)]
pub struct ScorerSummary {
    /// Arithmetic mean of the discounted gain (failures as 0.0).
    pub mean_gain: f64,
    /// Standard deviation of the discounted gain.
    pub stdev_gain: f64,
    /// Harmonic mean with failures substituted by 0.001.
    pub harmonic_gain: f64,
    /// Fraction of scenarios with a cause at rank 1.
    pub success_top1: f64,
    /// Fraction with a cause in the top 5.
    pub success_top5: f64,
    /// Fraction with a cause in the top 10.
    pub success_top10: f64,
    /// Fraction with a cause in the top 20.
    pub success_top20: f64,
}

/// Summarises per-scenario evaluations exactly as Table 6's summary rows.
pub fn summarize(evals: &[RankingEval]) -> ScorerSummary {
    let n = evals.len().max(1) as f64;
    let gains: Vec<f64> = evals.iter().map(|e| e.discounted_gain.unwrap_or(0.0)).collect();
    let mean_gain = gains.iter().sum::<f64>() / n;
    let var = gains.iter().map(|g| (g - mean_gain) * (g - mean_gain)).sum::<f64>() / n;
    // Harmonic mean with the paper's 0.001 substitution for failures.
    let harmonic_gain = if evals.is_empty() {
        0.0
    } else {
        n / evals.iter().map(|e| 1.0 / e.gain_or(0.001)).sum::<f64>()
    };
    let frac = |k: usize| evals.iter().filter(|e| e.success_at(k)).count() as f64 / n;
    ScorerSummary {
        mean_gain,
        stdev_gain: var.sqrt(),
        harmonic_gain,
        success_top1: frac(1),
        success_top5: frac(5),
        success_top10: frac(10),
        success_top20: frac(20),
    }
}

/// Full DCG (not just first-cause) with binary relevance and `1/log2(1+r)`
/// discount — used by the extended ablation reports.
pub fn dcg(labels: &[Relevance]) -> f64 {
    labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let rel = if l == Relevance::Cause { 1.0 } else { 0.0 };
            rel / ((i + 2) as f64).log2()
        })
        .sum()
}

/// Normalised DCG: [`dcg`] divided by the ideal ordering's DCG.
pub fn ndcg(labels: &[Relevance]) -> f64 {
    let actual = dcg(labels);
    let causes = labels.iter().filter(|&&l| l == Relevance::Cause).count();
    if causes == 0 {
        return 0.0;
    }
    let ideal: f64 = (0..causes).map(|i| 1.0 / ((i + 2) as f64).log2()).sum();
    actual / ideal
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_core::{Engine, EngineConfig, FeatureFamily, ScorerKind};

    fn make_ranking(order: &[&str]) -> Ranking {
        // Build a tiny engine whose ranking order we control by correlation
        // strength.
        let n = 60usize;
        let ts: Vec<i64> = (0..n as i64).collect();
        let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut e = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
        e.add_family(FeatureFamily::univariate("y", ts.clone(), base.clone()));
        for (rank, name) in order.iter().enumerate() {
            // Decreasing signal-to-noise by rank.
            let w = 1.0 / (rank + 1) as f64;
            let vals: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(i, v)| w * v + (1.0 - w) * (((i * 37 + rank * 101) % 17) as f64 / 17.0))
                .collect();
            e.add_family(FeatureFamily::univariate(*name, ts.clone(), vals));
        }
        e.rank("y", &[], ScorerKind::CorrMax).unwrap()
    }

    #[test]
    fn first_cause_rank_and_gain() {
        let r = make_ranking(&["eff1", "cause1", "junk"]);
        let eval = evaluate_ranking(&r, 20, |name| match name {
            "cause1" => Relevance::Cause,
            "eff1" => Relevance::Effect,
            _ => Relevance::Irrelevant,
        });
        assert_eq!(eval.first_cause_rank, Some(2));
        assert_eq!(eval.discounted_gain, Some(0.5));
        assert!(eval.success_at(5));
        assert!(!eval.success_at(1));
    }

    #[test]
    fn no_cause_is_failure() {
        let r = make_ranking(&["a", "b"]);
        let eval = evaluate_ranking(&r, 20, |_| Relevance::Irrelevant);
        assert_eq!(eval.first_cause_rank, None);
        assert_eq!(eval.discounted_gain, None);
        assert!(!eval.success_at(20));
        assert_eq!(eval.gain_or(0.001), 0.001);
    }

    #[test]
    fn cutoff_limits_window() {
        let r = make_ranking(&["a", "b", "cause"]);
        let eval = evaluate_ranking(&r, 2, |n| {
            if n == "cause" {
                Relevance::Cause
            } else {
                Relevance::Irrelevant
            }
        });
        assert_eq!(eval.first_cause_rank, None, "cause is outside the cutoff");
    }

    #[test]
    fn summary_matches_hand_computation() {
        let evals = vec![
            RankingEval {
                first_cause_rank: Some(1),
                discounted_gain: Some(1.0),
                log_discounted_gain: Some(1.0),
                labels: vec![Relevance::Cause],
            },
            RankingEval {
                first_cause_rank: Some(4),
                discounted_gain: Some(0.25),
                log_discounted_gain: Some(1.0 / 5f64.log2()),
                labels: vec![],
            },
            RankingEval {
                first_cause_rank: None,
                discounted_gain: None,
                log_discounted_gain: None,
                labels: vec![],
            },
        ];
        let s = summarize(&evals);
        assert!((s.mean_gain - (1.25 / 3.0)).abs() < 1e-12);
        assert!((s.success_top1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.success_top5 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.success_top20, 2.0 / 3.0);
        // Harmonic mean: 3 / (1/1 + 1/0.25 + 1/0.001) = 3/1005.
        assert!((s.harmonic_gain - 3.0 / 1005.0).abs() < 1e-9);
        assert!(s.stdev_gain > 0.0);
    }

    #[test]
    fn dcg_and_ndcg() {
        let perfect = vec![Relevance::Cause, Relevance::Irrelevant];
        assert!((ndcg(&perfect) - 1.0).abs() < 1e-12);
        let inverted = vec![Relevance::Irrelevant, Relevance::Cause];
        assert!(ndcg(&inverted) < 1.0 && ndcg(&inverted) > 0.0);
        assert_eq!(ndcg(&[Relevance::Irrelevant]), 0.0);
        // DCG of cause at rank 1 is 1/log2(2) = 1.
        assert!((dcg(&[Relevance::Cause]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_discount_orders_like_zipfian() {
        let r = make_ranking(&["c1", "c2", "c3"]);
        let eval_hi = evaluate_ranking(&r, 20, |n| {
            if n == "c1" {
                Relevance::Cause
            } else {
                Relevance::Irrelevant
            }
        });
        let eval_lo = evaluate_ranking(&r, 20, |n| {
            if n == "c3" {
                Relevance::Cause
            } else {
                Relevance::Irrelevant
            }
        });
        assert!(eval_hi.discounted_gain > eval_lo.discounted_gain);
        assert!(eval_hi.log_discounted_gain > eval_lo.log_discounted_gain);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = summarize(&[]);
        assert_eq!(s.mean_gain, 0.0);
        assert_eq!(s.success_top20, 0.0);
    }
}
