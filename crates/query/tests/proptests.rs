//! Property tests for the SQL engine: lexer/parser robustness, executor
//! invariants, and pivot correctness.

use explainit_query::{parse_query, pivot_long, Catalog, Table, Value};
use proptest::prelude::*;

/// Arbitrary identifiers that are never reserved words.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.to_uppercase().as_str(),
            "SELECT"
                | "FROM"
                | "WHERE"
                | "GROUP"
                | "ORDER"
                | "LIMIT"
                | "UNION"
                | "JOIN"
                | "INNER"
                | "LEFT"
                | "FULL"
                | "OUTER"
                | "ON"
                | "AS"
                | "AND"
                | "OR"
                | "NOT"
                | "IN"
                | "BETWEEN"
                | "IS"
                | "NULL"
                | "LIKE"
                | "CASE"
                | "WHEN"
                | "THEN"
                | "ELSE"
                | "END"
                | "ASC"
                | "DESC"
                | "BY"
                | "ALL"
                | "TRUE"
                | "FALSE"
                | "HAVING"
        )
    })
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,80}") {
        // Must return Ok or Err, never panic.
        let _ = parse_query(&s);
    }

    #[test]
    fn simple_selects_always_parse(col in ident_strategy(), table in ident_strategy()) {
        let sql = format!("SELECT {col} FROM {table}");
        prop_assert!(parse_query(&sql).is_ok());
        let sql = format!("SELECT {col} AS x FROM {table} WHERE {col} > 0 ORDER BY {col} LIMIT 5");
        prop_assert!(parse_query(&sql).is_ok());
    }

    #[test]
    fn string_literals_round_trip_through_where(v in "[a-zA-Z0-9 ']{0,20}") {
        let mut catalog = Catalog::new();
        catalog.register(
            "t",
            Table::from_rows(&["s"], vec![vec![Value::str(v.clone())], vec![Value::str("other")]]),
        );
        let escaped = v.replace('\'', "''");
        let out = catalog
            .execute(&format!("SELECT s FROM t WHERE s = '{escaped}'"))
            .expect("query runs");
        // The row with the exact value must always come back (plus possibly
        // the "other" row when v == "other").
        prop_assert!(out.rows().iter().any(|r| r[0] == Value::str(v.clone())));
    }

    #[test]
    fn where_filter_is_subset_and_complement_partitions(
        vals in proptest::collection::vec(-100i64..100, 1..40),
        threshold in -100i64..100,
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "t",
            Table::from_rows(&["v"], vals.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let above = catalog
            .execute(&format!("SELECT v FROM t WHERE v > {threshold}"))
            .expect("query");
        let below_eq = catalog
            .execute(&format!("SELECT v FROM t WHERE NOT (v > {threshold})"))
            .expect("query");
        prop_assert_eq!(above.len() + below_eq.len(), vals.len());
        for r in above.rows() {
            prop_assert!(r[0].as_i64().expect("int") > threshold);
        }
    }

    #[test]
    fn group_by_avg_matches_manual_aggregation(
        pairs in proptest::collection::vec((0i64..5, -50.0f64..50.0), 1..60)
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "t",
            Table::from_rows(
                &["k", "v"],
                pairs.iter().map(|&(k, v)| vec![Value::Int(k), Value::Float(v)]).collect(),
            ),
        );
        let out = catalog
            .execute("SELECT k, AVG(v) AS m FROM t GROUP BY k ORDER BY k")
            .expect("query");
        // Manual aggregation.
        let mut sums: std::collections::BTreeMap<i64, (f64, usize)> = Default::default();
        for &(k, v) in &pairs {
            let e = sums.entry(k).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(out.len(), sums.len());
        for (row, (&k, &(sum, n))) in out.rows().iter().zip(sums.iter()) {
            prop_assert_eq!(row[0].as_i64(), Some(k));
            let avg = row[1].as_f64().expect("float");
            prop_assert!((avg - sum / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn order_by_sorts(vals in proptest::collection::vec(-1000i64..1000, 0..50)) {
        let mut catalog = Catalog::new();
        catalog.register(
            "t",
            Table::from_rows(&["v"], vals.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let out = catalog.execute("SELECT v FROM t ORDER BY v ASC").expect("query");
        let got: Vec<i64> = out.rows().iter().map(|r| r[0].as_i64().expect("int")).collect();
        let mut want = vals.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn limit_truncates(vals in proptest::collection::vec(0i64..100, 0..30), limit in 0usize..40) {
        let mut catalog = Catalog::new();
        catalog.register(
            "t",
            Table::from_rows(&["v"], vals.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let out = catalog
            .execute(&format!("SELECT v FROM t LIMIT {limit}"))
            .expect("query");
        prop_assert_eq!(out.len(), vals.len().min(limit));
    }

    #[test]
    fn inner_join_row_count_matches_nested_loop(
        left in proptest::collection::vec(0i64..6, 0..20),
        right in proptest::collection::vec(0i64..6, 0..20),
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "l",
            Table::from_rows(&["k"], left.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        catalog.register(
            "r",
            Table::from_rows(&["k"], right.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let out = catalog
            .execute("SELECT l.k FROM l JOIN r ON l.k = r.k")
            .expect("query");
        let expected: usize = left
            .iter()
            .map(|a| right.iter().filter(|&&b| b == *a).count())
            .sum();
        prop_assert_eq!(out.len(), expected);
    }

    #[test]
    fn full_outer_join_covers_all_rows(
        left in proptest::collection::vec(0i64..4, 0..12),
        right in proptest::collection::vec(0i64..4, 0..12),
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "l",
            Table::from_rows(&["k"], left.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        catalog.register(
            "r",
            Table::from_rows(&["k"], right.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let out = catalog
            .execute("SELECT l.k, r.k FROM l FULL OUTER JOIN r ON l.k = r.k")
            .expect("query");
        // Every left value appears in the left column; every right value in
        // the right column.
        for &v in &left {
            prop_assert!(out.rows().iter().any(|row| row[0].as_i64() == Some(v)));
        }
        for &v in &right {
            prop_assert!(out.rows().iter().any(|row| row[1].as_i64() == Some(v)));
        }
    }

    #[test]
    fn pivot_long_preserves_every_cell(
        cells in proptest::collection::vec((0i64..8, 0usize..3, -10.0f64..10.0), 1..40)
    ) {
        // Deduplicate on (ts, feature): last write wins in the pivot.
        let mut dedup: std::collections::BTreeMap<(i64, usize), f64> = Default::default();
        for &(ts, feat, v) in &cells {
            dedup.insert((ts, feat), v);
        }
        let rows: Vec<Vec<Value>> = dedup
            .iter()
            .map(|(&(ts, feat), &v)| {
                vec![
                    Value::Int(ts),
                    Value::str("fam"),
                    Value::str(format!("f{feat}")),
                    Value::Float(v),
                ]
            })
            .collect();
        let table = Table::from_rows(&["ts", "family", "feature", "v"], rows);
        let frames = pivot_long(&table, "ts", "family", "feature", "v").expect("pivot");
        prop_assert_eq!(frames.len(), 1);
        let frame = &frames[0];
        for (&(ts, feat), &v) in &dedup {
            let row = frame.timestamps.iter().position(|&t| t == ts).expect("ts present");
            let col = frame
                .feature_names
                .iter()
                .position(|n| n == &format!("f{feat}"))
                .expect("feature present");
            prop_assert!((frame.columns[col][row] - v).abs() < 1e-12);
        }
    }
}
