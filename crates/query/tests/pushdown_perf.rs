//! Perf regression guard: on a tsdb-backed filtered-aggregate family
//! query, the pushdown pipeline must beat the naive full-store
//! materialization by a wide margin (expected ~10–100×; asserted at 2× to
//! stay robust under noisy CI machines).

use std::time::{Duration, Instant};

use explainit_query::reference::execute_naive;
use explainit_query::{parse_query, Catalog};
use explainit_tsdb::{SeriesKey, Tsdb};

fn build_db() -> Tsdb {
    let mut db = Tsdb::new();
    for s in 0..300usize {
        let key = SeriesKey::new(format!("noise_{}", s % 40)).with_tag("host", format!("host-{s}"));
        for t in 0..200i64 {
            db.insert(&key, t * 60, (s as f64) + (t as f64) * 0.01);
        }
    }
    for p in ["p1", "p2"] {
        let key = SeriesKey::new("pipeline_runtime").with_tag("pipeline_name", p);
        for t in 0..200i64 {
            db.insert(&key, t * 60, 100.0 + t as f64);
        }
    }
    db
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed());
    }
    best
}

#[test]
fn pushdown_beats_full_store_materialization() {
    let db = build_db();
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let query = parse_query(
        "SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec \
         FROM tsdb WHERE metric_name = 'pipeline_runtime' \
         AND timestamp BETWEEN 0 AND 86400 \
         GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC",
    )
    .expect("parse");

    // Answers must agree before timing means anything.
    let fast = catalog.execute_query(&query).expect("pipeline");
    let slow = execute_naive(&catalog, &query).expect("naive");
    assert_eq!(fast.rows(), slow.rows());
    assert!(!fast.is_empty());

    let pipeline = best_of(5, || {
        catalog.execute_query(&query).expect("pipeline");
    });
    let naive = best_of(5, || {
        execute_naive(&catalog, &query).expect("naive");
    });
    assert!(
        pipeline * 2 < naive,
        "pushdown pipeline ({pipeline:?}) must be at least 2x faster than \
         full materialization ({naive:?})"
    );
}

#[test]
fn explain_shows_pushdown_reaching_the_scan() {
    let db = build_db();
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let plan = catalog
        .execute(
            "EXPLAIN SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec \
             FROM tsdb WHERE metric_name = 'pipeline_runtime' \
             AND timestamp BETWEEN 0 AND 86400 \
             GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC",
        )
        .expect("explain");
    let text: String = plan.rows().iter().map(|r| r[0].render()).collect::<Vec<_>>().join("\n");
    // The whole pipeline collapses into the scan-level aggregate; the
    // pushed-down predicates surface on its EXPLAIN line.
    assert!(text.contains("ScanAggregate"), "plan:\n{text}");
    assert!(text.contains("name=pipeline_runtime"), "plan:\n{text}");
    assert!(text.contains("time=[0, 86400]"), "plan:\n{text}");
}
