//! Property tests for the typed minicolumn kernels: every branch-free
//! selection/arithmetic/fold loop in `explainit_query::kernel` (and the
//! `AggAcc` typed folds) must agree with the scalar `Value` reference
//! semantics — `sql_cmp` three-valued comparisons, exact Int/Float mixed
//! ordering, per-element overflow promotion, push-equivalent folds — over
//! generated columns with NULL runs, NaN/±infinity, signed zeros, i64
//! extremes, empty selections and all-filtered inputs.

use explainit_query::kernel::{
    compile_i64_cmp, compile_i64_cmp_int, f64_arith_cols, f64_arith_const, i64_arith_cols,
    i64_arith_const, mini_from_values, refine_f64_between, refine_f64_cmp, refine_i64_between,
    refine_i64_test, refine_is_null, ArithOp, CmpOp, IntArith, Mini,
};
use explainit_query::{AggAcc, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

const CMP_OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
const ARITH_OPS: [ArithOp; 3] = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul];

/// The scalar WHERE rule: a comparison keeps the row iff it is `true`
/// (unknown — incomparable operands — drops for every operator).
fn cmp_keeps(op: CmpOp, ord: Option<Ordering>) -> bool {
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Decodes a generated `(code, magnitude)` pair into an f64 that covers
/// the special values the kernels must not mishandle.
fn f64_case(code: usize, mag: f64) -> f64 {
    match code % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => mag,
        6 => -mag,
        _ => mag * 1e16, // pushes past 2^53 where f64 integers go sparse
    }
}

/// Decodes a generated `(code, magnitude)` pair into an i64 covering the
/// extremes and the 2^53 representability boundary.
fn i64_case(code: usize, mag: i64) -> i64 {
    match code % 8 {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => 0,
        3 => (1 << 53) + 1,
        4 => -(1 << 53) - 1,
        5 => mag,
        6 => -mag,
        _ => i64::MAX - mag.unsigned_abs().min(1000) as i64,
    }
}

/// Builds the kernel inputs from a generated row list: raw slice, validity
/// bitmap (None when null-free), boxed `Value`s, and a selection subset.
fn build_f64(
    rows: &[(usize, f64, bool)],
    sel_bits: &[bool],
) -> (Vec<f64>, Option<Vec<u64>>, Vec<Value>, Vec<u32>) {
    let floats: Vec<f64> = rows.iter().map(|&(c, m, _)| f64_case(c, m)).collect();
    let boxed: Vec<Value> = rows
        .iter()
        .zip(&floats)
        .map(|(&(_, _, null), &f)| if null { Value::Null } else { Value::Float(f) })
        .collect();
    let any_null = rows.iter().any(|&(_, _, null)| null);
    let validity = any_null.then(|| {
        let mut bits = vec![0u64; rows.len().div_ceil(64)];
        for (i, &(_, _, null)) in rows.iter().enumerate() {
            if !null {
                bits[i >> 6] |= 1 << (i & 63);
            }
        }
        bits
    });
    let sel: Vec<u32> = (0..rows.len())
        .filter(|&i| sel_bits.get(i).copied().unwrap_or(true))
        .map(|i| i as u32)
        .collect();
    (floats, validity, boxed, sel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `refine_f64_cmp` == filtering the selection by scalar `sql_cmp`
    /// over boxed values, across NaN/±inf/-0.0 data, NULL runs, NaN and
    /// infinite constants, and arbitrary (including empty) selections.
    #[test]
    fn f64_cmp_kernel_matches_scalar_reference(
        rows in proptest::collection::vec((0usize..8, -1e3f64..1e3, any::<bool>()), 0..80),
        sel_bits in proptest::collection::vec(any::<bool>(), 0..80),
        k_code in 0usize..8,
        k_mag in -1e3f64..1e3,
        op_idx in 0usize..CMP_OPS.len(),
    ) {
        let op = CMP_OPS[op_idx];
        let k = f64_case(k_code, k_mag);
        let (floats, validity, boxed, sel) = build_f64(&rows, &sel_bits);
        let expected: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| cmp_keeps(op, boxed[i as usize].sql_cmp(&Value::Float(k))))
            .collect();
        let mut got = sel;
        refine_f64_cmp(op, &floats, validity.as_deref(), k, &mut got);
        prop_assert_eq!(got, expected, "op {:?} k {}", op, k);
    }

    /// The compiled i64-vs-f64 threshold test == scalar `sql_cmp` of
    /// `Int(x)` against `Float(k)` — the exact mixed-comparison contract,
    /// including fractional constants, constants beyond ±2^63, NaN and
    /// the i64 extremes.
    #[test]
    fn compiled_i64_cmp_matches_scalar_reference(
        rows in proptest::collection::vec((0usize..8, -1_000_000i64..1_000_000), 0..80),
        sel_bits in proptest::collection::vec(any::<bool>(), 0..80),
        k_code in 0usize..10,
        k_mag in -1e3f64..1e3,
        op_idx in 0usize..CMP_OPS.len(),
    ) {
        let op = CMP_OPS[op_idx];
        let k = match k_code {
            8 => 9_223_372_036_854_775_808.0,  // 2^63: above every i64
            9 => -9_223_372_036_854_775_809.0, // below every i64
            c => f64_case(c, k_mag + 0.5),     // fractional magnitudes
        };
        let ints: Vec<i64> = rows.iter().map(|&(c, m)| i64_case(c, m)).collect();
        let sel: Vec<u32> = (0..ints.len())
            .filter(|&i| sel_bits.get(i).copied().unwrap_or(true))
            .map(|i| i as u32)
            .collect();
        let expected: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| cmp_keeps(op, Value::Int(ints[i as usize]).sql_cmp(&Value::Float(k))))
            .collect();
        let mut got = sel;
        refine_i64_test(compile_i64_cmp(op, k), &ints, None, &mut got);
        prop_assert_eq!(got, expected, "op {:?} k {}", op, k);
    }

    /// The pure-Int compiled test == scalar `sql_cmp` of two Ints.
    #[test]
    fn compiled_i64_cmp_int_matches_scalar_reference(
        rows in proptest::collection::vec((0usize..8, -1_000_000i64..1_000_000), 0..80),
        k_code in 0usize..8,
        k_mag in -1_000_000i64..1_000_000,
        op_idx in 0usize..CMP_OPS.len(),
    ) {
        let op = CMP_OPS[op_idx];
        let k = i64_case(k_code, k_mag);
        let ints: Vec<i64> = rows.iter().map(|&(c, m)| i64_case(c, m)).collect();
        let sel: Vec<u32> = (0..ints.len() as u32).collect();
        let expected: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| cmp_keeps(op, Value::Int(ints[i as usize]).sql_cmp(&Value::Int(k))))
            .collect();
        let mut got = sel;
        refine_i64_test(compile_i64_cmp_int(op, k), &ints, None, &mut got);
        prop_assert_eq!(got, expected, "op {:?} k {}", op, k);
    }

    /// BETWEEN kernels == the scalar two-sided rule: keep iff both
    /// comparisons are known and `lo <= x <= hi` (xor negated); any
    /// unknown side drops regardless of NOT.
    #[test]
    fn between_kernels_match_scalar_reference(
        int_rows in proptest::collection::vec((0usize..8, -1_000_000i64..1_000_000), 0..60),
        f_rows in proptest::collection::vec((0usize..8, -1e3f64..1e3, any::<bool>()), 0..60),
        lo_is_int in any::<bool>(),
        hi_is_int in any::<bool>(),
        lo_code in 0usize..8,
        hi_code in 0usize..8,
        lo_mag in -1e3f64..1e3,
        hi_mag in -1e3f64..1e3,
        negated in any::<bool>(),
    ) {
        let mk = |is_int: bool, code: usize, mag: f64| -> Value {
            if is_int {
                Value::Int(i64_case(code, mag as i64 * 1000))
            } else {
                Value::Float(f64_case(code, mag))
            }
        };
        let scalar = |x: &Value, lo: &Value, hi: &Value| -> bool {
            match (x.sql_cmp(lo), x.sql_cmp(hi)) {
                (Some(a), Some(b)) => {
                    (a != Ordering::Less && b != Ordering::Greater) != negated
                }
                _ => false,
            }
        };

        // Int column, Int-or-Float bounds.
        let lo = mk(lo_is_int, lo_code, lo_mag);
        let hi = mk(hi_is_int, hi_code, hi_mag);
        let ints: Vec<i64> = int_rows.iter().map(|&(c, m)| i64_case(c, m)).collect();
        let expected: Vec<u32> = (0..ints.len() as u32)
            .filter(|&i| scalar(&Value::Int(ints[i as usize]), &lo, &hi))
            .collect();
        let mut got: Vec<u32> = (0..ints.len() as u32).collect();
        refine_i64_between(&ints, None, &lo, &hi, negated, &mut got);
        prop_assert_eq!(got, expected, "int between {:?}..{:?} not={}", lo, hi, negated);

        // Float column, Float bounds (the kernel-eligible shape), with
        // NULL runs carried in the validity bitmap.
        let (lo_f, hi_f) = (f64_case(lo_code, lo_mag), f64_case(hi_code, hi_mag));
        let (floats, validity, boxed, sel) =
            build_f64(&f_rows, &[]);
        let expected: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| scalar(&boxed[i as usize], &Value::Float(lo_f), &Value::Float(hi_f)))
            .collect();
        let mut got = sel;
        refine_f64_between(&floats, validity.as_deref(), lo_f, hi_f, negated, &mut got);
        prop_assert_eq!(got, expected, "float between {}..{} not={}", lo_f, hi_f, negated);
    }

    /// IS [NOT] NULL over a validity bitmap == the boxed `is_null` test.
    #[test]
    fn is_null_kernel_matches_scalar_reference(
        rows in proptest::collection::vec((0usize..8, -1e3f64..1e3, any::<bool>()), 0..80),
        sel_bits in proptest::collection::vec(any::<bool>(), 0..80),
        negated in any::<bool>(),
    ) {
        let (_, validity, boxed, sel) = build_f64(&rows, &sel_bits);
        let expected: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| boxed[i as usize].is_null() != negated)
            .collect();
        let mut got = sel;
        refine_is_null(validity.as_deref(), negated, &mut got);
        prop_assert_eq!(got, expected, "negated={}", negated);
    }

    /// Int arithmetic kernels == the exact scalar rule: compute in i128,
    /// keep Int when it fits i64, promote the overflowing *element* to the
    /// f64 of the exact result (never wrap, never panic).
    #[test]
    fn i64_arith_kernels_match_exact_scalar_rule(
        rows in proptest::collection::vec(((0usize..8, -1_000_000i64..1_000_000), (0usize..8, -1_000_000i64..1_000_000)), 0..60),
        k_code in 0usize..8,
        k_mag in -1_000_000i64..1_000_000,
        op_idx in 0usize..ARITH_OPS.len(),
        swapped in any::<bool>(),
    ) {
        let op = ARITH_OPS[op_idx];
        let k = i64_case(k_code, k_mag);
        let a: Vec<i64> = rows.iter().map(|&((c, m), _)| i64_case(c, m)).collect();
        let b: Vec<i64> = rows.iter().map(|&(_, (c, m))| i64_case(c, m)).collect();
        let exact = |x: i64, y: i64| -> Value {
            let wide = match op {
                ArithOp::Add => i128::from(x) + i128::from(y),
                ArithOp::Sub => i128::from(x) - i128::from(y),
                ArithOp::Mul => i128::from(x) * i128::from(y),
            };
            match i64::try_from(wide) {
                Ok(v) => Value::Int(v),
                Err(_) => Value::Float(wide as f64),
            }
        };
        let check = |got: IntArith, expected: Vec<Value>, label: &str| -> Result<(), TestCaseError> {
            let got: Vec<Value> = match got {
                IntArith::Ints(vs) => vs.into_iter().map(Value::Int).collect(),
                IntArith::Mixed(vs) => vs,
            };
            prop_assert_eq!(got, expected, "{} op {:?} k {}", label, op, k);
            Ok(())
        };

        let expected: Vec<Value> =
            a.iter().map(|&x| if swapped { exact(k, x) } else { exact(x, k) }).collect();
        check(i64_arith_const(op, &a, k, swapped), expected, "const")?;

        let expected: Vec<Value> = a.iter().zip(&b).map(|(&x, &y)| exact(x, y)).collect();
        check(i64_arith_cols(op, &a, &b), expected, "cols")?;
    }

    /// Float arithmetic kernels == plain scalar IEEE ops, bit-for-bit
    /// (NaN/±inf propagate; `to_bits` comparison catches sign-of-zero and
    /// NaN-payload deviations a `==` check would miss).
    #[test]
    fn f64_arith_kernels_match_scalar(
        rows in proptest::collection::vec(((0usize..8, -1e3f64..1e3), (0usize..8, -1e3f64..1e3)), 0..60),
        k_code in 0usize..8,
        k_mag in -1e3f64..1e3,
        op_idx in 0usize..ARITH_OPS.len(),
        swapped in any::<bool>(),
    ) {
        let op = ARITH_OPS[op_idx];
        let k = f64_case(k_code, k_mag);
        let a: Vec<f64> = rows.iter().map(|&((c, m), _)| f64_case(c, m)).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, (c, m))| f64_case(c, m)).collect();
        let exact = |x: f64, y: f64| -> f64 {
            match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
            }
        };
        let bits = |vs: &[f64]| -> Vec<u64> { vs.iter().map(|f| f.to_bits()).collect() };

        let expected: Vec<f64> =
            a.iter().map(|&x| if swapped { exact(k, x) } else { exact(x, k) }).collect();
        prop_assert_eq!(bits(&f64_arith_const(op, &a, k, swapped)), bits(&expected));

        let expected: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| exact(x, y)).collect();
        prop_assert_eq!(bits(&f64_arith_cols(op, &a, &b)), bits(&expected));
    }

    /// The typed aggregate folds == pushing the boxed values one by one,
    /// for every accumulator kind, across NaN/±inf/signed-zero data, NULL
    /// runs, empty selections and all-filtered inputs (finish() results
    /// compared by debug rendering so NaN outcomes stay comparable).
    #[test]
    fn agg_folds_match_boxed_pushes(
        rows in proptest::collection::vec((0usize..8, -1e3f64..1e3, any::<bool>()), 0..60),
        sel_bits in proptest::collection::vec(any::<bool>(), 0..60),
        int_rows in proptest::collection::vec((0usize..8, -1_000_000i64..1_000_000), 0..60),
    ) {
        for name in ["COUNT", "SUM", "AVG", "VARIANCE", "STDDEV", "MIN", "MAX", "PERCENTILE"] {
            // Float folds with validity.
            let (floats, validity, boxed, sel) = build_f64(&rows, &sel_bits);
            let mut folded = AggAcc::new(name).expect("known aggregate");
            folded.fold_f64s(&floats, sel.iter().map(|&i| i as usize), validity.as_deref());
            let mut pushed = AggAcc::new(name).expect("known aggregate");
            for &i in &sel {
                pushed.push(std::slice::from_ref(&boxed[i as usize])).expect("single-arg push");
            }
            prop_assert_eq!(
                format!("{:?}", folded.finish()),
                format!("{:?}", pushed.finish()),
                "float fold {}", name
            );

            // Int folds (validity-free path).
            let ints: Vec<i64> = int_rows.iter().map(|&(c, m)| i64_case(c, m)).collect();
            let isel: Vec<usize> =
                (0..ints.len()).filter(|&i| sel_bits.get(i).copied().unwrap_or(true)).collect();
            let mut folded = AggAcc::new(name).expect("known aggregate");
            folded.fold_i64s(&ints, isel.iter().copied(), None);
            let mut pushed = AggAcc::new(name).expect("known aggregate");
            for &i in &isel {
                pushed.push(&[Value::Int(ints[i])]).expect("single-arg push");
            }
            prop_assert_eq!(
                format!("{:?}", folded.finish()),
                format!("{:?}", pushed.finish()),
                "int fold {}", name
            );
        }
    }

    /// `mini_from_values` extracts homogeneous numeric(+NULL) runs with a
    /// faithful validity bitmap and refuses mixed Int/Float runs (a shared
    /// f64 view would round i64 values above 2^53).
    #[test]
    fn mini_extraction_is_faithful(
        rows in proptest::collection::vec((0usize..3, 0usize..8, -1e3f64..1e3), 0..60),
        kind in 0usize..3,
    ) {
        use explainit_query::kernel::is_valid;
        // kind 0: Float(+NULL); 1: Int(+NULL); 2: mixed numerics.
        let boxed: Vec<Value> = rows
            .iter()
            .map(|&(slot, code, mag)| match (kind, slot) {
                (_, 0) => Value::Null,
                (0, _) => Value::Float(f64_case(code, mag)),
                (1, _) => Value::Int(i64_case(code, mag as i64 * 1000)),
                (_, 1) => Value::Float(f64_case(code, mag)),
                _ => Value::Int(i64_case(code, mag as i64 * 1000)),
            })
            .collect();
        let has_int = boxed.iter().any(|v| matches!(v, Value::Int(_)));
        let has_float = boxed.iter().any(|v| matches!(v, Value::Float(_)));
        match mini_from_values(&boxed) {
            None => prop_assert!(has_int && has_float, "only mixed runs may refuse"),
            Some(Mini::F64(vals, validity)) => {
                prop_assert!(!has_int);
                prop_assert_eq!(vals.len(), boxed.len());
                for (i, v) in boxed.iter().enumerate() {
                    match v {
                        Value::Float(f) => {
                            prop_assert!(is_valid(validity.as_deref(), i));
                            prop_assert_eq!(vals[i].to_bits(), f.to_bits());
                        }
                        _ => prop_assert!(!is_valid(validity.as_deref(), i)),
                    }
                }
            }
            Some(Mini::I64(vals, validity)) => {
                prop_assert!(!has_float);
                prop_assert_eq!(vals.len(), boxed.len());
                for (i, v) in boxed.iter().enumerate() {
                    match v {
                        Value::Int(x) => {
                            prop_assert!(is_valid(validity.as_deref(), i));
                            prop_assert_eq!(vals[i], *x);
                        }
                        _ => prop_assert!(!is_valid(validity.as_deref(), i)),
                    }
                }
            }
        }
    }
}
