//! Differential testing: the plan → optimize → columnar-execute pipeline
//! must produce *identical* tables to the retained naive row interpreter
//! (`explainit_query::reference`) on randomly generated queries and data —
//! same schema, same rows, same row order.
//!
//! Every query runs **four** ways: the pipeline serially (one partition,
//! scan-aggregate pushdown off), the pipeline partition-parallel (a forced
//! multi-morsel split with pushdown off, so partial-aggregate merging is
//! exercised even on small inputs and single-core machines), the pipeline
//! with the **scan-aggregate pushdown** enabled (forced multi-morsel, so
//! the per-series pre-aggregation and its deterministic merge are
//! exercised too), and the reference interpreter. All four must agree
//! bit-for-bit — the accumulators are built to be exactly fold-equivalent
//! (error-free sums, per-class MIN/MAX, gathered PERCENTILE) and the
//! scan-aggregate operator reconstructs the serial first-seen group order
//! from each group's earliest (timestamp, series rank) contribution, so
//! this is an equality check, not an epsilon one.

use explainit_query::reference::execute_naive;
use explainit_query::{parse_query, Catalog, ExecOptions, Table, Value};
use explainit_tsdb::{glob_match, MetricFilter, SeriesKey, Tsdb};
use proptest::prelude::*;

const HOSTS: [&str; 4] = ["web-1", "web-2", "db-1", "app-3"];
const METRICS: [&str; 3] = ["cpu", "disk_read", "pipeline_runtime"];

/// Rows for table `t(ts, host, v)`.
fn t_rows() -> impl Strategy<Value = Vec<(i64, usize, f64)>> {
    proptest::collection::vec((0i64..5, 0usize..HOSTS.len(), -50.0f64..50.0), 0..25)
}

/// Rows for table `u(ts, w)`.
fn u_rows() -> impl Strategy<Value = Vec<(i64, f64)>> {
    proptest::collection::vec((0i64..5, -50.0f64..50.0), 0..15)
}

/// Observations for the TSDB: (metric, host, ts, value).
fn tsdb_points() -> impl Strategy<Value = Vec<(usize, usize, i64, f64)>> {
    proptest::collection::vec(
        (0usize..METRICS.len(), 0usize..HOSTS.len(), 0i64..400, -10.0f64..10.0),
        0..60,
    )
}

fn build_catalog(
    t: &[(i64, usize, f64)],
    u: &[(i64, f64)],
    points: &[(usize, usize, i64, f64)],
) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(
        "t",
        Table::from_rows(
            &["ts", "host", "v"],
            t.iter()
                .map(|&(ts, h, v)| vec![Value::Int(ts), Value::str(HOSTS[h]), Value::Float(v)])
                .collect(),
        ),
    );
    catalog.register(
        "u",
        Table::from_rows(
            &["ts", "w"],
            u.iter().map(|&(ts, w)| vec![Value::Int(ts), Value::Float(w)]).collect(),
        ),
    );
    let mut db = Tsdb::new();
    for &(m, h, ts, v) in points {
        let key = SeriesKey::new(METRICS[m]).with_tag("host", HOSTS[h]);
        db.insert(&key, ts, v);
    }
    // One tag-free series so `tag['host'] IS NULL` has hits.
    db.insert(&SeriesKey::new("untagged"), 0, 1.0);
    catalog.register_tsdb("tsdb", &db);
    catalog
}

/// Runs `sql` serially, partition-parallel, with the scan-aggregate
/// pushdown, and through the reference interpreter, asserting all four
/// agree (or all four reject).
fn assert_same(catalog: &Catalog, sql: &str) -> Result<(), TestCaseError> {
    let query = match parse_query(sql) {
        Ok(q) => q,
        Err(e) => panic!("generated query must parse: {sql}: {e}"),
    };
    let serial = catalog.execute_query_with(
        &query,
        ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
    );
    let engines = [
        (
            "parallel",
            ExecOptions { partitions: 3, scan_aggregate: false, ..ExecOptions::default() },
        ),
        (
            "scan-aggregate serial",
            ExecOptions { partitions: 1, scan_aggregate: true, ..ExecOptions::default() },
        ),
        (
            "scan-aggregate parallel",
            ExecOptions { partitions: 3, scan_aggregate: true, ..ExecOptions::default() },
        ),
    ];
    for (label, opts) in engines {
        let other = catalog.execute_query_with(&query, opts);
        match (&serial, &other) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    a.schema().columns(),
                    b.schema().columns(),
                    "serial/{} schema mismatch for {}",
                    label,
                    sql
                );
                prop_assert_eq!(a.rows(), b.rows(), "serial/{} row mismatch for {}", label, sql);
            }
            (Err(_), Err(_)) => {}
            _ => panic!(
                "serial/{label} divergence for {sql}:\n  serial: {:?}\n  {label}: {:?}",
                serial.as_ref().map(Table::len),
                other.as_ref().map(Table::len)
            ),
        }
    }
    let naive = execute_naive(catalog, &query);
    match (serial, naive) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(
                a.schema().columns(),
                b.schema().columns(),
                "schema mismatch for {}",
                sql
            );
            prop_assert_eq!(a.rows(), b.rows(), "row mismatch for {}", sql);
        }
        (Err(a), Err(b)) => {
            // Both reject: fine (same class not enforced, message may differ).
            let _ = (a, b);
        }
        (fast, naive) => panic!(
            "divergent outcome for {sql}:\n  pipeline: {:?}\n  reference: {:?}",
            fast.map(|t| t.len()),
            naive.map(|t| t.len())
        ),
    }
    Ok(())
}

const PREDICATES: [&str; 8] = [
    "ts > 2",
    "v <= 10.0",
    "host LIKE 'web%'",
    "host = 'web-1'",
    "ts BETWEEN 1 AND 3",
    "v * 2 > -20.0",
    "ts IN (0, 2, 4)",
    "host IS NOT NULL",
];

const PROJECTIONS: [&str; 4] = ["*", "ts, v", "host, v * 2 AS dv", "ts + 1 AS t2, v"];

const ORDERS: [&str; 4] = ["", " ORDER BY ts", " ORDER BY v DESC", " ORDER BY ts DESC, v"];

/// Aggregate select lists for the aggregate-heavy generator — mixes the
/// corrected semantics (sample STDDEV/VARIANCE, Int-preserving SUM,
/// constant-p PERCENTILE) with the mergeable basics.
const AGG_ITEMS: [&str; 6] = [
    "AVG(v) AS m, COUNT(*) AS n, MAX(v) AS mx",
    "SUM(v) AS s, MIN(v) AS lo, STDDEV(v) AS sd",
    "VARIANCE(v) AS var, PERCENTILE(v, 0.5) AS med",
    "SUM(ts) AS s_int, COUNT(v) AS n",
    "PERCENTILE(v, 0.9) AS p90, STDDEV(v) AS sd, SUM(v) AS s",
    "MIN(host) AS h0, MAX(host) AS h1, VARIANCE(ts) AS vt",
];

/// Group-key lists for the scan-aggregate generator: the timestamp
/// column, dictionary-encoded keys, and combinations of both.
const SA_KEYS: [&str; 5] =
    ["timestamp", "metric_name", "tag['host']", "timestamp, tag['host']", "metric_name, timestamp"];

/// Aggregate lists for the scan-aggregate generator: mixed mergeable
/// aggregates (SUM/AVG/STDDEV/PERCENTILE), Int-typed SUM over the
/// timestamp column, per-class MIN/MAX over dictionary expressions, and a
/// computed per-point argument.
const SA_ITEMS: [&str; 6] = [
    "AVG(value) AS m, COUNT(*) AS n, MAX(value) AS mx",
    "SUM(value) AS s, MIN(value) AS lo, STDDEV(value) AS sd",
    "VARIANCE(value) AS var, PERCENTILE(value, 0.5) AS med",
    "SUM(timestamp) AS s_int, COUNT(value) AS n",
    "PERCENTILE(value, 0.9) AS p90, MIN(tag['host']) AS h0",
    "MIN(metric_name) AS m0, MAX(tag['host']) AS h1, SUM(value * 2) AS s2",
];

/// WHERE clauses for the scan-aggregate generator: fully pushable
/// predicates, residual value filters, and mixes of both.
const SA_FILTERS: [&str; 7] = [
    "",
    " WHERE metric_name = 'cpu'",
    " WHERE timestamp BETWEEN {lo} AND {hi}",
    " WHERE value > -5.0",
    " WHERE tag['host'] GLOB 'web*'",
    " WHERE metric_name GLOB 'disk*' AND value > 0.0",
    " WHERE tag['host'] IS NULL",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_selects_agree(
        t in t_rows(), u in u_rows(),
        proj in 0usize..PROJECTIONS.len(),
        p1 in 0usize..PREDICATES.len(),
        p2 in 0usize..PREDICATES.len(),
        conj in any::<bool>(),
        ord in 0usize..ORDERS.len(),
        limit in 0usize..8,
        use_limit in any::<bool>(),
    ) {
        let catalog = build_catalog(&t, &u, &[]);
        let glue = if conj { "AND" } else { "OR" };
        let mut sql = format!(
            "SELECT {} FROM t WHERE {} {glue} {}{}",
            PROJECTIONS[proj], PREDICATES[p1], PREDICATES[p2], ORDERS[ord]
        );
        if use_limit {
            sql.push_str(&format!(" LIMIT {limit}"));
        }
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn grouped_selects_agree(
        t in t_rows(), u in u_rows(),
        p in 0usize..PREDICATES.len(),
        key_is_host in any::<bool>(),
        order_by_key in any::<bool>(),
    ) {
        let catalog = build_catalog(&t, &u, &[]);
        let key = if key_is_host { "host" } else { "ts" };
        let order = if order_by_key { format!(" ORDER BY {key}") } else { String::new() };
        let sql = format!(
            "SELECT {key}, AVG(v) AS m, COUNT(*) AS n, MAX(v) AS mx FROM t \
             WHERE {} GROUP BY {key}{order}",
            PREDICATES[p]
        );
        assert_same(&catalog, &sql)?;
        // Global aggregate (no GROUP BY).
        let sql = format!("SELECT SUM(v) AS s, MIN(v) AS lo FROM t WHERE {}", PREDICATES[p]);
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn aggregate_heavy_group_bys_agree(
        t in t_rows(), u in u_rows(),
        items in 0usize..AGG_ITEMS.len(),
        p in 0usize..PREDICATES.len(),
        filtered in any::<bool>(),
        key_is_host in any::<bool>(),
        order_by_key in any::<bool>(),
        global in any::<bool>(),
    ) {
        let catalog = build_catalog(&t, &u, &[]);
        let agg = AGG_ITEMS[items];
        let filter = if filtered { format!(" WHERE {}", PREDICATES[p]) } else { String::new() };
        let sql = if global {
            format!("SELECT {agg} FROM t{filter}")
        } else {
            let key = if key_is_host { "host" } else { "ts" };
            let order = if order_by_key { format!(" ORDER BY {key}") } else { String::new() };
            format!("SELECT {key}, {agg} FROM t{filter} GROUP BY {key}{order}")
        };
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn joins_agree(
        t in t_rows(), u in u_rows(),
        kind in 0usize..3,
        p in 0usize..PREDICATES.len(),
        filtered in any::<bool>(),
    ) {
        let catalog = build_catalog(&t, &u, &[]);
        let join = ["JOIN", "LEFT JOIN", "FULL OUTER JOIN"][kind];
        let mut sql = format!("SELECT t.ts, v, w FROM t {join} u ON t.ts = u.ts");
        if filtered {
            sql.push_str(&format!(" WHERE {}", PREDICATES[p]));
        }
        assert_same(&catalog, &sql)?;
        // Non-equi condition exercises the nested-loop fallback in both.
        let sql = format!("SELECT t.ts, u.ts FROM t {join} u ON t.ts < u.ts");
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn unions_and_subqueries_agree(
        t in t_rows(), u in u_rows(),
        k in 0i64..5,
        thresh in -20.0f64..20.0,
    ) {
        let catalog = build_catalog(&t, &u, &[]);
        // Same-typed union partition (coercion-free so both engines agree).
        let sql = format!(
            "SELECT v FROM t WHERE ts > {k} UNION ALL SELECT v FROM t WHERE NOT (ts > {k})"
        );
        assert_same(&catalog, &sql)?;
        // Aggregating subquery with an outer filter (pushdown through
        // Project/Aggregate boundaries).
        let sql = format!(
            "SELECT m FROM (SELECT ts, AVG(v) AS m FROM t GROUP BY ts) s WHERE m > {thresh}"
        );
        assert_same(&catalog, &sql)?;
        // LAG across a filtered projection (row-shim fallback path).
        let sql = "SELECT ts, v, LAG(v, 1) AS prev FROM t WHERE host LIKE 'web%' ORDER BY ts, v";
        assert_same(&catalog, sql)?;
        // Outer filter over a window subquery: the filter must NOT sink
        // below the projection (it would shrink LAG's window).
        let sql = format!(
            "SELECT prev FROM (SELECT ts, LAG(v) AS prev FROM t) s WHERE ts > {k}"
        );
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn tsdb_pushdown_agrees_with_materialized_scans(
        points in tsdb_points(),
        m in 0usize..METRICS.len(),
        h in 0usize..HOSTS.len(),
        lo in 0i64..200,
        span in 1i64..200,
        variant in 0usize..6,
    ) {
        let catalog = build_catalog(&[], &[], &points);
        let metric = METRICS[m];
        let host = HOSTS[h];
        let hi = lo + span;
        let sql = match variant {
            0 => format!("SELECT * FROM tsdb WHERE metric_name = '{metric}'"),
            1 => format!(
                "SELECT timestamp, value FROM tsdb WHERE metric_name = '{metric}' \
                 AND timestamp BETWEEN {lo} AND {hi}"
            ),
            2 => format!(
                "SELECT timestamp, tag['host'] AS h, value FROM tsdb \
                 WHERE tag['host'] = '{host}' ORDER BY timestamp, h"
            ),
            3 => format!(
                "SELECT timestamp, AVG(value) AS mean_v FROM tsdb \
                 WHERE metric_name = '{metric}' AND timestamp >= {lo} \
                 GROUP BY timestamp ORDER BY timestamp"
            ),
            4 => "SELECT value FROM tsdb WHERE tag['host'] IS NULL".to_string(),
            _ => format!(
                "SELECT metric_name, COUNT(*) AS n, SUM(value) AS s FROM tsdb \
                 WHERE timestamp < {hi} AND value > -5.0 \
                 GROUP BY metric_name ORDER BY metric_name"
            ),
        };
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn glob_queries_agree_with_reference(
        points in tsdb_points(),
        variant in 0usize..5,
        h in 0usize..HOSTS.len(),
    ) {
        // The pipeline pushes GLOB (and translatable LIKE) patterns into
        // the scan — the glob-prefix name-index range scan and
        // TagFilter::Glob — while the reference evaluates the operator per
        // materialized row. Agreement proves the pushdown is lossless.
        let catalog = build_catalog(&[], &[], &points);
        let sql = match variant {
            0 => "SELECT timestamp, value FROM tsdb WHERE metric_name GLOB 'disk*' \
                  ORDER BY timestamp, value"
                .to_string(),
            1 => "SELECT metric_name, COUNT(*) AS n FROM tsdb \
                  WHERE metric_name GLOB '*_r?ad' GROUP BY metric_name"
                .to_string(),
            2 => format!(
                "SELECT timestamp, value FROM tsdb WHERE tag['host'] GLOB '{}*' \
                 ORDER BY timestamp, value",
                &HOSTS[h][..3]
            ),
            3 => "SELECT COUNT(*) AS n FROM tsdb WHERE metric_name LIKE 'pipeline%'".to_string(),
            _ => "SELECT value FROM tsdb WHERE metric_name GLOB 'c?u' AND value > -5.0 \
                  ORDER BY value"
                .to_string(),
        };
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn scan_aggregate_group_bys_agree(
        points in tsdb_points(),
        keys in 0usize..SA_KEYS.len(),
        items in 0usize..SA_ITEMS.len(),
        filter in 0usize..SA_FILTERS.len(),
        lo in 0i64..200,
        span in 1i64..200,
        order_by_first_key in any::<bool>(),
    ) {
        // The scan-aggregate generator: every query here is eligible (or
        // nearly eligible) for the ScanAggregate rewrite — GROUP BY
        // timestamp / dictionary-encoded tag keys / metric_name, mixed
        // mergeable aggregates over value/timestamp (Int typing included),
        // residual value filters, tag globs and absent-tag predicates.
        let catalog = build_catalog(&[], &[], &points);
        let filter = SA_FILTERS[filter]
            .replace("{lo}", &lo.to_string())
            .replace("{hi}", &(lo + span).to_string());
        let key = SA_KEYS[keys];
        let order = if order_by_first_key {
            format!(" ORDER BY {}", key.split(',').next().expect("non-empty key list"))
        } else {
            String::new()
        };
        let sql = format!("SELECT {key}, {} FROM tsdb{filter} GROUP BY {key}{order}", SA_ITEMS[items]);
        assert_same(&catalog, &sql)?;
        // Global aggregate over the same filter (no GROUP BY).
        let sql = format!("SELECT {} FROM tsdb{filter}", SA_ITEMS[items]);
        assert_same(&catalog, &sql)?;
    }

    #[test]
    fn merge_gather_agrees_with_stable_sort_and_reference(
        points in tsdb_points(),
        dup_ts in proptest::collection::vec((0usize..HOSTS.len(), 0i64..6), 0..12),
        with_extremes in any::<bool>(),
        with_empty_in_range in any::<bool>(),
        lo in 0i64..200,
        span in 1i64..200,
        variant in 0usize..5,
    ) {
        // The k-way merge gather must be bit-identical to the retained
        // global stable sort across the shapes that stress its tiebreaks:
        // duplicate timestamps across series (heap ties resolved by rank),
        // series left empty by the time range, a single surviving series,
        // and points at the i64 extremes.
        let mut db = Tsdb::new();
        for &(m, h, ts, v) in &points {
            db.insert(&SeriesKey::new(METRICS[m]).with_tag("host", HOSTS[h]), ts, v);
        }
        for &(h, ts) in &dup_ts {
            // The same few timestamps in many series: cross-series ties.
            db.insert(&SeriesKey::new("dup").with_tag("host", HOSTS[h]), ts, h as f64);
        }
        if with_extremes {
            db.insert(&SeriesKey::new("edge"), i64::MIN, -1.0);
            db.insert(&SeriesKey::new("edge"), i64::MAX, 1.0);
        }
        if with_empty_in_range {
            // All points far outside every generated time window.
            db.insert(&SeriesKey::new("cpu").with_tag("host", "off-range"), 900_000, 0.0);
        }
        db.insert(&SeriesKey::new("solo"), 3, 7.0);
        let mut catalog = Catalog::new();
        catalog.register_tsdb("tsdb", &db);

        let hi = lo + span;
        let sql = match variant {
            0 => "SELECT * FROM tsdb".to_string(),
            1 => format!("SELECT timestamp, value FROM tsdb WHERE timestamp BETWEEN {lo} AND {hi}"),
            2 => "SELECT timestamp, value FROM tsdb WHERE metric_name = 'solo'".to_string(),
            3 => format!("SELECT timestamp, tag['host'] AS h FROM tsdb WHERE timestamp >= {lo}"),
            _ => "SELECT timestamp, metric_name, value FROM tsdb WHERE metric_name GLOB 'd*'"
                .to_string(),
        };
        let query = parse_query(&sql).expect("generated query parses");
        let merged = catalog
            .execute_query_with(&query, ExecOptions { merge_gather: true, ..ExecOptions::default() })
            .expect("merge gather runs");
        let sorted = catalog
            .execute_query_with(
                &query,
                ExecOptions { merge_gather: false, ..ExecOptions::default() },
            )
            .expect("stable sort runs");
        prop_assert_eq!(merged.schema(), sorted.schema(), "schema mismatch for {}", &sql);
        prop_assert_eq!(merged.rows(), sorted.rows(), "row mismatch for {}", &sql);
        let naive = execute_naive(&catalog, &query).expect("reference runs");
        prop_assert_eq!(merged.rows(), naive.rows(), "reference mismatch for {}", &sql);
    }

    #[test]
    fn glob_prefix_find_matches_brute_force(
        points in tsdb_points(),
        pat in 0usize..6,
    ) {
        // Store-level property for the prefix range scan itself.
        let mut db = Tsdb::new();
        for &(m, h, ts, v) in &points {
            db.insert(&SeriesKey::new(METRICS[m]).with_tag("host", HOSTS[h]), ts, v);
        }
        let pattern = ["cpu*", "disk*", "disk_r?ad", "pipeline*e", "*untime", "c*p*u"][pat];
        let fast = db.find(&MetricFilter::name(pattern));
        let brute: Vec<_> = db
            .iter()
            .filter(|(_, s)| glob_match(pattern, &s.key.name))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(fast, brute, "pattern {}", pattern);
    }
}

/// Pins the corrected aggregate semantics with exact expected values, in
/// all three engines.
#[test]
fn corrected_aggregate_semantics_pinned() {
    // t(ts, host, v) with v = [2, 4, 4, 4, 5, 5, 7, 9] in one group:
    // sample variance = 32/7, stddev = sqrt(32/7) (population would be 4).
    let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    let rows: Vec<Vec<Value>> = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| vec![Value::Int(i as i64), Value::str("h"), Value::Float(v)])
        .collect();
    let mut catalog = Catalog::new();
    catalog.register("t", Table::from_rows(&["ts", "host", "v"], rows));

    let sql = "SELECT VARIANCE(v) AS var, STDDEV(v) AS sd, SUM(ts) AS si, SUM(v) AS sf, \
               PERCENTILE(v, 0.5) AS med FROM t";
    let query = parse_query(sql).unwrap();
    let expect = vec![
        Value::Float(32.0 / 7.0),
        Value::Float((32.0f64 / 7.0).sqrt()),
        Value::Int(28),     // Int column keeps Int typing
        Value::Float(40.0), // Float column stays Float
        Value::Float(4.5),
    ];
    for parts in [1usize, 2, 3, 8] {
        let out = catalog.execute_query_with(&query, ExecOptions::with_partitions(parts)).unwrap();
        assert_eq!(out.rows()[0], expect, "partitions={parts}");
    }
    let naive = execute_naive(&catalog, &query).unwrap();
    assert_eq!(naive.rows()[0], expect, "reference");
}

/// All four engines on one eligible family query, pinned (no generators):
/// the scan-aggregate result must be value-identical to serial, parallel
/// and reference execution, including group order without an ORDER BY.
#[test]
fn scan_aggregate_pinned_four_way() {
    let mut db = Tsdb::new();
    for (host, base) in [("web-1", 1.0), ("web-2", 2.0), ("db-1", 10.0)] {
        let key = SeriesKey::new("cpu").with_tag("host", host);
        for t in 0..7 {
            db.insert(&key, t * 60, base + t as f64 * 0.25);
        }
    }
    db.insert(&SeriesKey::new("untagged"), 0, 5.0);
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let query = parse_query(
        "SELECT timestamp, tag['host'] AS h, AVG(value) AS m, SUM(value) AS s, \
         COUNT(*) AS n, STDDEV(value) AS sd, PERCENTILE(value, 0.5) AS med \
         FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp, tag['host']",
    )
    .unwrap();
    let baseline = catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
        )
        .unwrap();
    assert_eq!(baseline.len(), 21);
    for partitions in [1usize, 2, 3, 8] {
        let out = catalog
            .execute_query_with(
                &query,
                ExecOptions { partitions, scan_aggregate: true, ..ExecOptions::default() },
            )
            .unwrap();
        assert_eq!(out.schema(), baseline.schema());
        assert_eq!(out.rows(), baseline.rows(), "pushdown partitions={partitions}");
    }
    let naive = execute_naive(&catalog, &query).unwrap();
    assert_eq!(naive.rows(), baseline.rows(), "reference");
}

/// SUM over the Int timestamp column keeps Int typing in the scan
/// aggregate, and promotes to the exact float sum on i64 overflow —
/// identically to the row engines.
#[test]
fn scan_aggregate_int_typing_and_overflow_promotion() {
    // Small timestamps: SUM(timestamp) stays Int.
    let mut db = Tsdb::new();
    let key = SeriesKey::new("m").with_tag("host", "a");
    for t in [1i64, 2, 3] {
        db.insert(&key, t, 1.0);
    }
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let query = parse_query("SELECT SUM(timestamp) AS s FROM tsdb").unwrap();
    for scan_aggregate in [false, true] {
        let out = catalog
            .execute_query_with(
                &query,
                ExecOptions { partitions: 2, scan_aggregate, ..ExecOptions::default() },
            )
            .unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(6), "pushdown={scan_aggregate}");
    }

    // Near-i64::MAX timestamps: the i128-exact sum overflows i64 and
    // promotes to the error-free float sum in every engine.
    let mut db = Tsdb::new();
    let big = i64::MAX - 10;
    db.insert(&SeriesKey::new("m").with_tag("host", "a"), big, 1.0);
    db.insert(&SeriesKey::new("m").with_tag("host", "b"), big - 1, 2.0);
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let naive = execute_naive(&catalog, &query).unwrap();
    let expect = naive.rows()[0][0].clone();
    assert!(matches!(expect, Value::Float(_)), "overflow must promote, got {expect:?}");
    for scan_aggregate in [false, true] {
        for partitions in [1usize, 2] {
            let out = catalog
                .execute_query_with(
                    &query,
                    ExecOptions { partitions, scan_aggregate, ..ExecOptions::default() },
                )
                .unwrap();
            assert_eq!(
                out.rows()[0][0],
                expect,
                "pushdown={scan_aggregate} partitions={partitions}"
            );
        }
    }
}

/// `group_key` folds Int keys through f64, so timestamps beyond 2^53 that
/// collapse to the same double must land in the same group — in the scan
/// aggregate exactly as in the string-keyed engines.
#[test]
fn scan_aggregate_folds_giant_timestamps_like_group_key() {
    let mut db = Tsdb::new();
    let t0 = 1i64 << 53;
    db.insert(&SeriesKey::new("m").with_tag("host", "a"), t0, 1.0);
    db.insert(&SeriesKey::new("m").with_tag("host", "b"), t0 + 1, 2.0); // same f64 as t0
    db.insert(&SeriesKey::new("m").with_tag("host", "c"), t0 + 2, 4.0); // distinct f64
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);
    let query = parse_query(
        "SELECT timestamp, SUM(value) AS s, COUNT(*) AS n FROM tsdb GROUP BY timestamp",
    )
    .unwrap();
    let baseline = catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
        )
        .unwrap();
    assert_eq!(baseline.len(), 2, "t0 and t0+1 fold into one group");
    for partitions in [1usize, 2, 3] {
        let out = catalog
            .execute_query_with(
                &query,
                ExecOptions { partitions, scan_aggregate: true, ..ExecOptions::default() },
            )
            .unwrap();
        assert_eq!(out.rows(), baseline.rows(), "partitions={partitions}");
    }
    let naive = execute_naive(&catalog, &query).unwrap();
    assert_eq!(naive.rows(), baseline.rows());
}

/// MIN/MAX over streams containing NaN are *order-dependent* folds (NaN
/// is incomparable, so `fold_minmax` keeps it as a separate class and the
/// result is the first-seen class's best). The optimizer must therefore
/// keep MIN/MAX-over-value pipelines off the series-major scan aggregate
/// unless `timestamp` is a group key (where series-rank order equals row
/// order within each group) — and either way, every engine must agree.
#[test]
fn minmax_with_nan_agrees_across_engines() {
    let mut db = Tsdb::new();
    // Rank order (canonical key order) differs from row (timestamp)
    // order: host=a scans first but its point is *later*, so a
    // series-major MIN fold would see 5.0 before the NaN that serial row
    // order sees first.
    db.insert(&SeriesKey::new("m").with_tag("host", "a"), 100, 5.0);
    db.insert(&SeriesKey::new("m").with_tag("host", "b"), 0, f64::NAN);
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db);

    // NaN != NaN under `PartialEq`, so identical results would still fail
    // a row comparison; compare the debug rendering instead (NaN renders
    // stably).
    let rendered = |t: &Table| format!("{:?}", t.rows());
    for sql in [
        "SELECT MIN(value) AS lo FROM tsdb",
        "SELECT MAX(value) AS hi FROM tsdb",
        "SELECT metric_name, MIN(value) AS lo FROM tsdb GROUP BY metric_name",
        "SELECT timestamp, MIN(value) AS lo FROM tsdb GROUP BY timestamp",
    ] {
        let query = parse_query(sql).unwrap();
        let baseline = catalog
            .execute_query_with(
                &query,
                ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
            )
            .unwrap();
        for partitions in [1usize, 2] {
            let out = catalog
                .execute_query_with(
                    &query,
                    ExecOptions { partitions, scan_aggregate: true, ..ExecOptions::default() },
                )
                .unwrap();
            assert_eq!(rendered(&out), rendered(&baseline), "{sql} partitions={partitions}");
        }
        let naive = execute_naive(&catalog, &query).unwrap();
        assert_eq!(rendered(&naive), rendered(&baseline), "{sql} reference");
    }
}

/// Mixed Int/Float comparisons must be *exact* — no rounding the Int
/// column through f64 — and identical in the vectorized kernels, the row
/// engines and the reference. Pins the cases where a lossy `as f64`
/// compare gives the wrong answer: i64 values above 2^53 against Float
/// constants, Float columns against non-round-trippable Int constants,
/// and NaN data dropping for every operator.
#[test]
fn mixed_int_float_comparisons_pinned_exact() {
    let p53 = 1i64 << 53; // 9007199254740992: the last exactly-representable step
    let rows = vec![
        vec![Value::Int(p53), Value::Float(0.5)],
        vec![Value::Int(p53 + 1), Value::Float(f64::NAN)],
        vec![Value::Int(i64::MAX), Value::Float(9_223_372_036_854_775_807i64 as f64)],
        vec![Value::Int(-3), Value::Float(f64::NEG_INFINITY)],
    ];
    let mut catalog = Catalog::new();
    catalog.register("b", Table::from_rows(&["x", "v"], rows));

    let serial = |sql: &str| {
        let query = parse_query(sql).unwrap();
        catalog
            .execute_query_with(
                &query,
                ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
            )
            .unwrap()
    };
    let x_of = |t: &Table| -> Vec<Value> { t.rows().iter().map(|r| r[0].clone()).collect() };

    // 2^53 + 1 rounds down to 2^53 under `as f64`; the exact compare must
    // still see it as strictly greater than the 2^53 Float constant.
    let out = serial("SELECT x FROM b WHERE x > 9007199254740992.0");
    assert_eq!(x_of(&out), vec![Value::Int(p53 + 1), Value::Int(i64::MAX)]);
    let out = serial("SELECT x FROM b WHERE x = 9007199254740992.0");
    assert_eq!(x_of(&out), vec![Value::Int(p53)], "!= under rounding, = exactly");

    // i64::MAX as f64 rounds *up* to 2^63, so the Float cell is strictly
    // greater than the Int constant i64::MAX — a lossy compare calls them
    // equal.
    let out = serial("SELECT x FROM b WHERE v <= 9223372036854775807");
    assert_eq!(x_of(&out), vec![Value::Int(p53), Value::Int(-3)]);
    let out = serial("SELECT x FROM b WHERE v > 9223372036854775807");
    assert_eq!(x_of(&out), vec![Value::Int(i64::MAX)]);

    // Fractional constants partition Int values exactly.
    let out = serial("SELECT x FROM b WHERE x <= -2.5");
    assert_eq!(x_of(&out), vec![Value::Int(-3)]);

    // NaN cells drop for EVERY comparison operator (SQL unknown), and
    // -inf compares below every finite constant.
    let out = serial("SELECT x FROM b WHERE v != 12345.0");
    assert_eq!(x_of(&out), vec![Value::Int(p53), Value::Int(i64::MAX), Value::Int(-3)]);
    let out = serial("SELECT x FROM b WHERE v < 1e308");
    assert_eq!(x_of(&out), vec![Value::Int(p53), Value::Int(i64::MAX), Value::Int(-3)]);

    // And all engines (serial/parallel/scan-agg x2/reference) agree on
    // every shape, including BETWEEN over the huge-Int boundary.
    for sql in [
        "SELECT x FROM b WHERE x > 9007199254740992.0",
        "SELECT x FROM b WHERE x = 9007199254740992.0",
        "SELECT x FROM b WHERE x != 9007199254740992.0 ORDER BY x",
        "SELECT x FROM b WHERE v <= 9223372036854775807",
        "SELECT x FROM b WHERE x <= -2.5",
        "SELECT x FROM b WHERE v != 12345.0",
        "SELECT x FROM b WHERE v < 1e308 AND x > 2.5",
        "SELECT x FROM b WHERE x BETWEEN -2.5 AND 9007199254740992.0",
        "SELECT COUNT(*) AS n FROM b WHERE v = v",
    ] {
        assert_same(&catalog, sql).unwrap();
    }
}

/// Int arithmetic at the i64 extremes promotes to Float instead of
/// wrapping or panicking, identically in the vectorized kernels, the row
/// engines and the reference (satellite: overflow audit).
#[test]
fn int_arithmetic_overflow_promotes_in_all_engines() {
    let rows = vec![
        vec![Value::Int(i64::MAX), Value::Int(1)],
        vec![Value::Int(i64::MIN), Value::Int(-1)],
        vec![Value::Int(1 << 53), Value::Int(3)],
    ];
    let mut catalog = Catalog::new();
    catalog.register("b", Table::from_rows(&["x", "k"], rows));

    let query = parse_query("SELECT x + 1 AS a, x * k AS m, x - 1 AS s FROM b").unwrap();
    let serial = catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() },
        )
        .unwrap();
    // i64::MAX + 1 promotes; (2^53) + 1 stays exact Int.
    assert_eq!(serial.rows()[0][0], Value::Float((i128::from(i64::MAX) + 1) as f64));
    assert_eq!(serial.rows()[1][0], Value::Int(i64::MIN + 1));
    assert_eq!(serial.rows()[2][0], Value::Int((1 << 53) + 1));
    // i64::MIN * -1 overflows by exactly one; the exact i128 product
    // converts to 2^63 as f64.
    assert_eq!(serial.rows()[1][1], Value::Float(9_223_372_036_854_775_808.0));
    assert_eq!(serial.rows()[1][2], Value::Float((i128::from(i64::MIN) - 1) as f64));

    for sql in [
        "SELECT x + 1 AS a, x * k AS m, x - 1 AS s FROM b",
        "SELECT x FROM b WHERE x * k > 0",
        "SELECT SUM(x) AS s FROM b",
    ] {
        assert_same(&catalog, sql).unwrap();
    }
}

/// Non-constant PERCENTILE p must error identically everywhere.
#[test]
fn non_constant_percentile_p_rejected_by_all_engines() {
    let rows = vec![
        vec![Value::Int(0), Value::str("a"), Value::Float(1.0)],
        vec![Value::Int(1), Value::str("a"), Value::Float(2.0)],
    ];
    let mut catalog = Catalog::new();
    catalog.register("t", Table::from_rows(&["ts", "host", "v"], rows));
    let query = parse_query("SELECT PERCENTILE(v, ts * 0.1) AS p FROM t").unwrap();
    for parts in [1usize, 2] {
        let out = catalog.execute_query_with(&query, ExecOptions::with_partitions(parts));
        assert!(
            matches!(out, Err(explainit_query::QueryError::BadFunction(_))),
            "partitions={parts}: {out:?}"
        );
    }
    assert!(matches!(
        execute_naive(&catalog, &query),
        Err(explainit_query::QueryError::BadFunction(_))
    ));
}
