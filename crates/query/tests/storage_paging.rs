//! The four-way differential family query over a *demand-paged* store:
//! whatever the page budget — zero, about one chunk, or unbounded — every
//! engine must produce rows bit-identical to the fully-resident run,
//! while the paging counters prove the tight budgets actually faulted
//! and evicted.

use std::path::PathBuf;

use explainit_query::reference::execute_naive;
use explainit_query::{parse_query, Catalog, ExecOptions, Table};
use explainit_tsdb::{SeriesKey, StorageOptions, Tsdb};

const FAMILY_SQL: &str = "SELECT timestamp, tag['host'] AS h, AVG(value) AS m, SUM(value) AS s, \
     COUNT(*) AS n, STDDEV(value) AS sd, PERCENTILE(value, 0.5) AS med \
     FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp, tag['host']";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("explainit-qpaging-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a store whose series span several chunks (one per flush round),
/// so a one-chunk budget forces paging mid-query.
fn build_store(dir: &std::path::Path) -> Tsdb {
    let mut db = Tsdb::open(dir).expect("open");
    for round in 0..4i64 {
        for (i, host) in ["web-1", "web-2", "db-1"].iter().enumerate() {
            let key = SeriesKey::new("cpu").with_tag("host", *host);
            for t in 0..30i64 {
                let ts = (round * 500 + t) * 60;
                let v = 10.0 * (i as f64 + 1.0) + ((round * 30 + t) as f64 * 0.37).sin();
                db.insert(&key, ts, v);
            }
        }
        db.flush().expect("flush round");
    }
    db
}

fn run_four_ways(db: &Tsdb, baseline: &Table, label: &str) {
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", db);
    let query = parse_query(FAMILY_SQL).expect("family query parses");
    let engines = [
        ("serial", ExecOptions { partitions: 1, scan_aggregate: false, ..Default::default() }),
        ("parallel", ExecOptions { partitions: 3, scan_aggregate: false, ..Default::default() }),
        (
            "scan-aggregate serial",
            ExecOptions { partitions: 1, scan_aggregate: true, ..Default::default() },
        ),
        (
            "scan-aggregate parallel",
            ExecOptions { partitions: 3, scan_aggregate: true, ..Default::default() },
        ),
    ];
    for (engine, opts) in engines {
        let out = catalog.execute_query_with(&query, opts).expect("family query runs");
        assert_eq!(out.schema(), baseline.schema(), "{label}/{engine} schema");
        assert_eq!(out.rows(), baseline.rows(), "{label}/{engine} rows vs resident baseline");
    }
    let naive = execute_naive(&catalog, &query).expect("reference runs");
    assert_eq!(naive.rows(), baseline.rows(), "{label}/reference rows vs resident baseline");
}

#[test]
fn family_query_bit_identical_under_every_page_budget() {
    let dir = tmp_dir("budgets");
    drop(build_store(&dir));

    // Fully-resident baseline: unbounded reopen, plain serial engine.
    let resident = Tsdb::open(&dir).expect("unbounded reopen");
    let stats = resident.storage_stats().expect("stats");
    assert!(stats.chunks >= 12, "several chunks per series on disk");
    let one_chunk = stats.segment_bytes.div_ceil(stats.chunks as u64);
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &resident);
    let query = parse_query(FAMILY_SQL).expect("family query parses");
    let baseline = catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 1, scan_aggregate: false, ..Default::default() },
        )
        .expect("baseline runs");
    assert!(!baseline.rows().is_empty(), "family query returns rows");
    run_four_ways(&resident, &baseline, "unbounded");
    drop(resident);

    for (label, budget) in [("budget-zero", 0), ("budget-one-chunk", one_chunk)] {
        let options =
            StorageOptions { page_budget_bytes: Some(budget), ..StorageOptions::default() };
        let db = Tsdb::open_read_only_with(&dir, options).expect("paged reopen");
        let before = db.storage_stats().expect("stats");
        assert_eq!(before.resident_chunk_bytes, 0, "{label}: cold open keeps nothing resident");
        run_four_ways(&db, &baseline, label);
        let after = db.storage_stats().expect("stats");
        assert!(after.page_faults > 0, "{label}: the query faulted chunks in");
        assert!(after.evictions > 0, "{label}: budget pressure forced evictions");
        assert!(
            after.peak_resident_chunk_bytes <= budget + 2 * one_chunk,
            "{label}: peak resident chunk bytes {} ran away",
            after.peak_resident_chunk_bytes
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
