//! Query execution over a *reopened* durable store: the four-way
//! differential family query must be bit-identical to the in-memory run
//! (including after a torn WAL tail), and a time-filtered ScanAggregate
//! must decode only the chunks its range overlaps.

use std::path::PathBuf;

use explainit_query::reference::execute_naive;
use explainit_query::{parse_query, Catalog, ExecOptions, Table};
use explainit_tsdb::{SeriesKey, Tsdb};

const FAMILY_SQL: &str = "SELECT timestamp, tag['host'] AS h, AVG(value) AS m, SUM(value) AS s, \
     COUNT(*) AS n, STDDEV(value) AS sd, PERCENTILE(value, 0.5) AS med \
     FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp, tag['host']";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("explainit-qstore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The aligned-fleet ingest both stores receive, point for point.
fn fleet_points() -> Vec<(SeriesKey, i64, f64)> {
    let mut points = Vec::new();
    for (i, host) in ["web-1", "web-2", "db-1"].iter().enumerate() {
        let key = SeriesKey::new("cpu").with_tag("host", *host);
        for t in 0..40i64 {
            let v = 10.0 * (i as f64 + 1.0) + (t as f64 * 0.37).sin();
            points.push((key.clone(), t * 60, v));
        }
    }
    points.push((SeriesKey::new("untagged"), 0, 5.0));
    points
}

/// Runs the family query serially, partition-parallel, with the
/// scan-aggregate pushdown, and through the reference interpreter,
/// asserting every engine over `db` matches the `baseline` rows exactly.
fn assert_four_way_matches(db: &Tsdb, baseline: &Table) {
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", db);
    let query = parse_query(FAMILY_SQL).expect("family query parses");
    let engines = [
        ("serial", ExecOptions { partitions: 1, scan_aggregate: false, ..Default::default() }),
        ("parallel", ExecOptions { partitions: 3, scan_aggregate: false, ..Default::default() }),
        (
            "scan-aggregate serial",
            ExecOptions { partitions: 1, scan_aggregate: true, ..Default::default() },
        ),
        (
            "scan-aggregate parallel",
            ExecOptions { partitions: 3, scan_aggregate: true, ..Default::default() },
        ),
    ];
    for (label, opts) in engines {
        let out = catalog.execute_query_with(&query, opts).expect("family query runs");
        assert_eq!(out.schema(), baseline.schema(), "{label} schema");
        assert_eq!(out.rows(), baseline.rows(), "{label} rows vs in-memory baseline");
    }
    let naive = execute_naive(&catalog, &query).expect("reference runs");
    assert_eq!(naive.rows(), baseline.rows(), "reference rows vs in-memory baseline");
}

fn in_memory_baseline(db: &Tsdb) -> Table {
    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", db);
    let query = parse_query(FAMILY_SQL).expect("family query parses");
    catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 1, scan_aggregate: false, ..Default::default() },
        )
        .expect("baseline runs")
}

#[test]
fn family_query_bit_identical_after_reopen() {
    let dir = tmp_dir("reopen");
    let mut memory = Tsdb::new();
    {
        let mut durable = Tsdb::open(&dir).expect("open");
        for (key, ts, v) in fleet_points() {
            memory.insert(&key, ts, v);
            durable.insert(&key, ts, v);
        }
        durable.flush().expect("flush");
    }
    let reopened = Tsdb::open(&dir).expect("reopen");
    let baseline = in_memory_baseline(&memory);
    assert!(!baseline.rows().is_empty(), "family query returns rows");
    assert_four_way_matches(&reopened, &baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn family_query_bit_identical_after_torn_wal_tail() {
    let dir = tmp_dir("torn");
    let mut memory = Tsdb::new();
    {
        let mut durable = Tsdb::open(&dir).expect("open");
        for (key, ts, v) in fleet_points() {
            memory.insert(&key, ts, v);
            durable.insert(&key, ts, v);
        }
        durable.flush().expect("flush the fleet into segments");
        // Post-flush inserts: one WAL record each. The last one will be
        // torn; all but the last belong in the recovered store.
        let late = SeriesKey::new("cpu").with_tag("host", "web-1");
        durable.try_insert(&late, 5000 * 60, 42.0).expect("committed insert");
        memory.insert(&late, 5000 * 60, 42.0);
        durable.try_insert(&late, 5001 * 60, 43.0).expect("to-be-torn insert");
        durable.sync().expect("sync");
    }
    // Tear the WAL mid-way through the last record.
    let wal_path = dir.join("wal");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at + 8 <= wal.len() {
        offsets.push(at);
        let len = u32::from_le_bytes(wal[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    let last_start = *offsets.last().expect("wal has records");
    std::fs::write(&wal_path, &wal[..last_start + 5]).expect("tear tail");

    let reopened = Tsdb::open(&dir).expect("reopen over the torn tail");
    let baseline = in_memory_baseline(&memory);
    assert_four_way_matches(&reopened, &baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_filtered_scan_aggregate_decodes_only_overlapping_chunks() {
    let dir = tmp_dir("lazy");
    let hosts = ["web-1", "web-2", "db-1"];
    {
        let mut db = Tsdb::open(&dir).expect("open");
        // Two disjoint time windows, flushed separately: two chunks per
        // series on disk.
        for host in hosts {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 0..30i64 {
                db.insert(&key, t * 60, t as f64);
            }
        }
        db.flush().expect("flush window 1");
        for host in hosts {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 1000..1030i64 {
                db.insert(&key, t * 60, t as f64);
            }
        }
        db.flush().expect("flush window 2");
    }
    let db = Tsdb::open(&dir).expect("reopen");
    assert_eq!(db.storage_stats().expect("stats").chunks, 6);
    assert_eq!(db.decode_count(), 0, "recovery decodes nothing");

    let mut catalog = Catalog::new();
    catalog.register_tsdb("tsdb", &db); // snapshot shares chunk bytes + counter
    let query = parse_query(
        "SELECT tag['host'] AS h, AVG(value) AS m, COUNT(*) AS n FROM tsdb \
         WHERE metric_name = 'cpu' AND timestamp BETWEEN 60000 AND 61740 \
         GROUP BY tag['host']",
    )
    .expect("parses");
    let out = catalog
        .execute_query_with(
            &query,
            ExecOptions { partitions: 2, scan_aggregate: true, ..Default::default() },
        )
        .expect("runs");
    assert_eq!(out.len(), 3, "one group per host");
    assert_eq!(
        db.decode_count(),
        3,
        "only the window-2 chunk of each matched series was decompressed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
