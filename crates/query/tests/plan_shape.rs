//! Plan-shape tests for the scan-aggregate pushdown: `EXPLAIN` snapshots
//! asserting when `ScanAggregate` does and does not fire, so optimizer
//! eligibility regressions surface as test failures rather than silent
//! slowdowns (or silent wrong fast paths).

use explainit_query::{Catalog, Table, Value};
use explainit_tsdb::{SeriesKey, Tsdb};

fn catalog() -> Catalog {
    let mut db = Tsdb::new();
    for host in ["web-1", "web-2"] {
        let key = SeriesKey::new("cpu").with_tag("host", host).with_tag("grp", "g0");
        for t in 0..5 {
            db.insert(&key, t * 60, t as f64);
        }
    }
    db.insert(&SeriesKey::new("disk").with_tag("host", "web-1"), 0, 1.0);
    let mut c = Catalog::new();
    c.register_tsdb("tsdb", &db);
    c.register(
        "plain",
        Table::from_rows(&["ts", "v"], vec![vec![Value::Int(0), Value::Float(1.0)]]),
    );
    c
}

fn explain(c: &Catalog, sql: &str) -> String {
    let t = c.execute(&format!("EXPLAIN {sql}")).expect("explain runs");
    t.rows().iter().map(|r| r[0].render()).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------------------
// Fires
// ---------------------------------------------------------------------------

#[test]
fn fires_for_the_family_query() {
    let c = catalog();
    let plan = explain(
        &c,
        "SELECT timestamp, tag['grp'], AVG(value) AS m, STDDEV(value) AS sd FROM tsdb \
         WHERE metric_name = 'cpu' AND timestamp BETWEEN 0 AND 600 \
         GROUP BY timestamp, tag['grp'] ORDER BY timestamp",
    );
    assert!(plan.contains("ScanAggregate tsdb"), "plan:\n{plan}");
    assert!(plan.contains("name=cpu"), "plan:\n{plan}");
    assert!(plan.contains("time=[0, 600]"), "plan:\n{plan}");
    assert!(!plan.contains("TsdbScan"), "the scan is absorbed:\n{plan}");
    assert!(!plan.contains("Exchange"), "the exchange marker is absorbed:\n{plan}");
}

#[test]
fn fires_for_dict_keys_and_global_aggregates() {
    let c = catalog();
    let plan = explain(&c, "SELECT metric_name, COUNT(*) AS n FROM tsdb GROUP BY metric_name");
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
    let plan = explain(&c, "SELECT SUM(value) AS s, MIN(tag['host']) AS h FROM tsdb");
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
}

#[test]
fn fires_with_residual_value_filter_shown_on_the_node() {
    let c = catalog();
    let plan = explain(
        &c,
        "SELECT timestamp, AVG(value) AS m FROM tsdb WHERE value > 1.5 GROUP BY timestamp",
    );
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
    assert!(plan.contains("where=[(value > 1.5)]"), "plan:\n{plan}");
}

#[test]
fn fires_below_a_having_style_filter_which_stays_above() {
    let c = catalog();
    // The grammar has no HAVING; its equivalent — filtering the aggregate
    // output through a subquery — must keep the aggregate-output filter
    // *above* the node while the aggregate itself still pushes into the
    // scan. The rows must agree with the unpushed pipeline either way.
    let sql = "SELECT t FROM (SELECT timestamp AS t, COUNT(*) AS n FROM tsdb \
               GROUP BY timestamp) s WHERE n > 1 ORDER BY t";
    let plan = explain(&c, sql);
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
    assert!(plan.contains("Filter"), "HAVING-style filter stays above:\n{plan}");
    let filter_line = plan.lines().position(|l| l.trim_start().starts_with("Filter"));
    let sa_line = plan.lines().position(|l| l.trim_start().starts_with("ScanAggregate"));
    assert!(filter_line < sa_line, "filter above the node:\n{plan}");
    let out = c.execute(sql).expect("runs");
    assert_eq!(out.len(), 5, "every cpu timestamp has two hosts");
}

// ---------------------------------------------------------------------------
// Falls back
// ---------------------------------------------------------------------------

#[test]
fn falls_back_for_non_dict_group_keys() {
    let c = catalog();
    // `value` is not dictionary-encoded; grouping on it stays on the
    // ordinary (exchange) pipeline.
    let plan = explain(&c, "SELECT value, COUNT(*) AS n FROM tsdb GROUP BY value");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
    assert!(plan.contains("Aggregate"), "plan:\n{plan}");
    // Ditto for a computed timestamp key.
    let plan =
        explain(&c, "SELECT timestamp + 1 AS t, COUNT(*) AS n FROM tsdb GROUP BY timestamp + 1");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
}

#[test]
fn falls_back_for_non_mergeable_outputs() {
    let c = catalog();
    let plan = explain(&c, "SELECT AVG(value) * 2 AS m FROM tsdb GROUP BY timestamp");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
    // MIN over the raw tag map is accumulation-order dependent.
    let plan = explain(&c, "SELECT MIN(tag) AS t FROM tsdb GROUP BY timestamp");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
}

#[test]
fn minmax_over_value_needs_a_timestamp_key() {
    let c = catalog();
    // Without a timestamp group key the scan aggregate accumulates
    // series-major; a float stream may contain NaN (incomparable), making
    // the MIN/MAX fold order-dependent — so these fall back.
    let plan = explain(&c, "SELECT MIN(value) AS lo FROM tsdb");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
    let plan = explain(&c, "SELECT metric_name, MAX(value) AS hi FROM tsdb GROUP BY metric_name");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
    // With the timestamp key, per-group accumulation order equals serial
    // row order, so the same aggregates stay pushed down.
    let plan = explain(&c, "SELECT timestamp, MAX(value) AS hi FROM tsdb GROUP BY timestamp");
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
    // Totally ordered streams (Int timestamps, dictionary Str values)
    // stay pushed down even without a timestamp key.
    let plan = explain(
        &c,
        "SELECT metric_name, MIN(timestamp) AS t0, MAX(tag['host']) AS h FROM tsdb \
         GROUP BY metric_name",
    );
    assert!(plan.contains("ScanAggregate"), "plan:\n{plan}");
}

#[test]
fn falls_back_inside_joins() {
    let c = catalog();
    let plan = explain(
        &c,
        "SELECT s.t FROM (SELECT timestamp AS t, COUNT(*) AS n FROM tsdb GROUP BY timestamp) s \
         JOIN plain ON s.t = plain.ts",
    );
    assert!(!plan.contains("ScanAggregate"), "join sides fall back:\n{plan}");
    assert!(plan.contains("Join"), "plan:\n{plan}");
}

#[test]
fn falls_back_inside_union_branches() {
    let c = catalog();
    let plan = explain(
        &c,
        "SELECT timestamp, COUNT(*) AS n FROM tsdb GROUP BY timestamp \
         UNION ALL SELECT timestamp, COUNT(*) AS n FROM tsdb GROUP BY timestamp",
    );
    assert!(!plan.contains("ScanAggregate"), "union branches fall back:\n{plan}");
    assert!(plan.contains("Union"), "plan:\n{plan}");
}

// ---------------------------------------------------------------------------
// Join-side statistics
// ---------------------------------------------------------------------------

#[test]
fn join_lines_show_estimates_and_build_side() {
    let c = catalog();
    // tsdb holds 11 points, plain holds 1 row: the estimated-smaller side
    // must be the hash build side, and both estimates surface on the line.
    let plan = explain(&c, "SELECT value FROM tsdb JOIN plain ON tsdb.timestamp = plain.ts");
    let join_line = plan
        .lines()
        .find(|l| l.trim_start().starts_with("Join"))
        .unwrap_or_else(|| panic!("no join line in:\n{plan}"));
    assert!(join_line.contains("rows=[l~"), "estimates shown: {join_line}");
    assert!(join_line.contains("build=right"), "smaller right side builds: {join_line}");
}

#[test]
fn join_build_side_follows_the_smaller_input() {
    let c = catalog();
    // Same join, sides swapped: the one-row table is now on the left, so
    // the optimizer must flip the build side with it.
    let plan = explain(&c, "SELECT value FROM plain JOIN tsdb ON plain.ts = tsdb.timestamp");
    assert!(plan.contains("build=left"), "plan:\n{plan}");
    // Filters tighten the estimate: an aggregated (grouped) subquery side
    // shrinks below the raw point count.
    let plan = explain(
        &c,
        "SELECT s.t FROM (SELECT timestamp AS t, COUNT(*) AS n FROM tsdb GROUP BY timestamp) s \
         JOIN plain ON s.t = plain.ts",
    );
    assert!(plan.contains("rows=[l~"), "plan:\n{plan}");
}

#[test]
fn class_constant_residuals_order_innermost() {
    let c = catalog();
    // Two residual conjuncts the scan cannot absorb: one over the
    // dictionary-encoded metric_name (per-series constant), one over the
    // per-point value column. The class-constant one must sit innermost
    // (deepest Filter / first in the ScanAggregate chain) regardless of
    // source order, so a series can be discarded before any point work.
    let plan = explain(
        &c,
        "SELECT timestamp, value FROM tsdb WHERE value > 1.5 AND metric_name != 'disk'",
    );
    let filters: Vec<&str> =
        plan.lines().filter(|l| l.trim_start().starts_with("Filter")).collect();
    assert_eq!(filters.len(), 2, "two residual filters:\n{plan}");
    assert!(filters[0].contains("value"), "point filter outermost:\n{plan}");
    assert!(filters[1].contains("metric_name"), "class filter innermost:\n{plan}");
}

#[test]
fn falls_back_for_plain_tables_and_window_filters() {
    let c = catalog();
    let plan = explain(&c, "SELECT ts, AVG(v) AS m FROM plain GROUP BY ts");
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
    // A window function anywhere below keeps the whole pipeline serial.
    let plan = explain(
        &c,
        "SELECT t, COUNT(*) AS n FROM (SELECT timestamp AS t, LAG(value) AS prev FROM tsdb) s \
         GROUP BY t",
    );
    assert!(!plan.contains("ScanAggregate"), "plan:\n{plan}");
}
