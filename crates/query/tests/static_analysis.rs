//! Plan-time semantic analysis, locked down from the outside:
//!
//! * a **negative corpus** of statements the static checker
//!   ([`explainit_query::check_query`], run inside `execute` between
//!   planning and optimization) must reject *before* any data is touched,
//!   each with a byte-position-bearing diagnostic;
//! * a property test for the checker's sound direction: on a pool mixing
//!   well- and ill-typed fragments, every statement the checker accepts
//!   runs on all three engines without a `Type`/`BadFunction` error;
//! * the `EXPLAIN` refinement annotations (`refine=dict|kernel|general`)
//!   derived from the inferred column types.
//!
//! The checker is deliberately conservative — it rejects only statements
//! guaranteed to fail on non-empty input — so acceptance never implies the
//! reference engine would have errored, and the differential suite stays
//! the authority on result agreement.

use explainit_query::{parse_query, Catalog, ExecOptions, QueryError, Table, Value};
use explainit_tsdb::{SeriesKey, Tsdb};
use proptest::prelude::*;

const HOSTS: [&str; 3] = ["web-1", "web-2", "db-1"];

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "t",
        Table::from_rows(
            &["ts", "host", "v"],
            (0..12)
                .map(|i| {
                    vec![
                        Value::Int(i % 4),
                        Value::str(HOSTS[(i % 3) as usize]),
                        Value::Float(f64::from(i as i32) - 4.5),
                    ]
                })
                .collect(),
        ),
    );
    c.register(
        "u",
        Table::from_rows(
            &["ts", "w"],
            (0..6).map(|i| vec![Value::Int(i % 3), Value::Float(f64::from(i as i32))]).collect(),
        ),
    );
    let mut db = Tsdb::new();
    for (m, metric) in ["cpu", "disk_read"].iter().enumerate() {
        for (h, host) in HOSTS.iter().enumerate() {
            let key = SeriesKey::new(*metric).with_tag("host", *host);
            for ts in 0..5i64 {
                db.insert(&key, ts * 100, (m + h) as f64 + ts as f64 * 0.5);
            }
        }
    }
    c.register_tsdb("tsdb", &db);
    c
}

/// Every statement here is guaranteed to fail on non-empty input, so the
/// checker rejects it at plan time — before optimization or execution —
/// with a source position in the message.
const NEGATIVE_CORPUS: [&str; 20] = [
    // String/numeric arithmetic and negation.
    "SELECT v + host FROM t",
    "SELECT host - 1 FROM t",
    "SELECT -host AS neg FROM t",
    "SELECT v FROM t WHERE host * 2 > 0",
    "SELECT v FROM t ORDER BY host + 1",
    // Scalar function typing and arity.
    "SELECT UPPER(v) FROM t",
    "SELECT UPPER(host, host) FROM t",
    "SELECT SPLIT(host) FROM t",
    "SELECT ROUND(v, host) FROM t",
    "SELECT GREATEST(host, v) AS g FROM t",
    "SELECT LENGTH(ts) AS l FROM t",
    "SELECT NOSUCHFN(v) FROM t",
    // Window arity and offset typing.
    "SELECT LAG(v, host) AS l FROM t",
    // Aggregates in row contexts, nesting, PERCENTILE's p contract.
    "SELECT v FROM t WHERE AVG(v) > 0",
    "SELECT AVG(AVG(v)) AS a FROM t",
    "SELECT ts, PERCENTILE(v, 1.5) AS p FROM t GROUP BY ts",
    "SELECT ts, PERCENTILE(v, v) AS p FROM t GROUP BY ts",
    // Indexing.
    "SELECT tag[5] FROM tsdb",
    "SELECT SPLIT(host, '-')['x'] FROM t",
    // UNION arity.
    "SELECT v FROM t UNION ALL SELECT ts, v FROM t",
];

#[test]
fn negative_corpus_rejected_at_plan_time_with_positions() {
    let c = catalog();
    for sql in NEGATIVE_CORPUS {
        let err = c.execute(sql).expect_err(sql);
        let msg = err.to_string();
        assert!(msg.contains("at byte"), "no source position for {sql}: {msg}");
        // EXPLAIN goes through the same gate: the plan of a statement that
        // cannot run is not worth printing.
        let explained = c.execute(&format!("EXPLAIN {sql}"));
        assert!(explained.is_err(), "EXPLAIN bypassed the checker for {sql}");
    }
}

#[test]
fn checker_errors_carry_exact_variants() {
    let c = catalog();
    assert!(matches!(c.execute("SELECT v + host FROM t"), Err(QueryError::Type(_))));
    assert!(matches!(c.execute("SELECT SPLIT(host) FROM t"), Err(QueryError::BadFunction(_))));
    assert!(matches!(c.execute("SELECT v FROM t WHERE AVG(v) > 0"), Err(QueryError::Plan(_))));
    assert!(matches!(
        c.execute("SELECT v FROM t UNION ALL SELECT ts, v FROM t"),
        Err(QueryError::Plan(_))
    ));
    // Near-miss suggestions ride along on unknown columns.
    let err = c.execute("SELECT hosst FROM t").unwrap_err();
    assert!(
        matches!(&err, QueryError::UnknownColumn(m) if m.contains("host") && m.contains("at byte")),
        "{err}"
    );
}

#[test]
fn explain_annotates_static_refinement_classes() {
    let c = catalog();
    let text = |sql: &str| {
        let t = c.execute(sql).expect(sql);
        t.rows().iter().map(|r| r[0].render()).collect::<Vec<_>>().join("\n")
    };
    // Residual chain over the TSDB scan: one predicate per class. Dict
    // predicates touch only the per-series-constant columns (even through
    // functions — they evaluate once per series), kernel predicates are
    // span-refinable point comparisons, and anything else over the point
    // columns is general. The optimizer orders them dict (innermost) →
    // kernel → general, and the annotations must show that.
    let plan = text(
        "EXPLAIN SELECT timestamp FROM tsdb \
         WHERE value > 1.0 AND UPPER(metric_name) = 'CPU' AND ABS(value) < 9.0",
    );
    let class_line = |class: &str| {
        plan.lines()
            .position(|l| l.contains(&format!("refine={class}")))
            .unwrap_or_else(|| panic!("no refine={class} line in:\n{plan}"))
    };
    let (general, kernel, dict) = (class_line("general"), class_line("kernel"), class_line("dict"));
    assert!(general < kernel && kernel < dict, "outermost-first order violated:\n{plan}");
    // A registered (non-TSDB) table: the inferred types decide. `v` is a
    // dense Float column, so a comparison against a literal is
    // kernel-refinable; a LIKE over the string column is not.
    let plan = text("EXPLAIN SELECT v FROM t WHERE v > 1.0");
    assert!(plan.contains("refine=kernel"), "{plan}");
    let plan = text("EXPLAIN SELECT v FROM t WHERE host LIKE 'web%'");
    assert!(plan.contains("refine=general"), "{plan}");
}

// --- Property: accepted by the checker => no runtime type errors. -------

/// Projection fragments, well- and ill-typed. The ill-typed ones are
/// guaranteed runtime failures the checker must catch; the well-typed
/// ones must then run cleanly everywhere.
const ITEM_POOL: [&str; 16] = [
    "v * 2",
    "ts + 1",
    "UPPER(host)",
    "CONCAT(host, v)",
    "SPLIT(host, '-')[0]",
    "COALESCE(v, 0.0)",
    "GREATEST(v, ts)",
    "ABS(v)",
    "NULLIF(host, 'web-1')",
    "IF(v > 0, 1, 2)",
    "LAG(v, 1)",
    "host + 1",
    "UPPER(v)",
    "-host",
    "ROUND(v, host)",
    "SUBSTR(host)",
];

const PRED_POOL: [&str; 6] = [
    "ts > 1",
    "host LIKE 'web%'",
    "v IS NOT NULL",
    "v + host > 0",
    "host GLOB 1",
    "UPPER(ts) = 'X'",
];

const AGG_POOL: [&str; 8] = [
    "AVG(v)",
    "COUNT(*)",
    "SUM(v)",
    "MIN(UPPER(host))",
    "PERCENTILE(v, 0.5)",
    "PERCENTILE(v, 2.0)",
    "PERCENTILE(v)",
    "SUM(UPPER(v))",
];

fn assert_accepted_runs_clean(c: &Catalog, sql: &str) -> Result<(), TestCaseError> {
    let query =
        parse_query(sql).unwrap_or_else(|e| panic!("pool statement must parse: {sql}: {e}"));
    if explainit_query::check_query(c, &query).is_err() {
        // Rejected statements are covered by the negative corpus; the
        // property under test is the sound direction only.
        return Ok(());
    }
    for (label, opts) in [
        ("serial", ExecOptions { partitions: 1, scan_aggregate: false, ..ExecOptions::default() }),
        ("scan-aggregate", ExecOptions { partitions: 2, ..ExecOptions::default() }),
    ] {
        if let Err(e) = c.execute_query_with(&query, opts) {
            prop_assert!(
                !matches!(e, QueryError::Type(_) | QueryError::BadFunction(_)),
                "checker accepted {sql} but {label} raised {e}"
            );
        }
    }
    if let Err(e) = explainit_query::reference::execute_naive(c, &query) {
        prop_assert!(
            !matches!(e, QueryError::Type(_) | QueryError::BadFunction(_)),
            "checker accepted {sql} but the reference raised {e}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accepted_plain_selects_never_type_error(
        i1 in 0usize..ITEM_POOL.len(),
        i2 in 0usize..ITEM_POOL.len(),
        p in 0usize..PRED_POOL.len(),
        filtered in any::<bool>(),
    ) {
        let c = catalog();
        let filter = if filtered { format!(" WHERE {}", PRED_POOL[p]) } else { String::new() };
        let sql = format!("SELECT {} AS a, {} AS b FROM t{}", ITEM_POOL[i1], ITEM_POOL[i2], filter);
        assert_accepted_runs_clean(&c, &sql)?;
    }

    #[test]
    fn accepted_grouped_selects_never_type_error(
        a1 in 0usize..AGG_POOL.len(),
        a2 in 0usize..AGG_POOL.len(),
        p in 0usize..PRED_POOL.len(),
        filtered in any::<bool>(),
        key_is_host in any::<bool>(),
    ) {
        let c = catalog();
        let key = if key_is_host { "host" } else { "ts" };
        let filter = if filtered { format!(" WHERE {}", PRED_POOL[p]) } else { String::new() };
        let sql = format!(
            "SELECT {key}, {} AS a, {} AS b FROM t{} GROUP BY {key}",
            AGG_POOL[a1], AGG_POOL[a2], filter
        );
        assert_accepted_runs_clean(&c, &sql)?;
    }
}
