//! The retained row-at-a-time reference executor (the pre-plan-layer seed
//! interpreter).
//!
//! This is the oracle the differential property tests run against: a direct
//! tree-walking interpreter over materialized `Vec<Vec<Value>>` rows with
//! no planning, no optimization and no columnar operators. It must stay
//! semantically aligned with [`crate::exec`] — when the two disagree on a
//! query, one of them has a bug (historically the new one). Aggregate
//! semantics are shared by construction: this interpreter evaluates
//! aggregates through the same mergeable accumulators
//! ([`crate::functions::eval_aggregate`]) the serial and
//! partition-parallel columnar executors use, so the corrected
//! sample-variance / Int-SUM / constant-p PERCENTILE behaviour is defined
//! in exactly one place.
//!
//! Pipeline per SELECT: resolve FROM → apply JOINs (hash join on
//! decomposable equi-conditions, nested loop otherwise) → WHERE → GROUP BY /
//! aggregate or plain projection (with window functions) → ORDER BY →
//! LIMIT. UNION concatenates compatible SELECT outputs.
//!
//! Known, intended divergences from the optimized path:
//!
//! * `UNION` does not coerce Int/Float column mismatches here (the coercion
//!   is an optimizer-era policy);
//! * TSDB-bound tables are materialized wholesale through
//!   [`Catalog::get`] — this is exactly the full-store materialization the
//!   pushdown path exists to avoid, which is what the `query_exec` bench
//!   measures.

use std::collections::HashMap;

use crate::ast::{Expr, JoinKind, Query, SelectItem, SelectStmt, TableRef};
use crate::catalog::Catalog;
use crate::eval::{eval_group, eval_row, eval_with_rows};
use crate::plan::equi_join_keys;
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{QueryError, Result};

/// Executes a parsed query with the naive row interpreter.
pub fn execute_naive(catalog: &Catalog, query: &Query) -> Result<Table> {
    let mut result: Option<Table> = None;
    for select in &query.selects {
        let part = execute_select(catalog, select)?;
        result = Some(match result {
            None => part,
            Some(acc) => union(acc, part)?,
        });
    }
    result.ok_or_else(|| QueryError::Plan("query has no SELECT".into()))
}

fn union(mut acc: Table, part: Table) -> Result<Table> {
    if acc.schema().len() != part.schema().len() {
        return Err(QueryError::Plan(format!(
            "UNION arity mismatch: {} vs {} columns",
            acc.schema().len(),
            part.schema().len()
        )));
    }
    for row in part.into_rows() {
        acc.push_row(row);
    }
    Ok(acc)
}

fn execute_select(catalog: &Catalog, select: &SelectStmt) -> Result<Table> {
    // ---- FROM + JOINs ----------------------------------------------------
    let (mut schema, mut rows) = match &select.from {
        Some(tref) => {
            let (s, r) = resolve_table_ref(catalog, tref)?;
            if select.joins.is_empty() {
                (s, r)
            } else {
                let scope = tref
                    .scope_name()
                    .ok_or_else(|| QueryError::Plan("subquery in a join needs an alias".into()))?;
                (s.qualified(scope), r)
            }
        }
        None => (Schema::new(vec![]), vec![vec![]]), // SELECT <constants>
    };
    for join in &select.joins {
        let (right_schema, right_rows) = resolve_table_ref(catalog, &join.table)?;
        let scope = join
            .table
            .scope_name()
            .ok_or_else(|| QueryError::Plan("joined subquery needs an alias".into()))?;
        let right_schema = right_schema.qualified(scope);
        (schema, rows) = join_tables(schema, rows, right_schema, right_rows, join.kind, &join.on)?;
    }

    // ---- WHERE -----------------------------------------------------------
    if let Some(pred) = &select.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_row(pred, &schema, &row)?.is_true() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // ---- GROUP BY / projection --------------------------------------------
    let has_aggregates = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    });
    let grouped = !select.group_by.is_empty() || has_aggregates;

    let (out_schema, mut out_rows, sort_keys) = if grouped {
        project_grouped(select, &schema, &rows)?
    } else {
        project_plain(select, &schema, &rows)?
    };

    // ---- ORDER BY ---------------------------------------------------------
    if !select.order_by.is_empty() {
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (k, key) in select.order_by.iter().enumerate() {
                let cmp = sort_keys[a][k].order_cmp(&sort_keys[b][k]);
                let cmp = if key.ascending { cmp } else { cmp.reverse() };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = {
            let mut permuted = Vec::with_capacity(out_rows.len());
            let mut taken: Vec<Option<Vec<Value>>> = out_rows.into_iter().map(Some).collect();
            for i in order {
                permuted.push(taken[i].take().expect("each index used once")); // invariant: order is a permutation; each index is taken once
            }
            permuted
        };
    }

    // ---- LIMIT --------------------------------------------------------------
    if let Some(limit) = select.limit {
        out_rows.truncate(limit);
    }
    Ok(Table::from_parts(out_schema, out_rows))
}

/// Projection output: schema, output rows, and per-row ORDER BY key values.
type Projected = (Schema, Vec<Vec<Value>>, Vec<Vec<Value>>);

/// Plain (non-aggregate) projection. Returns schema, rows and per-row sort
/// key values for ORDER BY.
fn project_plain(select: &SelectStmt, schema: &Schema, rows: &[Vec<Value>]) -> Result<Projected> {
    // Expand projection list.
    let mut names = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for c in schema.columns() {
                    names.push(c.clone());
                    exprs.push(Expr::Column(c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                exprs.push(expr.clone());
            }
        }
    }
    let out_schema = Schema::new(names);
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut sort_keys = Vec::with_capacity(rows.len());
    for idx in 0..rows.len() {
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(eval_with_rows(e, schema, rows, idx)?);
        }
        // Sort keys: output alias reference or input expression.
        let mut keys = Vec::with_capacity(select.order_by.len());
        for ok in &select.order_by {
            keys.push(order_key_value(&ok.expr, &out_schema, &out, schema, rows, idx)?);
        }
        sort_keys.push(keys);
        out_rows.push(out);
    }
    Ok((out_schema, out_rows, sort_keys))
}

/// Grouped projection with aggregates.
fn project_grouped(select: &SelectStmt, schema: &Schema, rows: &[Vec<Value>]) -> Result<Projected> {
    for item in &select.items {
        if matches!(item, SelectItem::Wildcard) {
            return Err(QueryError::Plan("SELECT * cannot be combined with GROUP BY".into()));
        }
    }
    // Group rows by key.
    let mut group_order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
    for row in rows {
        let mut key = String::new();
        for g in &select.group_by {
            key.push_str(&eval_row(g, schema, row)?.group_key());
            key.push('\u{1}');
        }
        match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                group_order.push(key);
                e.insert(vec![row]);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
        }
    }
    // No GROUP BY but aggregates present: one global group (even when the
    // input is empty, SQL returns one row of aggregates over nothing — we
    // return an empty table for the empty-input case to keep COUNT simple).
    if select.group_by.is_empty() && !rows.is_empty() {
        groups.clear();
        group_order.clear();
        group_order.push(String::new());
        groups.insert(String::new(), rows.iter().collect());
    }

    let mut names = Vec::with_capacity(select.items.len());
    let mut exprs = Vec::with_capacity(select.items.len());
    for item in &select.items {
        if let SelectItem::Expr { expr, alias } = item {
            names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
            exprs.push(expr.clone());
        }
    }
    let out_schema = Schema::new(names);
    let mut out_rows = Vec::with_capacity(groups.len());
    let mut sort_keys = Vec::with_capacity(groups.len());
    for key in &group_order {
        let group = &groups[key];
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(eval_group(e, schema, group)?);
        }
        let mut keys = Vec::with_capacity(select.order_by.len());
        for ok in &select.order_by {
            // Alias fast path; otherwise group evaluation.
            let v = match &ok.expr {
                Expr::Column(name) if out_schema.resolve(name).is_ok() => {
                    out[out_schema.resolve(name)?].clone()
                }
                other => eval_group(other, schema, group)?,
            };
            keys.push(v);
        }
        sort_keys.push(keys);
        out_rows.push(out);
    }
    Ok((out_schema, out_rows, sort_keys))
}

fn order_key_value(
    expr: &Expr,
    out_schema: &Schema,
    out_row: &[Value],
    in_schema: &Schema,
    rows: &[Vec<Value>],
    idx: usize,
) -> Result<Value> {
    if let Expr::Column(name) = expr {
        if let Ok(i) = out_schema.resolve(name) {
            return Ok(out_row[i].clone());
        }
    }
    eval_with_rows(expr, in_schema, rows, idx)
}

fn resolve_table_ref(catalog: &Catalog, tref: &TableRef) -> Result<(Schema, Vec<Vec<Value>>)> {
    match tref {
        TableRef::Named { name, .. } => {
            let t = catalog.get(name).ok_or_else(|| QueryError::UnknownTable(name.clone()))?;
            Ok((t.schema().clone(), t.rows().to_vec()))
        }
        TableRef::Subquery { query, .. } => {
            let t = execute_naive(catalog, query)?;
            let schema = t.schema().clone();
            Ok((schema, t.into_rows()))
        }
    }
}

// ---- joins -----------------------------------------------------------------

fn join_tables(
    left_schema: Schema,
    left_rows: Vec<Vec<Value>>,
    right_schema: Schema,
    right_rows: Vec<Vec<Value>>,
    kind: JoinKind,
    on: &Expr,
) -> Result<(Schema, Vec<Vec<Value>>)> {
    let mut columns = left_schema.columns().to_vec();
    columns.extend(right_schema.columns().iter().cloned());
    let combined = Schema::new(columns);
    let left_width = left_schema.len();
    let right_width = right_schema.len();

    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut right_matched = vec![false; right_rows.len()];

    if let Some((lk, rk)) = equi_join_keys(on, &left_schema, &right_schema) {
        // Hash join on the decomposed key columns.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right_rows.iter().enumerate() {
            if rk.iter().any(|&c| rrow[c].is_null()) {
                continue; // NULL keys never match
            }
            let key = join_key(rrow, &rk);
            index.entry(key).or_default().push(ri);
        }
        for lrow in &left_rows {
            let null_key = lk.iter().any(|&c| lrow[c].is_null());
            let matches = if null_key { None } else { index.get(&join_key(lrow, &lk)) };
            match matches {
                Some(ris) if !ris.is_empty() => {
                    for &ri in ris {
                        right_matched[ri] = true;
                        let mut row = lrow.clone();
                        row.extend(right_rows[ri].iter().cloned());
                        out.push(row);
                    }
                }
                _ => {
                    if kind != JoinKind::Inner {
                        let mut row = lrow.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(row);
                    }
                }
            }
        }
    } else {
        // General nested loop with full ON evaluation.
        for lrow in &left_rows {
            let mut matched = false;
            for (ri, rrow) in right_rows.iter().enumerate() {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if eval_row(on, &combined, &row)?.is_true() {
                    matched = true;
                    right_matched[ri] = true;
                    out.push(row);
                }
            }
            if !matched && kind != JoinKind::Inner {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(row);
            }
        }
    }

    if kind == JoinKind::FullOuter {
        for (ri, rrow) in right_rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row: Vec<Value> = std::iter::repeat_n(Value::Null, left_width).collect();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok((combined, out))
}

fn join_key(row: &[Value], cols: &[usize]) -> String {
    let mut key = String::new();
    for &c in cols {
        key.push_str(&row[c].group_key());
        key.push('\u{1}');
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn naive_path_still_answers_queries() {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(
                &["ts", "v"],
                vec![
                    vec![Value::Int(0), Value::Float(1.0)],
                    vec![Value::Int(1), Value::Float(3.0)],
                ],
            ),
        );
        let q = parse_query("SELECT ts, v * 2 AS d FROM t WHERE v > 0 ORDER BY ts DESC").unwrap();
        let t = execute_naive(&c, &q).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0], vec![Value::Int(1), Value::Float(6.0)]);
    }

    #[test]
    fn naive_and_columnar_agree_on_a_grouped_query() {
        let mut c = Catalog::new();
        c.register(
            "m",
            Table::from_rows(
                &["k", "v"],
                vec![
                    vec![Value::Int(0), Value::Float(1.0)],
                    vec![Value::Int(0), Value::Float(3.0)],
                    vec![Value::Int(1), Value::Float(5.0)],
                ],
            ),
        );
        let q = parse_query("SELECT k, AVG(v) AS m FROM m GROUP BY k ORDER BY k").unwrap();
        let naive = execute_naive(&c, &q).unwrap();
        let fast = crate::exec::execute(&c, &q).unwrap();
        assert_eq!(naive.rows(), fast.rows());
        assert_eq!(naive.schema(), fast.schema());
    }
}
