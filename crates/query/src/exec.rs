//! The query executor.
//!
//! Pipeline per SELECT: resolve FROM → apply JOINs (hash join on
//! decomposable equi-conditions, nested loop otherwise) → WHERE → GROUP BY /
//! aggregate or plain projection (with window functions) → ORDER BY →
//! LIMIT. UNION concatenates compatible SELECT outputs.

use std::collections::HashMap;

use crate::ast::{Expr, JoinKind, Query, SelectItem, SelectStmt, TableRef};
use crate::catalog::Catalog;
use crate::eval::{eval_group, eval_row, eval_with_rows};
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{QueryError, Result};

/// Executes a parsed query against a catalog.
pub fn execute(catalog: &Catalog, query: &Query) -> Result<Table> {
    let mut result: Option<Table> = None;
    for select in &query.selects {
        let part = execute_select(catalog, select)?;
        result = Some(match result {
            None => part,
            Some(acc) => union(acc, part)?,
        });
    }
    result.ok_or_else(|| QueryError::Plan("query has no SELECT".into()))
}

fn union(mut acc: Table, part: Table) -> Result<Table> {
    if acc.schema().len() != part.schema().len() {
        return Err(QueryError::Plan(format!(
            "UNION arity mismatch: {} vs {} columns",
            acc.schema().len(),
            part.schema().len()
        )));
    }
    for row in part.into_rows() {
        acc.push_row(row);
    }
    Ok(acc)
}

fn execute_select(catalog: &Catalog, select: &SelectStmt) -> Result<Table> {
    // ---- FROM + JOINs ----------------------------------------------------
    let (mut schema, mut rows) = match &select.from {
        Some(tref) => {
            let (s, r) = resolve_table_ref(catalog, tref)?;
            if select.joins.is_empty() {
                (s, r)
            } else {
                let scope = tref.scope_name().ok_or_else(|| {
                    QueryError::Plan("subquery in a join needs an alias".into())
                })?;
                (s.qualified(scope), r)
            }
        }
        None => (Schema::new(vec![]), vec![vec![]]), // SELECT <constants>
    };
    for join in &select.joins {
        let (right_schema, right_rows) = resolve_table_ref(catalog, &join.table)?;
        let scope = join
            .table
            .scope_name()
            .ok_or_else(|| QueryError::Plan("joined subquery needs an alias".into()))?;
        let right_schema = right_schema.qualified(scope);
        (schema, rows) = join_tables(
            schema,
            rows,
            right_schema,
            right_rows,
            join.kind,
            &join.on,
        )?;
    }

    // ---- WHERE -----------------------------------------------------------
    if let Some(pred) = &select.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_row(pred, &schema, &row)?.is_true() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // ---- GROUP BY / projection --------------------------------------------
    let has_aggregates = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    });
    let grouped = !select.group_by.is_empty() || has_aggregates;

    let (out_schema, mut out_rows, sort_keys) = if grouped {
        project_grouped(select, &schema, &rows)?
    } else {
        project_plain(select, &schema, &rows)?
    };

    // ---- ORDER BY ---------------------------------------------------------
    if !select.order_by.is_empty() {
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (k, key) in select.order_by.iter().enumerate() {
                let cmp = sort_keys[a][k].order_cmp(&sort_keys[b][k]);
                let cmp = if key.ascending { cmp } else { cmp.reverse() };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = {
            let mut permuted = Vec::with_capacity(out_rows.len());
            let mut taken: Vec<Option<Vec<Value>>> = out_rows.into_iter().map(Some).collect();
            for i in order {
                permuted.push(taken[i].take().expect("each index used once"));
            }
            permuted
        };
    }

    // ---- LIMIT --------------------------------------------------------------
    if let Some(limit) = select.limit {
        out_rows.truncate(limit);
    }
    Ok(Table::from_parts(out_schema, out_rows))
}

/// Projection output: schema, output rows, and per-row ORDER BY key values.
type Projected = (Schema, Vec<Vec<Value>>, Vec<Vec<Value>>);

/// Plain (non-aggregate) projection. Returns schema, rows and per-row sort
/// key values for ORDER BY.
fn project_plain(select: &SelectStmt, schema: &Schema, rows: &[Vec<Value>]) -> Result<Projected> {
    // Expand projection list.
    let mut names = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in schema.columns().iter().enumerate() {
                    names.push(c.clone());
                    let _ = i;
                    exprs.push(Expr::Column(c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                exprs.push(expr.clone());
            }
        }
    }
    let out_schema = Schema::new(names);
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut sort_keys = Vec::with_capacity(rows.len());
    for idx in 0..rows.len() {
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(eval_with_rows(e, schema, rows, idx)?);
        }
        // Sort keys: output alias reference or input expression.
        let mut keys = Vec::with_capacity(select.order_by.len());
        for ok in &select.order_by {
            keys.push(order_key_value(&ok.expr, &out_schema, &out, schema, rows, idx)?);
        }
        sort_keys.push(keys);
        out_rows.push(out);
    }
    Ok((out_schema, out_rows, sort_keys))
}

/// Grouped projection with aggregates.
fn project_grouped(select: &SelectStmt, schema: &Schema, rows: &[Vec<Value>]) -> Result<Projected> {
    for item in &select.items {
        if matches!(item, SelectItem::Wildcard) {
            return Err(QueryError::Plan("SELECT * cannot be combined with GROUP BY".into()));
        }
    }
    // Group rows by key.
    let mut group_order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
    for row in rows {
        let mut key = String::new();
        for g in &select.group_by {
            key.push_str(&eval_row(g, schema, row)?.group_key());
            key.push('\u{1}');
        }
        match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                group_order.push(key);
                e.insert(vec![row]);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
        }
    }
    // No GROUP BY but aggregates present: one global group (even when the
    // input is empty, SQL returns one row of aggregates over nothing — we
    // return an empty table for the empty-input case to keep COUNT simple).
    if select.group_by.is_empty() && !rows.is_empty() {
        groups.clear();
        group_order.clear();
        group_order.push(String::new());
        groups.insert(String::new(), rows.iter().collect());
    }

    let mut names = Vec::with_capacity(select.items.len());
    let mut exprs = Vec::with_capacity(select.items.len());
    for item in &select.items {
        if let SelectItem::Expr { expr, alias } = item {
            names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
            exprs.push(expr.clone());
        }
    }
    let out_schema = Schema::new(names);
    let mut out_rows = Vec::with_capacity(groups.len());
    let mut sort_keys = Vec::with_capacity(groups.len());
    for key in &group_order {
        let group = &groups[key];
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(eval_group(e, schema, group)?);
        }
        let mut keys = Vec::with_capacity(select.order_by.len());
        for ok in &select.order_by {
            // Alias fast path; otherwise group evaluation.
            let v = match &ok.expr {
                Expr::Column(name) if out_schema.resolve(name).is_ok() => {
                    out[out_schema.resolve(name)?].clone()
                }
                other => eval_group(other, schema, group)?,
            };
            keys.push(v);
        }
        sort_keys.push(keys);
        out_rows.push(out);
    }
    Ok((out_schema, out_rows, sort_keys))
}

fn order_key_value(
    expr: &Expr,
    out_schema: &Schema,
    out_row: &[Value],
    in_schema: &Schema,
    rows: &[Vec<Value>],
    idx: usize,
) -> Result<Value> {
    if let Expr::Column(name) = expr {
        if let Ok(i) = out_schema.resolve(name) {
            return Ok(out_row[i].clone());
        }
    }
    eval_with_rows(expr, in_schema, rows, idx)
}

fn resolve_table_ref(catalog: &Catalog, tref: &TableRef) -> Result<(Schema, Vec<Vec<Value>>)> {
    match tref {
        TableRef::Named { name, .. } => {
            let t = catalog
                .get(name)
                .ok_or_else(|| QueryError::UnknownTable(name.clone()))?;
            Ok((t.schema().clone(), t.rows().to_vec()))
        }
        TableRef::Subquery { query, .. } => {
            let t = execute(catalog, query)?;
            let schema = t.schema().clone();
            Ok((schema, t.into_rows()))
        }
    }
}

// ---- joins -----------------------------------------------------------------

fn join_tables(
    left_schema: Schema,
    left_rows: Vec<Vec<Value>>,
    right_schema: Schema,
    right_rows: Vec<Vec<Value>>,
    kind: JoinKind,
    on: &Expr,
) -> Result<(Schema, Vec<Vec<Value>>)> {
    let mut columns = left_schema.columns().to_vec();
    columns.extend(right_schema.columns().iter().cloned());
    let combined = Schema::new(columns);
    let left_width = left_schema.len();
    let right_width = right_schema.len();

    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut right_matched = vec![false; right_rows.len()];

    if let Some((lk, rk)) = equi_join_keys(on, &left_schema, &right_schema) {
        // Hash join on the decomposed key columns.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right_rows.iter().enumerate() {
            if rk.iter().any(|&c| rrow[c].is_null()) {
                continue; // NULL keys never match
            }
            let key = join_key(rrow, &rk);
            index.entry(key).or_default().push(ri);
        }
        for lrow in &left_rows {
            let null_key = lk.iter().any(|&c| lrow[c].is_null());
            let matches = if null_key {
                None
            } else {
                index.get(&join_key(lrow, &lk))
            };
            match matches {
                Some(ris) if !ris.is_empty() => {
                    for &ri in ris {
                        right_matched[ri] = true;
                        let mut row = lrow.clone();
                        row.extend(right_rows[ri].iter().cloned());
                        out.push(row);
                    }
                }
                _ => {
                    if kind != JoinKind::Inner {
                        let mut row = lrow.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(row);
                    }
                }
            }
        }
    } else {
        // General nested loop with full ON evaluation.
        for lrow in &left_rows {
            let mut matched = false;
            for (ri, rrow) in right_rows.iter().enumerate() {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if eval_row(on, &combined, &row)?.is_true() {
                    matched = true;
                    right_matched[ri] = true;
                    out.push(row);
                }
            }
            if !matched && kind != JoinKind::Inner {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(row);
            }
        }
    }

    if kind == JoinKind::FullOuter {
        for (ri, rrow) in right_rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row: Vec<Value> = std::iter::repeat_n(Value::Null, left_width).collect();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok((combined, out))
}

fn join_key(row: &[Value], cols: &[usize]) -> String {
    let mut key = String::new();
    for &c in cols {
        key.push_str(&row[c].group_key());
        key.push('\u{1}');
    }
    key
}

/// Tries to decompose the ON predicate into `l1 = r1 AND l2 = r2 AND ...`
/// with each side resolving in exactly one input. Returns parallel column
/// index lists on success.
fn equi_join_keys(on: &Expr, left: &Schema, right: &Schema) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(on, &mut conjuncts);
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for c in conjuncts {
        match c {
            Expr::Binary { op: crate::ast::BinaryOp::Eq, left: a, right: b } => {
                let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) else {
                    return None;
                };
                let (la, ra) = (left.resolve(ca).ok(), right.resolve(ca).ok());
                let (lb, rb) = (left.resolve(cb).ok(), right.resolve(cb).ok());
                match (la, rb, ra, lb) {
                    // a on the left, b on the right (only unambiguous splits).
                    (Some(l), Some(r), None, None) => {
                        lk.push(l);
                        rk.push(r);
                    }
                    (None, None, Some(r), Some(l)) => {
                        lk.push(l);
                        rk.push(r);
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    if lk.is_empty() {
        None
    } else {
        Some((lk, rk))
    }
}

fn collect_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: crate::ast::BinaryOp::And, left, right } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(
                &["ts", "host", "v"],
                vec![
                    vec![Value::Int(0), Value::str("web-1"), Value::Float(1.0)],
                    vec![Value::Int(0), Value::str("web-2"), Value::Float(3.0)],
                    vec![Value::Int(1), Value::str("web-1"), Value::Float(5.0)],
                    vec![Value::Int(1), Value::str("web-2"), Value::Float(7.0)],
                    vec![Value::Int(2), Value::str("db-1"), Value::Float(100.0)],
                ],
            ),
        );
        c.register(
            "u",
            Table::from_rows(
                &["ts", "w"],
                vec![
                    vec![Value::Int(0), Value::Float(10.0)],
                    vec![Value::Int(2), Value::Float(30.0)],
                    vec![Value::Int(9), Value::Float(90.0)],
                ],
            ),
        );
        c
    }

    fn run(sql: &str) -> Table {
        let c = catalog();
        execute(&c, &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn select_star() {
        let t = run("SELECT * FROM t");
        assert_eq!(t.len(), 5);
        assert_eq!(t.schema().columns().len(), 3);
    }

    #[test]
    fn where_filters() {
        let t = run("SELECT v FROM t WHERE host = 'web-1'");
        assert_eq!(t.len(), 2);
        let t = run("SELECT v FROM t WHERE host LIKE 'web%' AND v > 2");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn group_by_avg() {
        let t = run("SELECT ts, AVG(v) AS m FROM t GROUP BY ts ORDER BY ts");
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0], vec![Value::Int(0), Value::Float(2.0)]);
        assert_eq!(t.rows()[1], vec![Value::Int(1), Value::Float(6.0)]);
        assert_eq!(t.rows()[2], vec![Value::Int(2), Value::Float(100.0)]);
    }

    #[test]
    fn group_by_expression_key() {
        let t = run(
            "SELECT SPLIT(host, '-')[0] AS grp, SUM(v) AS total FROM t \
             GROUP BY SPLIT(host, '-')[0] ORDER BY grp",
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::str("db"));
        assert_eq!(t.rows()[0][1], Value::Float(100.0));
        assert_eq!(t.rows()[1][1], Value::Float(16.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let t = run("SELECT COUNT(*) AS n, MAX(v) AS mx FROM t");
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0], vec![Value::Int(5), Value::Float(100.0)]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let t = run("SELECT v FROM t ORDER BY v DESC LIMIT 2");
        assert_eq!(t.rows()[0][0], Value::Float(100.0));
        assert_eq!(t.rows()[1][0], Value::Float(7.0));
    }

    #[test]
    fn order_by_alias() {
        let t = run("SELECT v * 2 AS dv FROM t ORDER BY dv DESC LIMIT 1");
        assert_eq!(t.rows()[0][0], Value::Float(200.0));
    }

    #[test]
    fn inner_join() {
        let t = run("SELECT t.ts, v, w FROM t JOIN u ON t.ts = u.ts ORDER BY v");
        assert_eq!(t.len(), 3); // ts=0 matches twice, ts=2 once
        assert_eq!(t.rows()[2], vec![Value::Int(2), Value::Float(100.0), Value::Float(30.0)]);
    }

    #[test]
    fn left_join_null_extends() {
        let t = run("SELECT t.ts, w FROM t LEFT JOIN u ON t.ts = u.ts WHERE t.ts = 1");
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::Null);
    }

    #[test]
    fn full_outer_join_keeps_both_sides() {
        let t = run("SELECT t.ts, u.ts FROM t FULL OUTER JOIN u ON t.ts = u.ts");
        // 3 matched (0x2, 2) + 2 unmatched-left (ts=1 x2) + 1 unmatched-right (ts=9).
        assert_eq!(t.len(), 6);
        let unmatched_right: Vec<_> = t
            .rows()
            .iter()
            .filter(|r| r[0].is_null())
            .collect();
        assert_eq!(unmatched_right.len(), 1);
        assert_eq!(unmatched_right[0][1], Value::Int(9));
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let t = run("SELECT t.ts, u.ts FROM t JOIN u ON t.ts < u.ts ORDER BY t.ts, u.ts");
        assert!(t.len() > 3);
        // Every pair satisfies the predicate.
        for r in t.rows() {
            let a = r[0].as_i64().unwrap();
            let b = r[1].as_i64().unwrap();
            assert!(a < b);
        }
    }

    #[test]
    fn union_all_concats() {
        let t = run("SELECT v FROM t WHERE ts = 0 UNION ALL SELECT w FROM u");
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t UNION ALL SELECT ts, w FROM u").unwrap();
        assert!(matches!(execute(&c, &q), Err(QueryError::Plan(_))));
    }

    #[test]
    fn subquery_in_from() {
        let t = run("SELECT m FROM (SELECT ts, AVG(v) AS m FROM t GROUP BY ts) s WHERE m > 3");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lag_window_function() {
        let t = run("SELECT ts, v, LAG(v, 1) AS prev FROM t WHERE host = 'web-1' ORDER BY ts");
        assert_eq!(t.rows()[0][2], Value::Null);
        assert_eq!(t.rows()[1][2], Value::Float(1.0));
    }

    #[test]
    fn constant_select_without_from() {
        let t = run("SELECT 1 + 2 AS three");
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = catalog();
        assert!(matches!(
            execute(&c, &parse_query("SELECT * FROM nope").unwrap()),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&c, &parse_query("SELECT nope FROM t").unwrap()),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        let c = catalog();
        let q = parse_query("SELECT * FROM t GROUP BY ts").unwrap();
        assert!(matches!(execute(&c, &q), Err(QueryError::Plan(_))));
    }

    #[test]
    fn percentile_aggregate_in_query() {
        let t = run("SELECT PERCENTILE(v, 0.5) AS p50 FROM t WHERE host LIKE 'web%'");
        assert_eq!(t.rows()[0][0], Value::Float(4.0));
    }

    #[test]
    fn case_in_projection() {
        let t = run(
            "SELECT host, CASE WHEN v >= 100 THEN 'hot' ELSE 'ok' END AS status \
             FROM t ORDER BY v DESC LIMIT 1",
        );
        assert_eq!(t.rows()[0][1], Value::str("hot"));
    }

    #[test]
    fn join_key_with_nulls_never_matches() {
        let mut c = catalog();
        c.register(
            "n",
            Table::from_rows(
                &["k", "x"],
                vec![
                    vec![Value::Null, Value::Int(1)],
                    vec![Value::Int(0), Value::Int(2)],
                ],
            ),
        );
        let q = parse_query("SELECT n.x, u.w FROM n JOIN u ON n.k = u.ts").unwrap();
        let t = execute(&c, &q).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(2));
    }
}
