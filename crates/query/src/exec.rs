//! The columnar query executor.
//!
//! [`execute`] runs the three-stage pipeline: lower the AST to a logical
//! plan ([`crate::plan::build`]), rewrite it ([`crate::optimize::optimize`])
//! and interpret the optimized tree over typed [`Column`] vectors. The
//! operators are vectorized where [`crate::veval`] supports the expression
//! and fall back to the row-compat shim (`Table::rows`) for window
//! functions, CASE and scalar function calls — mirroring the retained
//! row-at-a-time oracle in [`crate::reference`].
//!
//! **Partition parallelism.** Pipelines the optimizer marked with
//! [`LogicalPlan::Exchange`] run morsel-parallel on a scoped worker pool
//! (the hypothesis-scoring idiom from `explainit-core`): the source table
//! is cut into contiguous row morsels, each worker applies the nested
//! `Filter`s and either projects or builds *partial aggregate states*
//! ([`AggAcc`]) for its morsel, and a final exchange step merges partials
//! in morsel order. Merging is exactly fold-equivalent (error-free float
//! sums, integer counts, per-class MIN/MAX candidates, PERCENTILE value
//! gathering), so a parallel run is bit-identical to the serial one — the
//! differential suite asserts serial == parallel == reference. Partition
//! count comes from [`ExecOptions`]; `0` means one per available core.
//!
//! `EXPLAIN <query>` short-circuits after optimization and returns the
//! rendered plan as a one-column table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use explainit_sync::{LockClass, Mutex};

use explainit_tsdb::{MetricFilter, SeriesKey};

/// Per-execution pin map: held only to clone or insert an `Arc`; the
/// catalog's binding lock is always taken *before* (never under) it.
static EXEC_PINNED: LockClass = LockClass::new("query.exec.pinned", 25);

/// Morsel result collection: a leaf push after each worker's morsel
/// completes, so nothing ever nests inside it.
static EXEC_RESULTS: LockClass = LockClass::new("query.exec.results", 90);

use crate::ast::{Expr, JoinKind, Query};
use crate::catalog::{Catalog, TsdbBinding};
use crate::column::Column;
use crate::eval::{eval_group, eval_row, eval_with_rows};
use crate::functions::{is_aggregate, AggAcc};
use crate::optimize::{map_columns, optimize_with, OptimizeOptions};
use crate::plan::{build, equi_join_keys, LogicalPlan, TSDB_COLUMNS};
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::veval;
use crate::{QueryError, Result};

/// Execution options for the columnar pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Partition count for [`LogicalPlan::Exchange`] pipelines, the
    /// parallel scan gather and the scan-aggregate operator.
    ///
    /// * `0` — auto: one partition per available core, capped so each
    ///   morsel keeps at least [`MIN_PARTITION_ROWS`] rows;
    /// * `1` — serial execution (single morsel);
    /// * `k` — exactly `min(k, rows)` morsels, regardless of core count
    ///   (lets tests exercise partial-state merging deterministically).
    ///
    /// The default is `0` (auto).
    pub partitions: usize,
    /// Apply the optimizer's scan-level aggregate pushdown
    /// ([`LogicalPlan::ScanAggregate`]). On by default; the differential
    /// harness turns it off to compare the pushdown against the ordinary
    /// pipeline on identical queries.
    pub scan_aggregate: bool,
    /// Order the TSDB scan gather with a k-way merge over the per-series
    /// sorted point vectors instead of a global stable sort over all rows.
    /// On by default; `false` retains the stable-sort reference path the
    /// differential harness (and the `scan_gather` bench) compares
    /// against — both produce bit-identical row orders.
    pub merge_gather: bool,
    /// Run the optimizer invariant verifier ([`crate::verify`]) after each
    /// rewrite rule. Off by default in release builds (debug builds always
    /// verify); the release-mode CI differential job forces it on via the
    /// `EXPLAINIT_VERIFY_PLANS` environment variable.
    pub verify: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { partitions: 0, scan_aggregate: true, merge_gather: true, verify: false }
    }
}

impl ExecOptions {
    /// Options with an explicit partition count and defaults elsewhere.
    pub fn with_partitions(partitions: usize) -> ExecOptions {
        ExecOptions { partitions, ..ExecOptions::default() }
    }
}

/// Auto mode keeps at least this many rows per morsel so partitioning
/// never dominates small queries.
const MIN_PARTITION_ROWS: usize = 4096;

/// One query execution's view of the catalog. Live TSDB bindings are
/// **pinned on first touch**: every scan node of one statement reads the
/// same store generation, even while ingesters advance a
/// [`explainit_tsdb::SharedTsdb`] mid-query — a self-join or UNION never
/// straddles two snapshots.
struct ExecCtx<'a> {
    catalog: &'a Catalog,
    pinned: Mutex<HashMap<String, Arc<TsdbBinding>>>,
}

impl<'a> ExecCtx<'a> {
    fn new(catalog: &'a Catalog) -> ExecCtx<'a> {
        ExecCtx { catalog, pinned: Mutex::new(&EXEC_PINNED, HashMap::new()) }
    }

    /// The pinned binding for a TSDB table (resolved once per execution).
    fn binding(&self, name: &str) -> Option<Arc<TsdbBinding>> {
        let key = name.to_lowercase();
        if let Some(b) = self.pinned.lock().get(&key) {
            return Some(b.clone());
        }
        let binding = self.catalog.tsdb_binding(name)?;
        self.pinned.lock().entry(key).or_insert(binding.clone());
        Some(binding)
    }

    /// A table by name, routing TSDB bindings through the pinned snapshot.
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        if self.catalog.is_tsdb(name) {
            Some(self.binding(name)?.table())
        } else {
            self.catalog.get(name)
        }
    }
}

/// Executes a parsed query against a catalog through the
/// plan → optimize → columnar-execute pipeline with default options.
pub fn execute(catalog: &Catalog, query: &Query) -> Result<Table> {
    execute_with(catalog, query, ExecOptions::default())
}

/// [`execute`] with explicit execution options.
pub fn execute_with(catalog: &Catalog, query: &Query, opts: ExecOptions) -> Result<Table> {
    let plan = build(catalog, query)?;
    // Static analysis between planning and optimization: guaranteed-to-fail
    // statements are rejected here, with source positions, before any
    // rewrite or scan runs. Plan-building errors (unknown tables/columns,
    // scoping) keep their precedence — `build` already ran.
    crate::types::check_query(catalog, query)?;
    let plan = optimize_with(
        plan,
        catalog,
        &OptimizeOptions { scan_aggregate: opts.scan_aggregate, verify: opts.verify },
    )?;
    if query.explain {
        let text = crate::plan::render_with(&plan, Some(catalog));
        let lines: Vec<Vec<Value>> = text.lines().map(|l| vec![Value::str(l)]).collect();
        return Ok(Table::from_rows(&["plan"], lines));
    }
    run_plan(&ExecCtx::new(catalog), &plan, &opts)
}

/// Runs an (optimized) plan.
///
/// Project/Aggregate outputs may carry trailing hidden ORDER BY key
/// columns; the enclosing Sort (always directly above, by construction)
/// consumes and drops them, and the planner emits hidden keys only when a
/// Sort exists.
fn run_plan(ctx: &ExecCtx, plan: &LogicalPlan, opts: &ExecOptions) -> Result<Table> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = ctx.table(table).ok_or_else(|| QueryError::UnknownTable(table.clone()))?;
            Ok(t.as_ref().clone())
        }

        LogicalPlan::TsdbScan { table, name, tags, start, end, columns } => {
            run_tsdb_scan(ctx, table, name, tags, *start, *end, columns, opts)
        }

        LogicalPlan::ScanAggregate {
            table,
            name,
            tags,
            start,
            end,
            filters,
            group_by,
            items,
            hidden,
        } => run_scan_aggregate(
            ctx, table, name, tags, *start, *end, filters, group_by, items, hidden, opts,
        ),

        LogicalPlan::Unit => Ok(Table::unit(1)),

        LogicalPlan::Alias { input, alias } => {
            let t = run_plan(ctx, input, opts)?;
            let schema = t.schema().qualified(alias);
            Ok(t.with_schema(schema))
        }

        LogicalPlan::Filter { input, predicate } => {
            // Fully vectorizable Filter chains (the optimizer's
            // cost-ordered residuals) fuse into one selection vector over
            // the source columns, innermost first — no intermediate Table
            // or column materialization per node.
            let (filters, source) = peel_filters(plan);
            if filters.iter().all(|p| veval::supported(p)) {
                let t = run_plan(ctx, source, opts)?;
                if t.is_empty() {
                    return Ok(t);
                }
                let (schema, cols, len) = t.into_columnar_parts();
                let (cols, len) = apply_filters(&filters, &schema, cols, len)?;
                return Ok(Table::from_columnar_parts(schema, cols, len));
            }
            let t = run_plan(ctx, input, opts)?;
            if t.is_empty() {
                // Per-row semantics: an empty input never evaluates the
                // predicate (so e.g. ambiguous references cannot error),
                // matching the reference interpreter.
                return Ok(t);
            }
            if veval::supported(predicate) {
                // Supported predicate above an unsupported inner chain.
                let (schema, cols, len) = t.into_columnar_parts();
                let (cols, len) = apply_filters(&[predicate], &schema, cols, len)?;
                return Ok(Table::from_columnar_parts(schema, cols, len));
            }
            // Row fallback (window functions, CASE, scalar calls).
            let mut mask = Vec::with_capacity(t.len());
            for row in t.rows() {
                mask.push(eval_row(predicate, t.schema(), row)?.is_true());
            }
            let kept = mask.iter().filter(|&&m| m).count();
            let (schema, cols, _) = t.into_columnar_parts();
            let filtered: Vec<Column> = cols.iter().map(|c| c.filter(&mask)).collect();
            Ok(Table::from_columnar_parts(schema, filtered, kept))
        }

        LogicalPlan::Project { input, items, hidden } => {
            let t = run_plan(ctx, input, opts)?;
            run_project(&t, items, hidden)
        }

        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            let t = run_plan(ctx, input, opts)?;
            run_aggregate(&t, group_by, items, hidden)
        }

        LogicalPlan::Join { left, right, kind, on, stats } => {
            let l = run_plan(ctx, left, opts)?;
            let r = run_plan(ctx, right, opts)?;
            run_join(l, r, *kind, on, stats.is_some_and(|s| s.build_left))
        }

        LogicalPlan::Exchange { input } => run_exchange(ctx, input, opts),

        LogicalPlan::Sort { input, keys, output_width } => {
            let t = run_plan(ctx, input, opts)?;
            // Materialize key values once: Column::get clones (allocating
            // for strings), which must not happen per comparison.
            let key_vals: Vec<(Vec<Value>, bool)> = keys
                .iter()
                .map(|&(k, asc)| {
                    let col = t.column_at(k);
                    ((0..t.len()).map(|i| col.get(i)).collect(), asc)
                })
                .collect();
            let mut order: Vec<usize> = (0..t.len()).collect();
            order.sort_by(|&a, &b| {
                for (vals, asc) in &key_vals {
                    let cmp = vals[a].order_cmp(&vals[b]);
                    let cmp = if *asc { cmp } else { cmp.reverse() };
                    if cmp != std::cmp::Ordering::Equal {
                        return cmp;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let (schema, cols, _) = t.into_columnar_parts();
            let visible_names = schema.columns()[..*output_width].to_vec();
            let visible_cols: Vec<Column> =
                cols[..*output_width].iter().map(|c| c.gather(&order)).collect();
            Ok(Table::from_columnar_parts(Schema::new(visible_names), visible_cols, order.len()))
        }

        LogicalPlan::Limit { input, n } => {
            let t = run_plan(ctx, input, opts)?;
            Ok(t.truncated(*n))
        }

        LogicalPlan::Union { inputs } => {
            // Column-name compatibility is deliberately *not* enforced:
            // standard SQL lets branches carry different names (the seed
            // contract unions `v` with `w`), so the first branch names the
            // output and later branches match by position. Arity mismatch
            // errors name both schemas; Int/Float mixes coerce to Float.
            let mut parts = inputs.iter();
            let first = run_plan(ctx, parts.next().expect("union has inputs"), opts)?; // invariant: the planner and verifier keep Union non-empty
            let (schema, mut cols, mut len) = first.into_columnar_parts();
            for p in parts {
                let part = run_plan(ctx, p, opts)?;
                if part.schema().len() != schema.len() {
                    return Err(QueryError::Plan(format!(
                        "UNION arity mismatch: [{}] has {} columns, [{}] has {}",
                        schema.columns().join(", "),
                        schema.len(),
                        part.schema().columns().join(", "),
                        part.schema().len(),
                    )));
                }
                len += part.len();
                let (_, pcols, _) = part.into_columnar_parts();
                for (acc, pc) in cols.iter_mut().zip(pcols) {
                    acc.append_coercing(pc);
                }
            }
            Ok(Table::from_columnar_parts(schema, cols, len))
        }
    }
}

// ---------------------------------------------------------------------------
// TSDB scan
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn run_tsdb_scan(
    ctx: &ExecCtx,
    table: &str,
    name: &Option<String>,
    tags: &[explainit_tsdb::TagFilter],
    start: Option<i64>,
    end: Option<i64>,
    columns: &Option<Vec<usize>>,
    opts: &ExecOptions,
) -> Result<Table> {
    let binding = ctx.binding(table).ok_or_else(|| QueryError::UnknownTable(table.to_string()))?;
    let db = binding.db();
    // Per-snapshot dictionaries, built once: metric_name and tag columns are
    // emitted as code vectors over shared Arc dictionaries instead of
    // cloning a String / tag map per row.
    let dicts = binding.dicts();
    let wanted: Vec<usize> = match columns {
        Some(c) => c.clone(),
        None => (0..TSDB_COLUMNS.len()).collect(),
    };
    let schema = Schema::new(wanted.iter().map(|&i| TSDB_COLUMNS[i].to_string()).collect());

    // Inclusive plan bounds map straight onto the store's inclusive scan
    // range — no half-open conversion, so `timestamp == i64::MAX` points
    // survive an unbounded (or saturated) upper bound.
    let lo = start.unwrap_or(i64::MIN);
    let hi = end.unwrap_or(i64::MAX);
    if lo > hi {
        let empty: Vec<Column> = wanted
            .iter()
            .map(|&i| match i {
                0 => Column::Int(Vec::new()),
                1 => Column::dict(dicts.names.clone(), Vec::new()),
                3 => Column::Float(Vec::new()),
                _ => Column::dict(dicts.tags.clone(), Vec::new()),
            })
            .collect();
        return Ok(Table::from_columnar_parts(schema, empty, 0));
    }

    let filter = MetricFilter { name: name.clone(), tags: tags.to_vec() };
    // Canonical-key (rank) order: the tiebreak order of the observation
    // view — rows sort by timestamp with ties in canonical key order.
    let hits = db.scan_parts_ordered_between(&filter, lo, hi);

    let total: usize = hits.iter().map(|p| p.timestamps.len()).sum();
    // Side vectors over the concatenation, each built only when something
    // reads it: the timestamp concat feeds the retained sort path and the
    // timestamp output column; the hit map feeds the dictionary columns.
    let ts_concat: Option<Vec<i64>> = (!opts.merge_gather || wanted.contains(&0)).then(|| {
        let mut v = Vec::with_capacity(total);
        for part in &hits {
            v.extend_from_slice(part.timestamps);
        }
        v
    });
    let hit_of: Option<Vec<u32>> = (wanted.contains(&1) || wanted.contains(&2)).then(|| {
        let mut v = Vec::with_capacity(total);
        for (h, part) in hits.iter().enumerate() {
            v.extend(std::iter::repeat_n(h as u32, part.timestamps.len()));
        }
        v
    });
    // Row order over the concatenation. Each series' slice is already
    // timestamp-sorted, so a k-way merge keyed on `(timestamp, rank)`
    // produces exactly what the retained global stable sort produces
    // (within one series timestamps are strictly increasing, so the pair
    // is a total order) in O(N log K) instead of O(N log N).
    let order: Vec<u32> = if opts.merge_gather {
        // Worker budget for big cascade levels: the explicit partition
        // count, or every core in auto mode (`partitions: 1` forces the
        // serial cascade — output is identical either way).
        let workers = match opts.partitions {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            p => p,
        };
        merge_gather_order(&hits, total, workers)
    } else {
        let ts = ts_concat.as_ref().expect("concatenated for the sort path"); // invariant: concatenated above whenever the sort path runs
        let mut order: Vec<u32> = (0..total as u32).collect();
        order.sort_by_key(|&i| ts[i as usize]); // stable: ties stay key-ordered
        order
    };

    // Decode per-hit dictionary codes and concatenate values once; the
    // gather below then reads pure native vectors.
    let name_code_of_hit: Option<Vec<u32>> =
        wanted.contains(&1).then(|| hits.iter().map(|p| dicts.name_code[p.id.index()]).collect());
    let tag_code_of_hit: Option<Vec<u32>> =
        wanted.contains(&2).then(|| hits.iter().map(|p| dicts.tag_code[p.id.index()]).collect());
    let vals_concat: Option<Vec<f64>> = wanted.contains(&3).then(|| {
        let mut v = Vec::with_capacity(total);
        for part in &hits {
            v.extend_from_slice(part.values);
        }
        v
    });

    // Materializes the output columns for one contiguous slice of the
    // row order — the unit of the parallel gather.
    let build_cols = |idx: &[u32]| -> Vec<Column> {
        wanted
            .iter()
            .map(|&c| match c {
                0 => {
                    let ts = ts_concat.as_ref().expect("concatenated for wanted column"); // invariant: populated above for every wanted column
                    Column::Int(idx.iter().map(|&i| ts[i as usize]).collect())
                }
                1 => {
                    let codes = name_code_of_hit.as_ref().expect("decoded for wanted column"); // invariant: populated above for every wanted column
                    let hit = hit_of.as_ref().expect("mapped for wanted column"); // invariant: populated above for every wanted column
                    Column::dict(
                        dicts.names.clone(),
                        idx.iter().map(|&i| codes[hit[i as usize] as usize]).collect(),
                    )
                }
                2 => {
                    let codes = tag_code_of_hit.as_ref().expect("decoded for wanted column"); // invariant: populated above for every wanted column
                    let hit = hit_of.as_ref().expect("mapped for wanted column"); // invariant: populated above for every wanted column
                    Column::dict(
                        dicts.tags.clone(),
                        idx.iter().map(|&i| codes[hit[i as usize] as usize]).collect(),
                    )
                }
                _ => {
                    let vals = vals_concat.as_ref().expect("concatenated for wanted column"); // invariant: populated above for every wanted column
                    Column::Float(idx.iter().map(|&i| vals[i as usize]).collect())
                }
            })
            .collect()
    };

    // Per-row column materialization runs morsel-parallel on the worker
    // pool (the serial term of the exchange pipelines' Amdahl ceiling);
    // chunks concatenate in order, so the output is identical to the
    // single-threaded gather.
    let ranges = morsel_ranges(total, effective_partitions(opts, total));
    let out_cols: Vec<Column> = if ranges.len() <= 1 {
        build_cols(&order)
    } else {
        let parts = run_partitioned(ranges.len(), |m| {
            let (a, b) = ranges[m];
            Ok(build_cols(&order[a..b]))
        })?;
        let mut parts = parts.into_iter();
        let mut acc = parts.next().expect("at least one morsel"); // invariant: partitioning always yields at least one morsel
        for part in parts {
            for (dst, src) in acc.iter_mut().zip(part) {
                dst.append_preserving(src);
            }
        }
        acc
    };
    Ok(Table::from_columnar_parts(schema, out_cols, total))
}

/// Sort-free row ordering for the scan gather: a k-way merge over the
/// per-series sorted timestamp slices, returning indices into their
/// concatenation in `(timestamp, series rank)` order — bit-identical to a
/// global stable sort by timestamp over the rank-ordered concatenation
/// (the retained `merge_gather: false` reference path), because within one
/// series timestamps are strictly increasing, making the pair a total
/// order over all rows.
///
/// Two structure fast paths make the dominant monitoring shapes O(N) with
/// no comparisons at all:
///
/// * **time-partitioned** — consecutive ranks' time windows don't overlap
///   (backfills, per-epoch series): the concatenation is already row
///   order, so the permutation is the identity;
/// * **grid-aligned** — every series carries the *same* timestamp vector
///   (one scrape interval across the fleet, the Appendix-C family shape):
///   row order is a perfect transpose, `(t, rank) → offsets[rank] + t`.
///
/// The general path is a balanced bottom-up cascade of stable two-way
/// merges — a tournament tree unrolled level by level: runs enter in rank
/// order and every merge takes the left run on timestamp ties, so each
/// intermediate run is `(timestamp, rank)`-sorted without ever storing or
/// comparing ranks. That keeps the k-way bound of N log K sequential
/// comparisons with the timestamp key carried inline, where the retained
/// sort pays a key-extraction indirection per comparison. Within one
/// level every pair's output range is known up front (run lengths are
/// input-determined), so big levels fan the pair merges out across
/// `workers` scoped threads into disjoint slices of the double buffer —
/// the merged bytes are identical to the serial cascade by construction.
fn merge_gather_order(
    hits: &[explainit_tsdb::SeriesSlice<'_>],
    total: usize,
    workers: usize,
) -> Vec<u32> {
    // Non-empty runs in rank order: (concat offset, timestamps).
    let mut run_meta: Vec<(u32, &[i64])> = Vec::with_capacity(hits.len());
    let mut offset = 0u32;
    for part in hits {
        let n = part.timestamps.len();
        if n > 0 {
            run_meta.push((offset, part.timestamps));
        }
        offset += n as u32;
    }

    // Trivial and time-partitioned shapes: the identity permutation. A
    // boundary tie (`last == next first`) stays identity too — the stable
    // sort keeps the lower rank first, which is concatenation order.
    let partitioned = run_meta
        .windows(2)
        .all(|w| w[0].1.last().expect("non-empty run") <= w[1].1.first().expect("non-empty run")); // invariant: zero-point runs are never emitted
    if partitioned {
        let mut order: Vec<u32> = Vec::with_capacity(total);
        for &(off, ts) in &run_meta {
            order.extend(off..off + ts.len() as u32);
        }
        return order;
    }

    // Grid-aligned fleets: every run shares one timestamp vector, so row
    // order is the transpose (all ranks at ts[0], then all at ts[1], ...).
    // The check early-exits on the first differing slice.
    let grid = run_meta[0].1;
    if run_meta.iter().all(|&(_, ts)| std::ptr::eq(ts, grid) || ts == grid) {
        let mut order: Vec<u32> = Vec::with_capacity(total);
        for t in 0..grid.len() as u32 {
            order.extend(run_meta.iter().map(|&(off, _)| off + t));
        }
        return order;
    }

    // General shape: cascade of stable two-way merges over (ts, index)
    // pairs; `<=` keeps the left (lower-rank) run first on equal
    // timestamps, so rank never needs storing.
    let mut cur: Vec<(i64, u32)> = Vec::with_capacity(total);
    let mut runs: Vec<(usize, usize)> = Vec::with_capacity(run_meta.len());
    for &(off, ts) in &run_meta {
        let start = cur.len();
        cur.extend(ts.iter().enumerate().map(|(i, &t)| (t, off + i as u32)));
        runs.push((start, cur.len()));
    }
    let mut buf: Vec<(i64, u32)> = vec![(0, 0); cur.len()];
    while runs.len() > 1 {
        // Every pair's output range follows from the input run lengths
        // alone, so the level's merges are independent writes into
        // disjoint, contiguous slices of `buf`.
        let mut next_runs: Vec<(usize, usize)> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut start = 0usize;
        for pair in runs.chunks(2) {
            let len: usize = pair.iter().map(|&(a, b)| b - a).sum();
            next_runs.push((start, start + len));
            start += len;
        }
        let pairs: Vec<MergeJob<'_>> = runs.chunks(2).zip(next_runs.iter().copied()).collect();
        let nworkers = workers.min(pairs.len());
        if nworkers > 1 && cur.len() >= PARALLEL_MERGE_MIN_ROWS {
            // One contiguous batch of pairs per worker; batch output
            // regions tile `buf` in order, so `split_at_mut` hands each
            // thread exactly its region.
            let batches = morsel_ranges(pairs.len(), nworkers);
            let mut slices: Vec<&mut [(i64, u32)]> = Vec::with_capacity(batches.len());
            let mut rest: &mut [(i64, u32)] = &mut buf;
            let mut consumed = 0usize;
            for &(_, b) in &batches {
                let end = pairs[b - 1].1 .1;
                let (head, tail) = rest.split_at_mut(end - consumed);
                slices.push(head);
                rest = tail;
                consumed = end;
            }
            let (cur_ref, pairs_ref) = (&cur, &pairs);
            std::thread::scope(|scope| {
                for (&(a, b), out) in batches.iter().zip(slices) {
                    let base = pairs_ref[a].1 .0;
                    scope.spawn(move || {
                        for &(pair, (o_start, o_end)) in &pairs_ref[a..b] {
                            merge_pair(cur_ref, pair, &mut out[o_start - base..o_end - base]);
                        }
                    });
                }
            });
        } else {
            for &(pair, (o_start, o_end)) in &pairs {
                merge_pair(&cur, pair, &mut buf[o_start..o_end]);
            }
        }
        std::mem::swap(&mut cur, &mut buf);
        runs = next_runs;
    }
    cur.into_iter().map(|(_, i)| i).collect()
}

/// Below this row count a cascade level merges serially: scoped-thread
/// spawn overhead would dominate the merge itself.
const PARALLEL_MERGE_MIN_ROWS: usize = 1 << 16;

/// One cascade merge job: the one or two input runs (as `(start, end)`
/// ranges into the level's source buffer) plus the output range they
/// tile in the destination buffer.
type MergeJob<'a> = (&'a [(usize, usize)], (usize, usize));

/// Stable two-way merge of one cascade pair (or copy-through of an odd
/// trailing run) into its preassigned output slice. `<=` keeps the left
/// (lower-rank) run first on equal timestamps.
fn merge_pair(cur: &[(i64, u32)], pair: &[(usize, usize)], out: &mut [(i64, u32)]) {
    match *pair {
        [(la, lb), (ra, rb)] => {
            let (mut l, mut r, mut o) = (la, ra, 0usize);
            while l < lb && r < rb {
                if cur[l].0 <= cur[r].0 {
                    out[o] = cur[l];
                    l += 1;
                } else {
                    out[o] = cur[r];
                    r += 1;
                }
                o += 1;
            }
            out[o..o + (lb - l)].copy_from_slice(&cur[l..lb]);
            let o = o + (lb - l);
            out[o..o + (rb - r)].copy_from_slice(&cur[r..rb]);
        }
        [(la, lb)] => out.copy_from_slice(&cur[la..lb]),
        _ => unreachable!("chunks(2) yields 1..=2 runs"),
    }
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

fn project_names(items: &[(Expr, String)], hidden_count: usize) -> Schema {
    let mut names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    for i in 0..hidden_count {
        names.push(format!("__ord{i}"));
    }
    Schema::new(names)
}

fn run_project(t: &Table, items: &[(Expr, String)], hidden: &[Expr]) -> Result<Table> {
    let len = t.len();
    if len == 0 {
        // Per-row semantics: nothing is evaluated over an empty input.
        let cols = vec![Column::empty(); items.len() + hidden.len()];
        return Ok(Table::from_columnar_parts(project_names(items, hidden.len()), cols, 0));
    }
    let exprs: Vec<&Expr> = items.iter().map(|(e, _)| e).chain(hidden.iter()).collect();
    let mut out_cols: Vec<Column> = Vec::with_capacity(exprs.len());
    for e in exprs {
        let col = if veval::supported(e) {
            veval::eval(e, t.schema(), t.columns(), len)?.into_column(len)
        } else {
            // Row fallback: window functions see the full input rows.
            let rows = t.rows();
            let mut vals = Vec::with_capacity(len);
            for idx in 0..len {
                vals.push(eval_with_rows(e, t.schema(), rows, idx)?);
            }
            Column::from_values(vals)
        };
        out_cols.push(col);
    }
    Ok(Table::from_columnar_parts(project_names(items, hidden.len()), out_cols, len))
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// A single aggregate argument viewed as a typed minicolumn: a raw
/// `f64`/`i64` slice plus an optional validity bitmap, ready for the
/// [`AggAcc::fold_f64s`]/[`AggAcc::fold_i64s`] kernels. `Float`/`Int`
/// columns borrow in place; homogeneous `Values` columns (numeric with
/// NULL runs) extract once per operator.
enum FastArg<'a> {
    F64(std::borrow::Cow<'a, [f64]>, Option<Vec<u64>>),
    I64(std::borrow::Cow<'a, [i64]>, Option<Vec<u64>>),
}

fn fast_arg(col: &Column) -> Option<FastArg<'_>> {
    use std::borrow::Cow;
    match col {
        Column::Float(vs) => Some(FastArg::F64(Cow::Borrowed(vs), None)),
        Column::Int(vs) => Some(FastArg::I64(Cow::Borrowed(vs), None)),
        Column::Values(vs) => match crate::kernel::mini_from_values(vs)? {
            crate::kernel::Mini::F64(v, validity) => Some(FastArg::F64(Cow::Owned(v), validity)),
            crate::kernel::Mini::I64(v, validity) => Some(FastArg::I64(Cow::Owned(v), validity)),
        },
        _ => None,
    }
}

fn run_aggregate(
    t: &Table,
    group_by: &[Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
) -> Result<Table> {
    let len = t.len();
    if len == 0 {
        // Per-row semantics: no rows, no groups, no expression evaluation.
        let cols = vec![Column::empty(); items.len() + hidden.len()];
        return Ok(Table::from_columnar_parts(project_names(items, hidden.len()), cols, 0));
    }

    // Group keys, vectorized where possible.
    let mut key_cols: Vec<Column> = Vec::with_capacity(group_by.len());
    for g in group_by {
        let col = if veval::supported(g) {
            veval::eval(g, t.schema(), t.columns(), len)?.into_column(len)
        } else {
            let rows = t.rows();
            let mut vals = Vec::with_capacity(len);
            for row in rows {
                vals.push(eval_row(g, t.schema(), row)?);
            }
            Column::from_values(vals)
        };
        key_cols.push(col);
    }

    // Bucket row indices by key, preserving first-seen order. When every
    // key column is dictionary-encoded, rows group directly on dictionary
    // codes (no key-string rendering at all — the scan's `metric_name` /
    // `tag` / `tag['k']` keys all hit this path); otherwise rows bucket by
    // rendered key strings, which both slower engines share.
    let row_groups: Vec<Vec<usize>> = if group_by.is_empty() {
        // One global group over all rows (len > 0 was checked above).
        vec![(0..len).collect()]
    } else if let Some(groups) = veval::dict_group_rows(&key_cols, len) {
        groups
    } else {
        let keys = veval::group_key_strings(&key_cols, len);
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (row, key) in keys.into_iter().enumerate() {
            match index.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push(vec![row]);
                }
                std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(row),
            }
        }
        groups
    };

    let exprs: Vec<&Expr> = items.iter().map(|(e, _)| e).chain(hidden.iter()).collect();
    let mut out_cols: Vec<Column> = Vec::with_capacity(exprs.len());
    // Lazily materialized row shim for the general fallback.
    let mut fallback_rows: Option<&[Vec<Value>]> = None;

    for e in exprs {
        // Fast path (a): the expression IS one of the group keys.
        if let Some(k) = group_by.iter().position(|g| g == e) {
            let vals: Vec<Value> = row_groups.iter().map(|rows| key_cols[k].get(rows[0])).collect();
            out_cols.push(Column::from_values(vals));
            continue;
        }
        // Fast path (b): a plain aggregate call over vectorizable args —
        // feed the group's rows straight into a mergeable accumulator, no
        // per-group row-replay materialization.
        if let Expr::Function { name, args } = e {
            if is_aggregate(name) && args.iter().all(veval::supported) {
                let arg_cols: Vec<Column> = args
                    .iter()
                    .map(|a| {
                        veval::eval(a, t.schema(), t.columns(), len).map(|v| v.into_column(len))
                    })
                    .collect::<Result<_>>()?;
                // Typed fold: a single Float/Int-shaped argument folds each
                // group straight over its (slice, row-selection, validity)
                // triple — no per-row `Value` boxing (push-equivalent, and
                // single-argument pushes cannot error).
                if let [arg] = arg_cols.as_slice() {
                    if let Some(fast) = fast_arg(arg) {
                        let mut vals = Vec::with_capacity(row_groups.len());
                        for rows in &row_groups {
                            let mut acc = AggAcc::new(name).ok_or_else(|| {
                                QueryError::BadFunction(format!("unknown aggregate {name}"))
                            })?;
                            match &fast {
                                FastArg::F64(vs, validity) => {
                                    acc.fold_f64s(vs, rows.iter().copied(), validity.as_deref())
                                }
                                FastArg::I64(vs, validity) => {
                                    acc.fold_i64s(vs, rows.iter().copied(), validity.as_deref())
                                }
                            }
                            vals.push(acc.finish()?);
                        }
                        out_cols.push(Column::from_values(vals));
                        continue;
                    }
                }
                let mut vals = Vec::with_capacity(row_groups.len());
                let mut scratch: Vec<Value> = Vec::with_capacity(arg_cols.len());
                for rows in &row_groups {
                    let mut acc = AggAcc::new(name).ok_or_else(|| {
                        QueryError::BadFunction(format!("unknown aggregate {name}"))
                    })?;
                    for &r in rows {
                        scratch.clear();
                        scratch.extend(arg_cols.iter().map(|c| c.get(r)));
                        acc.push(&scratch)?;
                    }
                    vals.push(acc.finish()?);
                }
                out_cols.push(Column::from_values(vals));
                continue;
            }
        }
        // General fallback: evaluate over the group's rows.
        let rows = match fallback_rows {
            Some(r) => r,
            None => {
                fallback_rows = Some(t.rows());
                fallback_rows.expect("just set") // invariant: assigned on the previous line
            }
        };
        let mut vals = Vec::with_capacity(row_groups.len());
        for group_rows in &row_groups {
            let group: Vec<&Vec<Value>> = group_rows.iter().map(|&r| &rows[r]).collect();
            vals.push(eval_group(e, t.schema(), &group)?);
        }
        out_cols.push(Column::from_values(vals));
    }

    Ok(Table::from_columnar_parts(project_names(items, hidden.len()), out_cols, row_groups.len()))
}

// ---------------------------------------------------------------------------
// Exchange: partition-parallel pipelines
// ---------------------------------------------------------------------------

/// Splits a Filter chain off a plan: returns the predicates (outermost
/// first) and the underlying source node.
fn peel_filters(mut plan: &LogicalPlan) -> (Vec<&Expr>, &LogicalPlan) {
    let mut filters = Vec::new();
    loop {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                filters.push(predicate);
                plan = input;
            }
            other => return (filters, other),
        }
    }
}

/// Applies a peeled filter chain (innermost first) to morsel columns: one
/// selection vector flows through every predicate (each refined in place by
/// the typed kernels) and the surviving rows gather **once** at the end —
/// no intermediate column materialization per predicate.
fn apply_filters(
    filters: &[&Expr],
    schema: &Schema,
    cols: Vec<Column>,
    len: usize,
) -> Result<(Vec<Column>, usize)> {
    let mut sel: Vec<u32> = (0..len as u32).collect();
    for pred in filters.iter().rev() {
        if sel.is_empty() {
            break; // per-row semantics: empty inputs never evaluate
        }
        veval::refine(pred, schema, &cols, &mut sel)?;
    }
    if sel.len() == len {
        return Ok((cols, len)); // nothing dropped: reuse the columns as-is
    }
    let gathered: Vec<Column> = cols.iter().map(|c| c.gather_u32(&sel)).collect();
    Ok((gathered, sel.len()))
}

/// Resolves the morsel count for `len` rows under the options.
fn effective_partitions(opts: &ExecOptions, len: usize) -> usize {
    let requested = if opts.partitions == 0 {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        cores.min(len.div_ceil(MIN_PARTITION_ROWS).max(1))
    } else {
        opts.partitions
    };
    requested.clamp(1, len.max(1))
}

/// Contiguous `[start, end)` morsel ranges covering `len` rows.
fn morsel_ranges(len: usize, partitions: usize) -> Vec<(usize, usize)> {
    let chunk = len.div_ceil(partitions.max(1)).max(1);
    (0..partitions)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
        .filter(|(a, b)| a < b)
        .collect()
}

/// Point-balanced morsels over a rank-ordered series list: cuts the
/// concatenated point sequence (series-major, `counts[i]` points each)
/// into contiguous equal-point ranges and maps every range back to
/// `(series index, point_lo, point_hi)` spans. A span may cover part of a
/// series — that is the point: one hot series holding most of the store
/// gets *split across* morsels instead of serializing the scan-aggregate
/// pipeline behind a single worker. Each morsel's spans are ascending in
/// `(series, point)` order and morsels tile the sequence exactly, so a
/// merge that folds partials in morsel order replays every series' points
/// in their original order.
fn point_balanced_spans(counts: &[usize], partitions: usize) -> Vec<Vec<(usize, usize, usize)>> {
    let total: usize = counts.iter().sum();
    let ranges = morsel_ranges(total, partitions);
    let mut out = Vec::with_capacity(ranges.len());
    // Cursor over the series list; ranges are contiguous and ascending, so
    // one forward walk suffices.
    let mut series = 0usize;
    let mut base = 0usize; // global offset of `series`' first point
    for (ga, gb) in ranges {
        while series < counts.len() && base + counts[series] <= ga {
            base += counts[series];
            series += 1;
        }
        let (mut s, mut b) = (series, base);
        let mut spans = Vec::new();
        while s < counts.len() && b < gb {
            let lo = ga.max(b) - b;
            let hi = (gb - b).min(counts[s]);
            if lo < hi {
                spans.push((s, lo, hi));
            }
            b += counts[s];
            s += 1;
        }
        out.push(spans);
    }
    out
}

/// Runs `f(morsel_index)` for every morsel on a scoped worker pool (the
/// `explainit-core` ranking idiom: shared atomic cursor, scoped threads)
/// and returns results in morsel order. Errors surface deterministically:
/// the lowest-indexed morsel's error wins.
fn run_partitioned<T: Send>(
    morsels: usize,
    f: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(morsels);
    if morsels <= 1 || workers <= 1 {
        return (0..morsels).map(&f).collect();
    }
    let results: Mutex<Vec<(usize, Result<T>)>> =
        Mutex::new(&EXEC_RESULTS, Vec::with_capacity(morsels));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= morsels {
                    break;
                }
                let r = f(i);
                results.lock().push((i, r));
            });
        }
    });
    let mut collected = results.into_inner();
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Executes an [`LogicalPlan::Exchange`]-marked pipeline morsel-parallel.
fn run_exchange(ctx: &ExecCtx, input: &LogicalPlan, opts: &ExecOptions) -> Result<Table> {
    match input {
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            let (filters, source) = peel_filters(input);
            let src = run_plan(ctx, source, opts)?;
            run_parallel_aggregate(&src, &filters, group_by, items, hidden, opts)
        }
        LogicalPlan::Project { input, items, hidden } => {
            let (filters, source) = peel_filters(input);
            let src = run_plan(ctx, source, opts)?;
            run_parallel_project(&src, &filters, items, hidden, opts)
        }
        // The optimizer only marks Aggregate/Project pipelines; anything
        // else runs serially.
        other => run_plan(ctx, other, opts),
    }
}

fn run_parallel_project(
    src: &Table,
    filters: &[&Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
    opts: &ExecOptions,
) -> Result<Table> {
    let len = src.len();
    let out_schema = project_names(items, hidden.len());
    let width = items.len() + hidden.len();
    if len == 0 {
        return Ok(Table::from_columnar_parts(out_schema, vec![Column::empty(); width], 0));
    }
    let exprs: Vec<&Expr> = items.iter().map(|(e, _)| e).chain(hidden.iter()).collect();
    let ranges = morsel_ranges(len, effective_partitions(opts, len));
    let parts = run_partitioned(ranges.len(), |m| -> Result<(Vec<Column>, usize)> {
        let (a, b) = ranges[m];
        let cols: Vec<Column> = src.columns().iter().map(|c| c.slice(a, b)).collect();
        let (cols, mlen) = apply_filters(filters, src.schema(), cols, b - a)?;
        if mlen == 0 {
            return Ok((Vec::new(), 0));
        }
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(veval::eval(e, src.schema(), &cols, mlen)?.into_column(mlen));
        }
        Ok((out, mlen))
    })?;

    // Order-preserving concatenation of morsel outputs.
    let mut parts = parts.into_iter().filter(|(_, l)| *l > 0);
    let (mut cols, mut total) = match parts.next() {
        Some(first) => first,
        None => return Ok(Table::from_columnar_parts(out_schema, vec![Column::empty(); width], 0)),
    };
    for (pcols, plen) in parts {
        total += plen;
        for (acc, pc) in cols.iter_mut().zip(pcols) {
            acc.append_preserving(pc);
        }
    }
    Ok(Table::from_columnar_parts(out_schema, cols, total))
}

/// How one output expression of a parallel aggregate is produced.
enum AggSlot {
    /// Index into the GROUP BY key list.
    Key(usize),
    /// Index into the aggregate-spec list.
    Agg(usize),
}

/// One group's partial state within a morsel (or after merging).
struct GroupPartial {
    /// Group-key values at the group's first row (output for key slots).
    keys: Vec<Value>,
    /// One accumulator per aggregate spec.
    accs: Vec<AggAcc>,
}

/// One morsel's partial aggregation result.
struct AggPartial {
    /// First-seen key order within the morsel.
    order: Vec<String>,
    /// Partial state per key.
    groups: HashMap<String, GroupPartial>,
}

fn run_parallel_aggregate(
    src: &Table,
    filters: &[&Expr],
    group_by: &[Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
    opts: &ExecOptions,
) -> Result<Table> {
    let len = src.len();
    let out_schema = project_names(items, hidden.len());
    let width = items.len() + hidden.len();
    if len == 0 {
        return Ok(Table::from_columnar_parts(out_schema, vec![Column::empty(); width], 0));
    }

    // Decompose outputs into key references and aggregate specs (the
    // optimizer only marks pipelines where this decomposition is total).
    let mut slots: Vec<AggSlot> = Vec::with_capacity(width);
    let mut specs: Vec<(&str, &[Expr])> = Vec::new();
    for e in items.iter().map(|(e, _)| e).chain(hidden.iter()) {
        if let Some(k) = group_by.iter().position(|g| g == e) {
            slots.push(AggSlot::Key(k));
        } else if let Expr::Function { name, args } = e {
            debug_assert!(is_aggregate(name));
            slots.push(AggSlot::Agg(specs.len()));
            specs.push((name.as_str(), args.as_slice()));
        } else {
            return Err(QueryError::Plan(
                "exchange aggregate with non-mergeable output (optimizer bug)".into(),
            ));
        }
    }

    // Phase 1: per-morsel partial aggregation.
    let ranges = morsel_ranges(len, effective_partitions(opts, len));
    let partials = run_partitioned(ranges.len(), |m| -> Result<AggPartial> {
        let (a, b) = ranges[m];
        let cols: Vec<Column> = src.columns().iter().map(|c| c.slice(a, b)).collect();
        let (cols, mlen) = apply_filters(filters, src.schema(), cols, b - a)?;
        let mut partial = AggPartial { order: Vec::new(), groups: HashMap::new() };
        if mlen == 0 {
            return Ok(partial);
        }
        let key_cols: Vec<Column> = group_by
            .iter()
            .map(|g| veval::eval(g, src.schema(), &cols, mlen).map(|v| v.into_column(mlen)))
            .collect::<Result<_>>()?;
        let keys = if group_by.is_empty() {
            vec![String::new(); mlen]
        } else {
            veval::group_key_strings(&key_cols, mlen)
        };
        let arg_cols: Vec<Vec<Column>> = specs
            .iter()
            .map(|(_, args)| {
                args.iter()
                    .map(|a| veval::eval(a, src.schema(), &cols, mlen).map(|v| v.into_column(mlen)))
                    .collect::<Result<_>>()
            })
            .collect::<Result<_>>()?;
        // Single Float/Int-column specs push the raw element per row —
        // push-equivalent to boxing it, minus the `Value` round trip.
        enum ParPush<'a> {
            F64(&'a [f64]),
            I64(&'a [i64]),
            General,
        }
        let push_plans: Vec<ParPush> = arg_cols
            .iter()
            .map(|cols| match cols.as_slice() {
                [Column::Float(vs)] => ParPush::F64(vs),
                [Column::Int(vs)] => ParPush::I64(vs),
                _ => ParPush::General,
            })
            .collect();
        let mut scratch: Vec<Value> = Vec::new();
        for (row, key) in keys.into_iter().enumerate() {
            let group = match partial.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    partial.order.push(e.key().clone());
                    let accs = specs
                        .iter()
                        .map(|(name, _)| {
                            AggAcc::new(name).ok_or_else(|| {
                                QueryError::BadFunction(format!("unknown aggregate {name}"))
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    e.insert(GroupPartial {
                        keys: key_cols.iter().map(|c| c.get(row)).collect(),
                        accs,
                    })
                }
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            };
            for ((acc, cols), plan) in
                group.accs.iter_mut().zip(arg_cols.iter()).zip(push_plans.iter())
            {
                match plan {
                    ParPush::F64(vs) => acc.push_f64(vs[row]),
                    ParPush::I64(vs) => acc.push_i64(vs[row]),
                    ParPush::General => {
                        scratch.clear();
                        scratch.extend(cols.iter().map(|c| c.get(row)));
                        acc.push(&scratch)?;
                    }
                }
            }
        }
        Ok(partial)
    })?;

    // Phase 2: exchange — merge partials in morsel order, which preserves
    // the serial first-seen group order and makes every accumulator fold
    // identical to the single-pass fold.
    let mut order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, GroupPartial> = HashMap::new();
    for mut partial in partials {
        for key in partial.order {
            let gp = partial.groups.remove(&key).expect("partial group exists"); // invariant: keys iterate the same map they were stored in
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(gp);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (acc, part) in e.get_mut().accs.iter_mut().zip(gp.accs) {
                        acc.merge(part)?;
                    }
                }
            }
        }
    }

    // Finish accumulators and assemble output columns.
    let mut out_vals: Vec<Vec<Value>> =
        (0..width).map(|_| Vec::with_capacity(order.len())).collect();
    for key in &order {
        let gp = merged.remove(key).expect("merged group exists"); // invariant: keys iterate the same map they were stored in
        let finished: Vec<Value> =
            gp.accs.into_iter().map(AggAcc::finish).collect::<Result<_>>()?;
        for (slot, out) in slots.iter().zip(out_vals.iter_mut()) {
            match slot {
                AggSlot::Key(k) => out.push(gp.keys[*k].clone()),
                AggSlot::Agg(i) => out.push(finished[*i].clone()),
            }
        }
    }
    let out_cols: Vec<Column> = out_vals.into_iter().map(Column::from_values).collect();
    Ok(Table::from_columnar_parts(out_schema, out_cols, order.len()))
}

// ---------------------------------------------------------------------------
// Scan-level aggregation
// ---------------------------------------------------------------------------
//
// The `ScanAggregate` operator runs the paper's hottest query shape — the
// stage-one `GROUP BY timestamp` family query — without materializing a
// single observation row. Each series' sorted point vectors come straight
// from `Tsdb::scan_parts_ordered`; a morsel of series is pre-aggregated by
// one worker into mergeable `AggAcc` states keyed by `(series tuple,
// timestamp)` composite keys (integer hashing, no per-row key-string
// rendering); and partials merge in deterministic morsel order. The
// result is value-identical to the serial pipeline: accumulators are
// order-independent by construction (error-free sums, gathered
// percentiles, totally-ordered MIN/MAX inputs — the optimizer's
// eligibility analysis guarantees the last), and the serial first-seen
// group order is reconstructed from each group's earliest `(timestamp,
// series rank)` contribution.

/// How one aggregate argument (or group key) is produced, classified once
/// per operator against the observation schema.
enum ArgSrc<'p> {
    /// The raw `value` column: read the point's f64 directly.
    Val,
    /// The raw `timestamp` column: read the point's i64 directly.
    Ts,
    /// A literal, constant for the whole query (e.g. COUNT(*)'s `1`).
    Const(Value),
    /// References only the per-series-constant columns
    /// (`metric_name`/`tag`): evaluated once per series.
    Class(&'p Expr),
    /// General expression: substituted per series, vectorized per point.
    Point(&'p Expr),
}

/// One aggregate argument prepared for a specific series.
enum PreparedArg {
    Val,
    Ts,
    Const(Value),
    /// Evaluated column over the series' *kept* points (index = position
    /// in the kept list, not the raw point index).
    Col(Column),
}

/// How a spec's arguments feed its accumulator for one series span.
/// Single-column and all-constant shapes skip the per-point `Vec<Value>`
/// scratch entirely (`AggAcc::push_f64`/`push_i64` are push-equivalent).
enum SpecPush {
    /// `AGG(value)`: push the raw f64 point.
    Val,
    /// `AGG(timestamp)`: push the raw i64 timestamp.
    Ts,
    /// Every argument is per-series constant: one pre-built arg row.
    Consts(Vec<Value>),
    /// General shape: build the arg row per point.
    General,
}

/// What a group-key slot outputs.
enum KeyKind {
    /// The timestamp key: output the group's (first-seen) timestamp.
    Ts,
    /// Index into the per-series class-key value list.
    Class(usize),
}

/// One group's partial state within a scan-aggregate morsel.
struct SaGroup {
    /// Morsel-local series-tuple id (resolved to its fragment at hand-off).
    tuple: u32,
    /// Group timestamp bits (`(ts as f64).to_bits()`; 0 when the group is
    /// not keyed by timestamp). Part of the merge identity.
    ts_bits: u64,
    /// The earliest `(timestamp, series rank)` contribution — the serial
    /// engine's first-seen position of this group.
    order: (i64, u32),
    /// The group's timestamp value as of `order` (output for Ts key slots;
    /// `group_key` folds i64 timestamps through f64, so distinct i64 values
    /// can share a group — the serially-first one names it).
    ts_val: i64,
    /// Class-key values as of `order`.
    class_vals: Vec<Value>,
    /// One accumulator per aggregate spec.
    accs: Vec<AggAcc>,
}

/// Replaces references to the per-series-constant observation columns
/// (`metric_name`, `tag`) with literals from the series key, leaving
/// `timestamp`/`value` references (and unresolvable names) untouched.
fn substitute_series_consts(e: &Expr, schema: &Schema, key: &SeriesKey) -> Expr {
    map_columns(e.clone(), &|name| match schema.resolve(&name) {
        Ok(1) => Expr::Literal(Value::Str(key.name.clone())),
        Ok(2) => Expr::Literal(Value::Map(key.tags.clone())),
        _ => Expr::Column(name),
    })
}

fn classify_arg<'p>(a: &'p Expr, schema: &Schema) -> ArgSrc<'p> {
    if let Expr::Literal(v) = a {
        return ArgSrc::Const(v.clone());
    }
    if let Expr::Column(c) = a {
        match schema.resolve(c) {
            Ok(0) => return ArgSrc::Ts,
            Ok(3) => return ArgSrc::Val,
            _ => {}
        }
    }
    let mut cols = Vec::new();
    crate::optimize::collect_columns(a, &mut cols);
    if cols.iter().all(|c| schema.resolve(c).is_ok_and(|i| i == 1 || i == 2)) {
        ArgSrc::Class(a)
    } else {
        ArgSrc::Point(a)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_scan_aggregate(
    ctx: &ExecCtx,
    table: &str,
    name: &Option<String>,
    tags: &[explainit_tsdb::TagFilter],
    start: Option<i64>,
    end: Option<i64>,
    filters: &[Expr],
    group_by: &[Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
    opts: &ExecOptions,
) -> Result<Table> {
    let binding = ctx.binding(table).ok_or_else(|| QueryError::UnknownTable(table.to_string()))?;
    let db = binding.db();
    let out_schema = project_names(items, hidden.len());
    let width = items.len() + hidden.len();
    let empty = |out_schema: Schema| {
        Table::from_columnar_parts(out_schema, vec![Column::empty(); width], 0)
    };

    // Inclusive plan bounds map straight onto the store's inclusive scan
    // range (points at `timestamp == i64::MAX` stay reachable).
    let lo = start.unwrap_or(i64::MIN);
    let hi = end.unwrap_or(i64::MAX);
    if lo > hi {
        return Ok(empty(out_schema));
    }

    let obs = Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect());
    let mini_schema = Schema::new(vec!["timestamp".to_string(), "value".to_string()]);
    let empty_schema = Schema::default();

    // Decompose group keys: the timestamp key (at most one, by
    // eligibility) and per-series "class" keys over the dict columns.
    let mut key_kinds: Vec<KeyKind> = Vec::with_capacity(group_by.len());
    let mut class_keys: Vec<&Expr> = Vec::new();
    for g in group_by {
        let is_ts = matches!(g, Expr::Column(c) if obs.resolve(c).is_ok_and(|i| i == 0));
        if is_ts {
            key_kinds.push(KeyKind::Ts);
        } else {
            key_kinds.push(KeyKind::Class(class_keys.len()));
            class_keys.push(g);
        }
    }
    let has_ts_key = key_kinds.iter().any(|k| matches!(k, KeyKind::Ts));

    // Decompose outputs into key references and aggregate specs.
    let mut slots: Vec<AggSlot> = Vec::with_capacity(width);
    let mut specs: Vec<(&str, Vec<ArgSrc>)> = Vec::new();
    for e in items.iter().map(|(e, _)| e).chain(hidden.iter()) {
        if let Some(k) = group_by.iter().position(|g| g == e) {
            slots.push(AggSlot::Key(k));
        } else if let Expr::Function { name, args } = e {
            debug_assert!(is_aggregate(name));
            slots.push(AggSlot::Agg(specs.len()));
            specs.push((name.as_str(), args.iter().map(|a| classify_arg(a, &obs)).collect()));
        } else {
            return Err(QueryError::Plan(
                "scan aggregate with non-mergeable output (optimizer bug)".into(),
            ));
        }
    }
    let new_accs = |specs: &[(&str, Vec<ArgSrc>)]| -> Result<Vec<AggAcc>> {
        specs
            .iter()
            .map(|(name, _)| {
                AggAcc::new(name)
                    .ok_or_else(|| QueryError::BadFunction(format!("unknown aggregate {name}")))
            })
            .collect()
    };
    // Residual filters, innermost first (the order the serial pipeline
    // applies them in), with a flag for predicates that need the per-point
    // columns at all.
    let filter_chain: Vec<(&Expr, bool)> = filters
        .iter()
        .rev()
        .map(|p| {
            let mut cols = Vec::new();
            crate::optimize::collect_columns(p, &mut cols);
            let uses_points = cols.iter().any(|c| obs.resolve(c).is_ok_and(|i| i == 0 || i == 3));
            (p, uses_points)
        })
        .collect();
    let any_point_args =
        specs.iter().any(|(_, args)| args.iter().any(|a| matches!(a, ArgSrc::Point(_))));

    let filter = MetricFilter { name: name.clone(), tags: tags.to_vec() };
    let hits = db.scan_parts_ordered_between(&filter, lo, hi);
    if hits.is_empty() {
        return Ok(empty(out_schema));
    }

    // Morsels cut the rank-ordered *point* sequence — not the series list —
    // into contiguous equal-point spans, splitting a series across workers
    // when it dominates the store (the skewed-fleet case where one hot
    // series would otherwise serialize the whole operator). Splitting is
    // sound because partials merge in morsel (= point) order, which keeps
    // every accumulator fold identical to the unsplit one. Auto mode keeps
    // at least MIN_PARTITION_ROWS points per morsel.
    let counts: Vec<usize> = hits.iter().map(|p| p.timestamps.len()).collect();
    let total_points: usize = counts.iter().sum();
    let partitions = effective_partitions(opts, total_points);
    let morsels = point_balanced_spans(&counts, partitions);

    // Phase 1: per-morsel, per-series-span pre-aggregation.
    type Partial = Vec<((String, u64), SaGroup)>;
    let partials = run_partitioned(morsels.len(), |m| -> Result<Partial> {
        let mut tuple_ids: HashMap<String, u32> = HashMap::new();
        let mut tuple_frags: Vec<String> = Vec::new();
        let mut index: HashMap<(u32, u64), usize> = HashMap::new();
        let mut groups: Vec<SaGroup> = Vec::new();
        let mut scratch: Vec<Value> = Vec::new();

        for &(h, p_lo, p_hi) in &morsels[m] {
            let part = &hits[h];
            let rank = h as u32;
            // This morsel's contiguous span of the series' sorted points
            // (the whole series unless a hot series was split).
            let span_ts = &part.timestamps[p_lo..p_hi];
            let span_vals = &part.values[p_lo..p_hi];
            let n = span_ts.len();
            if n == 0 {
                continue;
            }

            // Residual filter chain over this series' points. Class-only
            // predicates evaluate as constants (no column build);
            // kernel-refinable point predicates refine the kept-selection
            // straight off the raw point slices (no intermediate column
            // materialization); anything else falls back to gathering the
            // survivors once for the vectorized mask path.
            let mut kept: Vec<u32> = (0..n as u32).collect();
            for (pred, uses_points) in &filter_chain {
                if kept.is_empty() {
                    break;
                }
                if !*uses_points {
                    // Constant per series: one evaluation decides the span.
                    let sub = substitute_series_consts(pred, &obs, part.key);
                    let keep = match veval::eval(&sub, &mini_schema, &[], 1)? {
                        veval::VOut::Const(v) => v.is_true(),
                        veval::VOut::Col(c) => c.get(0).is_true(),
                    };
                    if !keep {
                        kept.clear();
                    }
                    continue;
                }
                if veval::span_refinable(pred, &obs) {
                    veval::refine_span(pred, &obs, span_ts, span_vals, &mut kept);
                    continue;
                }
                let sub = substitute_series_consts(pred, &obs, part.key);
                let cols = vec![
                    Column::Int(kept.iter().map(|&i| span_ts[i as usize]).collect()),
                    Column::Float(kept.iter().map(|&i| span_vals[i as usize]).collect()),
                ];
                let mask = veval::eval_mask(&sub, &mini_schema, &cols, kept.len())?;
                kept = kept
                    .iter()
                    .zip(mask.iter())
                    .filter(|(_, &keep)| keep)
                    .map(|(&i, _)| i)
                    .collect();
            }
            if kept.is_empty() {
                continue;
            }

            // Class keys: evaluated once per series, then interned into a
            // morsel-local tuple id via the rendered key fragment (once
            // per series — the per-point loop below only hashes ints).
            let mut class_vals: Vec<Value> = Vec::with_capacity(class_keys.len());
            for ck in &class_keys {
                let sub = substitute_series_consts(ck, &obs, part.key);
                class_vals.push(eval_row(&sub, &empty_schema, &[])?);
            }
            let mut frag = String::new();
            for v in &class_vals {
                frag.push_str(&v.group_key());
                frag.push('\u{1}');
            }
            let tuple = match tuple_ids.entry(frag) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    let id = tuple_frags.len() as u32;
                    tuple_frags.push(e.key().clone());
                    e.insert(id);
                    id
                }
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            };

            // Prepare this series span's aggregate arguments.
            let kept_cols = if any_point_args {
                vec![
                    Column::Int(kept.iter().map(|&i| span_ts[i as usize]).collect()),
                    Column::Float(kept.iter().map(|&i| span_vals[i as usize]).collect()),
                ]
            } else {
                Vec::new()
            };
            let prepared: Vec<Vec<PreparedArg>> = specs
                .iter()
                .map(|(_, args)| {
                    args.iter()
                        .map(|arg| {
                            Ok(match arg {
                                ArgSrc::Val => PreparedArg::Val,
                                ArgSrc::Ts => PreparedArg::Ts,
                                ArgSrc::Const(v) => PreparedArg::Const(v.clone()),
                                ArgSrc::Class(e) => {
                                    let sub = substitute_series_consts(e, &obs, part.key);
                                    PreparedArg::Const(eval_row(&sub, &empty_schema, &[])?)
                                }
                                ArgSrc::Point(e) => {
                                    let sub = substitute_series_consts(e, &obs, part.key);
                                    let col =
                                        veval::eval(&sub, &mini_schema, &kept_cols, kept.len())?
                                            .into_column(kept.len());
                                    PreparedArg::Col(col)
                                }
                            })
                        })
                        .collect::<Result<Vec<_>>>()
                })
                .collect::<Result<Vec<_>>>()?;
            let push_plans: Vec<SpecPush> = prepared
                .iter()
                .map(|pa| match pa.as_slice() {
                    [PreparedArg::Val] => SpecPush::Val,
                    [PreparedArg::Ts] => SpecPush::Ts,
                    pa if pa.iter().all(|a| matches!(a, PreparedArg::Const(_))) => {
                        SpecPush::Consts(
                            pa.iter()
                                .map(|a| match a {
                                    PreparedArg::Const(v) => v.clone(),
                                    _ => unreachable!(),
                                })
                                .collect(),
                        )
                    }
                    _ => SpecPush::General,
                })
                .collect();

            // Accumulate the kept points. With a timestamp key each point
            // lands in its `(tuple, ts)` group; otherwise the whole series
            // feeds one `(tuple,)` group.
            let slot_of = |ts: i64,
                           ts_bits: u64,
                           order: (i64, u32),
                           groups: &mut Vec<SaGroup>,
                           index: &mut HashMap<(u32, u64), usize>|
             -> Result<usize> {
                match index.entry((tuple, ts_bits)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let slot = groups.len();
                        groups.push(SaGroup {
                            tuple,
                            ts_bits,
                            order,
                            ts_val: ts,
                            class_vals: class_vals.clone(),
                            accs: new_accs(&specs)?,
                        });
                        e.insert(slot);
                        Ok(slot)
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let slot = *e.get();
                        let g = &mut groups[slot];
                        if order < g.order {
                            g.order = order;
                            g.ts_val = ts;
                            g.class_vals = class_vals.clone();
                        }
                        Ok(slot)
                    }
                }
            };
            if has_ts_key {
                for (j, &pi) in kept.iter().enumerate() {
                    let pi = pi as usize;
                    let ts = span_ts[pi];
                    let slot =
                        slot_of(ts, (ts as f64).to_bits(), (ts, rank), &mut groups, &mut index)?;
                    let g = &mut groups[slot];
                    for ((pa, plan), acc) in
                        prepared.iter().zip(push_plans.iter()).zip(g.accs.iter_mut())
                    {
                        match plan {
                            SpecPush::Val => acc.push_f64(span_vals[pi]),
                            SpecPush::Ts => acc.push_i64(ts),
                            SpecPush::Consts(row) => acc.push(row)?,
                            SpecPush::General => {
                                scratch.clear();
                                for arg in pa {
                                    scratch.push(match arg {
                                        PreparedArg::Val => Value::Float(span_vals[pi]),
                                        PreparedArg::Ts => Value::Int(ts),
                                        PreparedArg::Const(v) => v.clone(),
                                        PreparedArg::Col(c) => c.get(j),
                                    });
                                }
                                acc.push(&scratch)?;
                            }
                        }
                    }
                }
            } else {
                // One group takes the whole span: single-column specs fold
                // the raw point slices through the kept-selection directly
                // (accumulators are independent, so folding spec-major is
                // observation-identical to the per-point push loop).
                let first_ts = span_ts[kept[0] as usize];
                let slot = slot_of(first_ts, 0, (first_ts, rank), &mut groups, &mut index)?;
                let g = &mut groups[slot];
                for ((pa, plan), acc) in
                    prepared.iter().zip(push_plans.iter()).zip(g.accs.iter_mut())
                {
                    match plan {
                        SpecPush::Val => {
                            acc.fold_f64s(span_vals, kept.iter().map(|&i| i as usize), None)
                        }
                        SpecPush::Ts => {
                            acc.fold_i64s(span_ts, kept.iter().map(|&i| i as usize), None)
                        }
                        SpecPush::Consts(row) => {
                            for _ in &kept {
                                acc.push(row)?;
                            }
                        }
                        SpecPush::General => {
                            for (j, &pi) in kept.iter().enumerate() {
                                let pi = pi as usize;
                                scratch.clear();
                                for arg in pa {
                                    scratch.push(match arg {
                                        PreparedArg::Val => Value::Float(span_vals[pi]),
                                        PreparedArg::Ts => Value::Int(span_ts[pi]),
                                        PreparedArg::Const(v) => v.clone(),
                                        PreparedArg::Col(c) => c.get(j),
                                    });
                                }
                                acc.push(&scratch)?;
                            }
                        }
                    }
                }
            }
        }
        // Hand groups off in creation order, keyed for the cross-morsel
        // merge by (class fragment, timestamp bits).
        Ok(groups
            .into_iter()
            .map(|g| ((tuple_frags[g.tuple as usize].clone(), g.ts_bits), g))
            .collect())
    })?;

    // Phase 2: merge morsel partials. Accumulator merges are exactly
    // fold-equivalent, and each group keeps its earliest (timestamp, rank)
    // contribution, which reconstructs the serial first-seen order below.
    let mut merged: HashMap<(String, u64), usize> = HashMap::new();
    let mut final_groups: Vec<SaGroup> = Vec::new();
    for partial in partials {
        for (key, gp) in partial {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(final_groups.len());
                    final_groups.push(gp);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let cur = &mut final_groups[*e.get()];
                    for (acc, part) in cur.accs.iter_mut().zip(gp.accs) {
                        acc.merge(part)?;
                    }
                    if gp.order < cur.order {
                        cur.order = gp.order;
                        cur.ts_val = gp.ts_val;
                        cur.class_vals = gp.class_vals;
                    }
                }
            }
        }
    }
    final_groups.sort_by_key(|g| g.order);

    // Finish accumulators and assemble output columns.
    let mut out_vals: Vec<Vec<Value>> =
        (0..width).map(|_| Vec::with_capacity(final_groups.len())).collect();
    let rows = final_groups.len();
    for g in final_groups {
        let finished: Vec<Value> = g.accs.into_iter().map(AggAcc::finish).collect::<Result<_>>()?;
        for (slot, out) in slots.iter().zip(out_vals.iter_mut()) {
            match slot {
                AggSlot::Key(k) => out.push(match key_kinds[*k] {
                    KeyKind::Ts => Value::Int(g.ts_val),
                    KeyKind::Class(j) => g.class_vals[j].clone(),
                }),
                AggSlot::Agg(i) => out.push(finished[*i].clone()),
            }
        }
    }
    let out_cols: Vec<Column> = out_vals.into_iter().map(Column::from_values).collect();
    Ok(Table::from_columnar_parts(out_schema, out_cols, rows))
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

fn join_key_at(cols: &[&Column], row: usize) -> (bool, String) {
    let mut key = String::new();
    let mut has_null = false;
    for c in cols {
        let v = c.get(row);
        if v.is_null() {
            has_null = true;
        }
        key.push_str(&v.group_key());
        key.push('\u{1}');
    }
    (has_null, key)
}

fn run_join(
    left: Table,
    right: Table,
    kind: JoinKind,
    on: &Expr,
    build_left: bool,
) -> Result<Table> {
    let mut columns = left.schema().columns().to_vec();
    columns.extend(right.schema().columns().iter().cloned());
    let combined = Schema::new(columns);

    if let Some((lk, rk)) = equi_join_keys(on, left.schema(), right.schema()) {
        // Hash join over columnar keys: build pair lists, then gather. The
        // hash index goes over whichever side the optimizer's statistics
        // picked (`build_left`; the legacy default is the right side) —
        // both branches emit exactly the same `(left row, right row)`
        // pairs in exactly the same order: all matches sorted by
        // `(left row, right row)`, LEFT/FULL null-extensions in left-row
        // position, FULL OUTER's unmatched right rows appended in right
        // order. Statistics only ever change which side pays the memory.
        let right_key_cols: Vec<&Column> = rk.iter().map(|&c| right.column_at(c)).collect();
        let left_key_cols: Vec<&Column> = lk.iter().map(|&c| left.column_at(c)).collect();

        let mut left_idx: Vec<Option<usize>> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        let mut right_matched = vec![false; right.len()];
        if build_left {
            // Build on the (estimated-smaller) left side, probe with the
            // right rows, and bucket matches per left row so the emission
            // loop below can still walk in left-major order.
            let mut index: HashMap<String, Vec<usize>> = HashMap::new();
            for li in 0..left.len() {
                let (has_null, key) = join_key_at(&left_key_cols, li);
                if has_null {
                    continue; // NULL keys never match
                }
                index.entry(key).or_default().push(li);
            }
            let mut matches_of_left: Vec<Vec<u32>> = vec![Vec::new(); left.len()];
            for (ri, matched) in right_matched.iter_mut().enumerate() {
                let (has_null, key) = join_key_at(&right_key_cols, ri);
                if has_null {
                    continue;
                }
                if let Some(lis) = index.get(&key) {
                    *matched = true;
                    for &li in lis {
                        // Probed in ascending `ri`, so each left row's
                        // match list stays right-row-ordered.
                        matches_of_left[li].push(ri as u32);
                    }
                }
            }
            for (li, ris) in matches_of_left.iter().enumerate() {
                if ris.is_empty() {
                    if kind != JoinKind::Inner {
                        left_idx.push(Some(li));
                        right_idx.push(None);
                    }
                } else {
                    for &ri in ris {
                        left_idx.push(Some(li));
                        right_idx.push(Some(ri as usize));
                    }
                }
            }
        } else {
            let mut index: HashMap<String, Vec<usize>> = HashMap::new();
            for ri in 0..right.len() {
                let (has_null, key) = join_key_at(&right_key_cols, ri);
                if has_null {
                    continue; // NULL keys never match
                }
                index.entry(key).or_default().push(ri);
            }
            for li in 0..left.len() {
                let (has_null, key) = join_key_at(&left_key_cols, li);
                let matches = if has_null { None } else { index.get(&key) };
                match matches {
                    Some(ris) if !ris.is_empty() => {
                        for &ri in ris {
                            right_matched[ri] = true;
                            left_idx.push(Some(li));
                            right_idx.push(Some(ri));
                        }
                    }
                    _ => {
                        if kind != JoinKind::Inner {
                            left_idx.push(Some(li));
                            right_idx.push(None);
                        }
                    }
                }
            }
        }
        if kind == JoinKind::FullOuter {
            for (ri, matched) in right_matched.iter().enumerate() {
                if !matched {
                    left_idx.push(None);
                    right_idx.push(Some(ri));
                }
            }
        }

        let mut out: Vec<Column> = Vec::with_capacity(combined.len());
        for c in left.columns() {
            out.push(c.gather_opt(&left_idx));
        }
        for c in right.columns() {
            out.push(c.gather_opt(&right_idx));
        }
        let len = left_idx.len();
        return Ok(Table::from_columnar_parts(combined, out, len));
    }

    // General nested loop with full ON evaluation (row shim).
    let left_rows = left.rows();
    let right_rows = right.rows();
    let right_width = right.schema().len();
    let left_width = left.schema().len();
    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut right_matched = vec![false; right_rows.len()];
    for lrow in left_rows {
        let mut matched = false;
        for (ri, rrow) in right_rows.iter().enumerate() {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            if eval_row(on, &combined, &row)?.is_true() {
                matched = true;
                right_matched[ri] = true;
                out.push(row);
            }
        }
        if !matched && kind != JoinKind::Inner {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(row);
        }
    }
    if kind == JoinKind::FullOuter {
        for (ri, rrow) in right_rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row: Vec<Value> = std::iter::repeat_n(Value::Null, left_width).collect();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(Table::from_parts(combined, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(
                &["ts", "host", "v"],
                vec![
                    vec![Value::Int(0), Value::str("web-1"), Value::Float(1.0)],
                    vec![Value::Int(0), Value::str("web-2"), Value::Float(3.0)],
                    vec![Value::Int(1), Value::str("web-1"), Value::Float(5.0)],
                    vec![Value::Int(1), Value::str("web-2"), Value::Float(7.0)],
                    vec![Value::Int(2), Value::str("db-1"), Value::Float(100.0)],
                ],
            ),
        );
        c.register(
            "u",
            Table::from_rows(
                &["ts", "w"],
                vec![
                    vec![Value::Int(0), Value::Float(10.0)],
                    vec![Value::Int(2), Value::Float(30.0)],
                    vec![Value::Int(9), Value::Float(90.0)],
                ],
            ),
        );
        c
    }

    fn run(sql: &str) -> Table {
        let c = catalog();
        execute(&c, &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn exec_ctx_pins_live_bindings_for_one_execution() {
        use explainit_tsdb::{SeriesKey, SharedTsdb, Tsdb};
        let mut db = Tsdb::new();
        db.insert(&SeriesKey::new("m").with_tag("host", "a"), 0, 1.0);
        let shared = SharedTsdb::new(db);
        let mut c = Catalog::new();
        c.register_tsdb_shared("tsdb", &shared);
        let ctx = ExecCtx::new(&c);
        let first = ctx.binding("tsdb").unwrap();
        // An ingest mid-execution must not change what this execution sees:
        // a self-join's second scan reads the same pinned snapshot.
        shared.insert(&SeriesKey::new("m").with_tag("host", "b"), 0, 2.0);
        let second = ctx.binding("tsdb").unwrap();
        assert!(Arc::ptr_eq(&first, &second), "binding pinned per execution");
        // A *new* execution picks up the fresh generation.
        let fresh = ExecCtx::new(&c).binding("tsdb").unwrap();
        assert!(!Arc::ptr_eq(&first, &fresh));
        assert_eq!(fresh.db().series_count(), 2);
    }

    /// Runs with forced multi-partition execution.
    fn run_parallel(sql: &str, partitions: usize) -> Table {
        let c = catalog();
        execute_with(&c, &parse_query(sql).unwrap(), ExecOptions::with_partitions(partitions))
            .unwrap()
    }

    #[test]
    fn select_star() {
        let t = run("SELECT * FROM t");
        assert_eq!(t.len(), 5);
        assert_eq!(t.schema().columns().len(), 3);
    }

    #[test]
    fn where_filters() {
        let t = run("SELECT v FROM t WHERE host = 'web-1'");
        assert_eq!(t.len(), 2);
        let t = run("SELECT v FROM t WHERE host LIKE 'web%' AND v > 2");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn glob_operator_filters() {
        let t = run("SELECT v FROM t WHERE host GLOB 'web-*'");
        assert_eq!(t.len(), 4);
        let t = run("SELECT v FROM t WHERE host GLOB 'web-?' AND v > 2");
        assert_eq!(t.len(), 3);
        let t = run("SELECT v FROM t WHERE host NOT GLOB 'web-*'");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn group_by_avg() {
        let t = run("SELECT ts, AVG(v) AS m FROM t GROUP BY ts ORDER BY ts");
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0], vec![Value::Int(0), Value::Float(2.0)]);
        assert_eq!(t.rows()[1], vec![Value::Int(1), Value::Float(6.0)]);
        assert_eq!(t.rows()[2], vec![Value::Int(2), Value::Float(100.0)]);
    }

    #[test]
    fn group_by_expression_key() {
        let t = run("SELECT SPLIT(host, '-')[0] AS grp, SUM(v) AS total FROM t \
             GROUP BY SPLIT(host, '-')[0] ORDER BY grp");
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::str("db"));
        assert_eq!(t.rows()[0][1], Value::Float(100.0));
        assert_eq!(t.rows()[1][1], Value::Float(16.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let t = run("SELECT COUNT(*) AS n, MAX(v) AS mx FROM t");
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0], vec![Value::Int(5), Value::Float(100.0)]);
    }

    #[test]
    fn sum_keeps_int_typing_for_int_columns() {
        let t = run("SELECT SUM(ts) AS s FROM t");
        assert_eq!(t.rows()[0][0], Value::Int(4));
        let t = run("SELECT SUM(v) AS s FROM t WHERE ts = 0");
        assert_eq!(t.rows()[0][0], Value::Float(4.0));
    }

    #[test]
    fn forced_partitions_match_serial_results() {
        for parts in [1, 2, 3, 7] {
            let t = run_parallel(
                "SELECT ts, AVG(v) AS m, SUM(v) AS s, COUNT(*) AS n, MIN(host) AS h, \
                 STDDEV(v) AS sd FROM t GROUP BY ts ORDER BY ts",
                parts,
            );
            let serial =
                run("SELECT ts, AVG(v) AS m, SUM(v) AS s, COUNT(*) AS n, MIN(host) AS h, \
                 STDDEV(v) AS sd FROM t GROUP BY ts ORDER BY ts");
            assert_eq!(t.rows(), serial.rows(), "partitions={parts}");
            assert_eq!(t.schema(), serial.schema());
        }
    }

    #[test]
    fn forced_partitions_preserve_group_first_seen_order() {
        // Without ORDER BY the group order is first-seen; morsel-order
        // merging must reproduce it exactly.
        for parts in [1, 2, 3, 5] {
            let t = run_parallel("SELECT host, COUNT(*) AS n FROM t GROUP BY host", parts);
            let serial = run("SELECT host, COUNT(*) AS n FROM t GROUP BY host");
            assert_eq!(t.rows(), serial.rows(), "partitions={parts}");
        }
    }

    #[test]
    fn order_by_desc_and_limit() {
        let t = run("SELECT v FROM t ORDER BY v DESC LIMIT 2");
        assert_eq!(t.rows()[0][0], Value::Float(100.0));
        assert_eq!(t.rows()[1][0], Value::Float(7.0));
    }

    #[test]
    fn order_by_alias() {
        let t = run("SELECT v * 2 AS dv FROM t ORDER BY dv DESC LIMIT 1");
        assert_eq!(t.rows()[0][0], Value::Float(200.0));
    }

    #[test]
    fn inner_join() {
        let t = run("SELECT t.ts, v, w FROM t JOIN u ON t.ts = u.ts ORDER BY v");
        assert_eq!(t.len(), 3); // ts=0 matches twice, ts=2 once
        assert_eq!(t.rows()[2], vec![Value::Int(2), Value::Float(100.0), Value::Float(30.0)]);
    }

    #[test]
    fn left_join_null_extends() {
        let t = run("SELECT t.ts, w FROM t LEFT JOIN u ON t.ts = u.ts WHERE t.ts = 1");
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::Null);
    }

    #[test]
    fn full_outer_join_keeps_both_sides() {
        let t = run("SELECT t.ts, u.ts FROM t FULL OUTER JOIN u ON t.ts = u.ts");
        // 3 matched (0x2, 2) + 2 unmatched-left (ts=1 x2) + 1 unmatched-right (ts=9).
        assert_eq!(t.len(), 6);
        let unmatched_right: Vec<_> = t.rows().iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(unmatched_right.len(), 1);
        assert_eq!(unmatched_right[0][1], Value::Int(9));
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let t = run("SELECT t.ts, u.ts FROM t JOIN u ON t.ts < u.ts ORDER BY t.ts, u.ts");
        assert!(t.len() > 3);
        // Every pair satisfies the predicate.
        for r in t.rows() {
            let a = r[0].as_i64().unwrap();
            let b = r[1].as_i64().unwrap();
            assert!(a < b);
        }
    }

    #[test]
    fn union_all_concats() {
        let t = run("SELECT v FROM t WHERE ts = 0 UNION ALL SELECT w FROM u");
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t UNION ALL SELECT ts, w FROM u").unwrap();
        assert!(matches!(execute(&c, &q), Err(QueryError::Plan(_))));
    }

    #[test]
    fn union_arity_error_names_both_schemas() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t UNION ALL SELECT ts, w FROM u").unwrap();
        let Err(QueryError::Plan(msg)) = execute(&c, &q) else { panic!("expected plan error") };
        assert!(msg.contains("[v]"), "message: {msg}");
        assert!(msg.contains("[ts, w]"), "message: {msg}");
    }

    #[test]
    fn union_coerces_int_and_float_columns() {
        let t = run("SELECT ts FROM t WHERE ts = 2 UNION ALL SELECT w FROM u WHERE ts = 0");
        assert_eq!(t.len(), 2);
        // The Int column meets a Float column: both render as floats.
        assert_eq!(t.rows()[0][0], Value::Float(2.0));
        assert_eq!(t.rows()[1][0], Value::Float(10.0));
    }

    #[test]
    fn union_keeps_first_branch_column_names() {
        let t = run("SELECT v AS reading FROM t WHERE ts = 2 UNION ALL SELECT w FROM u");
        assert_eq!(t.schema().columns(), &["reading"]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn subquery_in_from() {
        let t = run("SELECT m FROM (SELECT ts, AVG(v) AS m FROM t GROUP BY ts) s WHERE m > 3");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lag_window_function() {
        let t = run("SELECT ts, v, LAG(v, 1) AS prev FROM t WHERE host = 'web-1' ORDER BY ts");
        assert_eq!(t.rows()[0][2], Value::Null);
        assert_eq!(t.rows()[1][2], Value::Float(1.0));
    }

    #[test]
    fn constant_select_without_from() {
        let t = run("SELECT 1 + 2 AS three");
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = catalog();
        assert!(matches!(
            execute(&c, &parse_query("SELECT * FROM nope").unwrap()),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&c, &parse_query("SELECT nope FROM t").unwrap()),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        let c = catalog();
        let q = parse_query("SELECT * FROM t GROUP BY ts").unwrap();
        assert!(matches!(execute(&c, &q), Err(QueryError::Plan(_))));
    }

    #[test]
    fn percentile_aggregate_in_query() {
        let t = run("SELECT PERCENTILE(v, 0.5) AS p50 FROM t WHERE host LIKE 'web%'");
        assert_eq!(t.rows()[0][0], Value::Float(4.0));
    }

    #[test]
    fn percentile_with_non_constant_p_errors() {
        let c = catalog();
        let q = parse_query("SELECT PERCENTILE(v, ts) AS p FROM t").unwrap();
        assert!(matches!(execute(&c, &q), Err(QueryError::BadFunction(_))));
        // Same under forced parallel partitions.
        for parts in [2, 3] {
            assert!(matches!(
                execute_with(&c, &q, ExecOptions::with_partitions(parts)),
                Err(QueryError::BadFunction(_))
            ));
        }
    }

    #[test]
    fn case_in_projection() {
        let t = run("SELECT host, CASE WHEN v >= 100 THEN 'hot' ELSE 'ok' END AS status \
             FROM t ORDER BY v DESC LIMIT 1");
        assert_eq!(t.rows()[0][1], Value::str("hot"));
    }

    #[test]
    fn join_key_with_nulls_never_matches() {
        let mut c = catalog();
        c.register(
            "n",
            Table::from_rows(
                &["k", "x"],
                vec![vec![Value::Null, Value::Int(1)], vec![Value::Int(0), Value::Int(2)]],
            ),
        );
        let q = parse_query("SELECT n.x, u.w FROM n JOIN u ON n.k = u.ts").unwrap();
        let t = execute(&c, &q).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn explain_returns_one_column_plan() {
        let c = catalog();
        let q = parse_query("EXPLAIN SELECT v FROM t WHERE ts > 0 ORDER BY v LIMIT 2").unwrap();
        let t = execute(&c, &q).unwrap();
        assert_eq!(t.schema().columns(), &["plan"]);
        let text: Vec<String> = t.rows().iter().map(|r| r[0].render()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("Limit 2"), "plan:\n{joined}");
        assert!(joined.contains("Sort"), "plan:\n{joined}");
        assert!(joined.contains("Filter"), "plan:\n{joined}");
        assert!(joined.contains("Scan t"), "plan:\n{joined}");
    }

    #[test]
    fn empty_global_aggregate_returns_empty_table() {
        let t = run("SELECT COUNT(*) AS n FROM t WHERE ts > 100");
        assert_eq!(t.len(), 0);
        // Ditto under forced partitions.
        let t = run_parallel("SELECT COUNT(*) AS n FROM t WHERE ts > 100", 3);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn point_balanced_spans_tile_and_split_hot_series() {
        // One series holds ~99% of the points: series-count morsels would
        // hand almost everything to one worker; point-balanced spans cut
        // the hot series itself.
        let counts = [1000usize, 5, 5, 5];
        let morsels = point_balanced_spans(&counts, 4);
        assert_eq!(morsels.len(), 4);
        let hot_morsels =
            morsels.iter().filter(|spans| spans.iter().any(|&(s, _, _)| s == 0)).count();
        assert!(hot_morsels > 1, "hot series split across morsels: {morsels:?}");
        // Spans tile the point sequence exactly, in order, per series.
        let mut seen: Vec<Vec<(usize, usize)>> = vec![Vec::new(); counts.len()];
        for spans in &morsels {
            for &(s, lo, hi) in spans {
                assert!(lo < hi);
                seen[s].push((lo, hi));
            }
        }
        for (s, ranges) in seen.iter().enumerate() {
            let mut expect = 0;
            for &(lo, hi) in ranges {
                assert_eq!(lo, expect, "series {s} contiguous");
                expect = hi;
            }
            assert_eq!(expect, counts[s], "series {s} fully covered");
        }
        // Degenerate shapes: empty series, one partition, more partitions
        // than points.
        assert_eq!(point_balanced_spans(&[0, 3, 0], 1), vec![vec![(1, 0, 3)]]);
        let tiny = point_balanced_spans(&[1, 1], 8);
        assert_eq!(tiny.iter().flatten().count(), 2);
    }

    fn tsdb_catalog() -> Catalog {
        use explainit_tsdb::{SeriesKey, Tsdb};
        let mut db = Tsdb::new();
        for (host, off) in [("b-host", 0i64), ("a-host", 1), ("c-host", 2)] {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 0..40 {
                db.insert(&key, t * 3 + off % 2, (t + off) as f64);
            }
        }
        db.insert(&SeriesKey::new("edge"), i64::MAX, 42.0);
        db.insert(&SeriesKey::new("edge"), i64::MIN, -42.0);
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db);
        c
    }

    #[test]
    fn merge_gather_matches_stable_sort_reference() {
        let c = tsdb_catalog();
        for sql in [
            "SELECT * FROM tsdb",
            "SELECT timestamp, value FROM tsdb WHERE metric_name = 'cpu'",
            "SELECT timestamp, tag['host'] AS h, value FROM tsdb WHERE timestamp >= 5",
            "SELECT timestamp FROM tsdb WHERE metric_name = 'nope'",
        ] {
            let q = parse_query(sql).unwrap();
            let merged =
                execute_with(&c, &q, ExecOptions { merge_gather: true, ..ExecOptions::default() })
                    .unwrap();
            let sorted =
                execute_with(&c, &q, ExecOptions { merge_gather: false, ..ExecOptions::default() })
                    .unwrap();
            assert_eq!(merged.schema(), sorted.schema(), "{sql}");
            assert_eq!(merged.rows(), sorted.rows(), "{sql}");
        }
    }

    #[test]
    fn unbounded_scans_return_i64_extreme_points() {
        let c = tsdb_catalog();
        // Regression: the old half-open conversion (`end.saturating_add(1)`)
        // silently dropped the `timestamp == i64::MAX` observation from
        // unbounded and `timestamp >= x` scans.
        let t = c.execute("SELECT value FROM tsdb WHERE metric_name = 'edge'").unwrap();
        assert_eq!(t.len(), 2);
        let sql = format!("SELECT value FROM tsdb WHERE timestamp >= {}", i64::MAX);
        let t = c.execute(&sql).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Float(42.0));
        // The scan-aggregate path honours the same bound.
        let sql = format!(
            "SELECT COUNT(*) AS n FROM tsdb WHERE metric_name = 'edge' AND timestamp >= {}",
            i64::MAX
        );
        let t = c.execute(&sql).unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(1));
        // Unsatisfiable strict bounds at the extremes stay empty instead of
        // saturating back onto the extreme point.
        let sql = format!("SELECT value FROM tsdb WHERE timestamp > {}", i64::MAX);
        assert_eq!(c.execute(&sql).unwrap().len(), 0);
        // i64::MIN has no direct literal (the lexer sees `-` as unary
        // minus); the constant folder reduces the subtraction to it.
        let sql = format!("SELECT value FROM tsdb WHERE timestamp < {} - 1", i64::MIN + 1);
        assert_eq!(c.execute(&sql).unwrap().len(), 0);
    }

    #[test]
    fn hash_join_output_is_identical_across_build_sides() {
        let c = catalog();
        let left = c.get("t").unwrap().as_ref().clone();
        let right = c.get("u").unwrap().as_ref().clone();
        let on = crate::ast::Expr::Binary {
            op: crate::ast::BinaryOp::Eq,
            left: Box::new(crate::ast::Expr::col("t.ts")),
            right: Box::new(crate::ast::Expr::col("u.ts")),
        };
        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::FullOuter] {
            let ql = left.clone().with_schema(left.schema().qualified("t"));
            let qr = right.clone().with_schema(right.schema().qualified("u"));
            let a = run_join(ql.clone(), qr.clone(), kind, &on, false).unwrap();
            let b = run_join(ql, qr, kind, &on, true).unwrap();
            assert_eq!(a.schema(), b.schema(), "{kind:?}");
            assert_eq!(a.rows(), b.rows(), "build side must not change output ({kind:?})");
        }
    }

    #[test]
    fn full_outer_join_row_order_is_deterministic() {
        // Ten runs of the same FULL OUTER join must produce byte-identical
        // row orders (matches in (left, right) order, unmatched right rows
        // appended in right order) — no HashMap iteration order leaks.
        let sql = "SELECT t.ts, u.ts, v, w FROM t FULL OUTER JOIN u ON t.ts = u.ts";
        let first = run(sql);
        for _ in 0..9 {
            assert_eq!(run(sql).rows(), first.rows());
        }
    }

    #[test]
    fn outer_join_null_padding_keeps_int_identity() {
        // ts=1 rows of t have no u match: u.ts pads with NULL while the
        // matched entries stay Value::Int — never floats or strings.
        let t = run("SELECT t.ts, u.ts FROM t LEFT JOIN u ON t.ts = u.ts ORDER BY t.ts");
        for row in t.rows() {
            assert!(matches!(row[0], Value::Int(_)), "left key typed: {row:?}");
            assert!(
                matches!(row[1], Value::Int(_) | Value::Null),
                "padded column keeps Int identity: {row:?}"
            );
        }
        assert!(t.rows().iter().any(|r| r[1].is_null()), "padding occurred");
    }
}
