//! Typed minicolumn kernels: the branch-free inner loops of the columnar
//! engine.
//!
//! A *minicolumn* is a typed slice (`&[i64]` / `&[f64]`) plus an optional
//! **validity bitmap** (one bit per row, set = non-NULL). A *selection
//! vector* is a `Vec<u32>` of surviving row ids in ascending order. Every
//! kernel here either **refines** a selection in place (comparison,
//! BETWEEN, IS NULL — SQL `is_true` semantics: NULL and false drop the
//! row) or **maps** slices to a new typed vector (arithmetic).
//!
//! The refinement loops use the branch-free selection-append idiom
//! (unconditionally store the row id, advance the cursor by the predicate
//! bit) and the map loops process `chunks_exact` blocks of eight lanes, so
//! rustc/LLVM auto-vectorizes them on stable — `std::simd` was evaluated
//! for a feature gate but is nightly-only on the pinned toolchain
//! (1.95 stable), so the portable-SIMD variant is deferred.
//!
//! **Exactness contract.** Every kernel reproduces the scalar semantics in
//! [`crate::eval`] / [`Value::sql_cmp`] bit-for-bit:
//!
//! * `i64` vs `f64` comparisons are exact — the float constant is
//!   *compiled once* into an integer threshold test ([`compile_i64_cmp`]),
//!   never by rounding the column through `as f64` (values above 2^53
//!   would silently collapse);
//! * NaN comparisons are SQL-unknown: the row drops for every operator,
//!   including `!=`;
//! * Int arithmetic is checked — per-element overflow promotes that
//!   element to an exact-via-`i128` Float, matching `eval_binary` (and
//!   `AggAcc` SUM's promotion rule).

use crate::value::Value;

/// Comparison operators the typed kernels lower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

// ---------------------------------------------------------------------------
// Validity bitmaps
// ---------------------------------------------------------------------------

/// True when row `i` is valid (non-NULL). `None` means all-valid.
#[inline(always)]
pub fn is_valid(validity: Option<&[u64]>, i: usize) -> bool {
    match validity {
        None => true,
        Some(bits) => bits[i >> 6] >> (i & 63) & 1 == 1,
    }
}

/// A typed minicolumn extracted from boxed values: homogeneous numeric
/// data with NULLs carried out-of-band in a validity bitmap. Mixed
/// Int/Float runs deliberately do **not** extract — a shared `f64` view
/// would round i64 values above 2^53 and break the exact mixed-comparison
/// contract.
pub enum Mini {
    /// Int-or-NULL values (invalid slots hold 0).
    I64(Vec<i64>, Option<Vec<u64>>),
    /// Float-or-NULL values (invalid slots hold 0.0).
    F64(Vec<f64>, Option<Vec<u64>>),
}

/// Extracts a [`Mini`] from a boxed value run when it is homogeneous
/// Int(+NULL) or Float(+NULL); anything mixed returns `None`.
pub fn mini_from_values(vs: &[Value]) -> Option<Mini> {
    let mut ints = 0usize;
    let mut floats = 0usize;
    let mut nulls = 0usize;
    for v in vs {
        match v {
            Value::Int(_) => ints += 1,
            Value::Float(_) => floats += 1,
            Value::Null => nulls += 1,
            _ => return None,
        }
    }
    let validity = |nulls: usize| -> Option<Vec<u64>> {
        (nulls > 0).then(|| {
            let mut bits = vec![0u64; vs.len().div_ceil(64)];
            for (i, v) in vs.iter().enumerate() {
                if !v.is_null() {
                    bits[i >> 6] |= 1 << (i & 63);
                }
            }
            bits
        })
    };
    if floats == 0 && ints + nulls == vs.len() {
        let vals = vs.iter().map(|v| if let Value::Int(i) = v { *i } else { 0 }).collect();
        Some(Mini::I64(vals, validity(nulls)))
    } else if ints == 0 && floats + nulls == vs.len() {
        let vals = vs.iter().map(|v| if let Value::Float(f) = v { *f } else { 0.0 }).collect();
        Some(Mini::F64(vals, validity(nulls)))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Selection refinement: comparisons
// ---------------------------------------------------------------------------

/// Branch-free in-place refinement: keeps `sel[j]` iff `test(row)` (rows
/// failing the predicate — or invalid rows — drop, which is exactly SQL
/// `is_true` over the three-valued comparison result).
#[inline]
fn refine_by(sel: &mut Vec<u32>, validity: Option<&[u64]>, test: impl Fn(usize) -> bool) {
    let mut n = 0usize;
    match validity {
        None => {
            for j in 0..sel.len() {
                let i = sel[j];
                sel[n] = i;
                n += usize::from(test(i as usize));
            }
        }
        Some(bits) => {
            for j in 0..sel.len() {
                let i = sel[j];
                sel[n] = i;
                n += usize::from(is_valid(Some(bits), i as usize) && test(i as usize));
            }
        }
    }
    sel.truncate(n);
}

/// `vals[i] <op> k` over `f64`. NaN on either side is SQL-unknown and
/// drops the row for every operator (including `Ne`).
pub fn refine_f64_cmp(
    op: CmpOp,
    vals: &[f64],
    validity: Option<&[u64]>,
    k: f64,
    sel: &mut Vec<u32>,
) {
    if k.is_nan() {
        sel.clear();
        return;
    }
    match op {
        CmpOp::Eq => refine_by(sel, validity, |i| vals[i] == k),
        // `x != x` is the NaN test: unknown, not true.
        CmpOp::Ne => refine_by(sel, validity, |i| vals[i] != k && !vals[i].is_nan()),
        CmpOp::Lt => refine_by(sel, validity, |i| vals[i] < k),
        CmpOp::Le => refine_by(sel, validity, |i| vals[i] <= k),
        CmpOp::Gt => refine_by(sel, validity, |i| vals[i] > k),
        CmpOp::Ge => refine_by(sel, validity, |i| vals[i] >= k),
    }
}

/// A compiled `i64`-column comparison: the per-element test after the
/// constant side has been classified once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I64Test {
    /// No row matches (e.g. `= 1.5`, or any comparison against NaN).
    Never,
    /// Every row matches (e.g. `!= 1.5` over integers).
    Always,
    /// `x < t`
    Lt(i64),
    /// `x <= t`
    Le(i64),
    /// `x > t`
    Gt(i64),
    /// `x >= t`
    Ge(i64),
    /// `x == t`
    Eq(i64),
    /// `x != t`
    Ne(i64),
}

/// Compiles `x <op> k` (Int column vs Int constant) to a threshold test.
pub fn compile_i64_cmp_int(op: CmpOp, k: i64) -> I64Test {
    match op {
        CmpOp::Eq => I64Test::Eq(k),
        CmpOp::Ne => I64Test::Ne(k),
        CmpOp::Lt => I64Test::Lt(k),
        CmpOp::Le => I64Test::Le(k),
        CmpOp::Gt => I64Test::Gt(k),
        CmpOp::Ge => I64Test::Ge(k),
    }
}

/// Compiles `x <op> k` (Int column vs Float constant) to an **exact**
/// integer threshold test — equivalent to [`crate::value::cmp_i64_f64`]
/// per element, with the float classified once instead of per row:
///
/// * NaN → unknown for every row → `Never`;
/// * `k ≥ 2^63` → every `x < k`; `k < −2^63` → every `x > k`;
/// * otherwise `k` splits the integers at `t = trunc(k)` with the
///   fractional part deciding which side `t` itself falls on.
pub fn compile_i64_cmp(op: CmpOp, k: f64) -> I64Test {
    if k.is_nan() {
        return I64Test::Never;
    }
    const TWO63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exactly representable
    if k >= TWO63 {
        // Every i64 is strictly below k.
        return match op {
            CmpOp::Lt | CmpOp::Le | CmpOp::Ne => I64Test::Always,
            CmpOp::Gt | CmpOp::Ge | CmpOp::Eq => I64Test::Never,
        };
    }
    if k < -TWO63 {
        // Every i64 is strictly above k.
        return match op {
            CmpOp::Gt | CmpOp::Ge | CmpOp::Ne => I64Test::Always,
            CmpOp::Lt | CmpOp::Le | CmpOp::Eq => I64Test::Never,
        };
    }
    let t = k.trunc();
    let ti = t as i64; // exact: t ∈ [−2^63, 2^63)
    if k == t {
        return compile_i64_cmp_int(op, ti);
    }
    if k > t {
        // k ∈ (ti, ti+1): x < k ⇔ x ≤ ti, x > k ⇔ x > ti, x = k never.
        match op {
            CmpOp::Eq => I64Test::Never,
            CmpOp::Ne => I64Test::Always,
            CmpOp::Lt | CmpOp::Le => I64Test::Le(ti),
            CmpOp::Gt | CmpOp::Ge => I64Test::Gt(ti),
        }
    } else {
        // k ∈ (ti−1, ti): x < k ⇔ x < ti, x > k ⇔ x ≥ ti.
        match op {
            CmpOp::Eq => I64Test::Never,
            CmpOp::Ne => I64Test::Always,
            CmpOp::Lt | CmpOp::Le => I64Test::Lt(ti),
            CmpOp::Gt | CmpOp::Ge => I64Test::Ge(ti),
        }
    }
}

/// Refines a selection by a compiled `i64` test.
pub fn refine_i64_test(test: I64Test, vals: &[i64], validity: Option<&[u64]>, sel: &mut Vec<u32>) {
    match test {
        I64Test::Never => sel.clear(),
        I64Test::Always => {
            if let Some(bits) = validity {
                refine_by(sel, Some(bits), |_| true);
            }
        }
        I64Test::Lt(t) => refine_by(sel, validity, |i| vals[i] < t),
        I64Test::Le(t) => refine_by(sel, validity, |i| vals[i] <= t),
        I64Test::Gt(t) => refine_by(sel, validity, |i| vals[i] > t),
        I64Test::Ge(t) => refine_by(sel, validity, |i| vals[i] >= t),
        I64Test::Eq(t) => refine_by(sel, validity, |i| vals[i] == t),
        I64Test::Ne(t) => refine_by(sel, validity, |i| vals[i] != t),
    }
}

// ---------------------------------------------------------------------------
// Selection refinement: BETWEEN and IS NULL
// ---------------------------------------------------------------------------

/// `vals[i] BETWEEN lo AND hi` (optionally negated) over `i64` with exact
/// mixed-type bounds: each bound is compiled with [`compile_i64_cmp`] /
/// [`compile_i64_cmp_int`] so Float bounds never round the column. A NaN
/// bound makes the whole predicate unknown (row drops, negated or not).
pub fn refine_i64_between(
    vals: &[i64],
    validity: Option<&[u64]>,
    lo: &Value,
    hi: &Value,
    negated: bool,
    sel: &mut Vec<u32>,
) {
    let compile = |op: CmpOp, bound: &Value| match bound {
        Value::Int(b) => Some(compile_i64_cmp_int(op, *b)),
        Value::Float(b) if !b.is_nan() => Some(compile_i64_cmp(op, *b)),
        _ => None,
    };
    let (Some(ge_lo), Some(le_hi)) = (compile(CmpOp::Ge, lo), compile(CmpOp::Le, hi)) else {
        sel.clear(); // NaN bound: comparison unknown for every row
        return;
    };
    let check = |t: I64Test, x: i64| match t {
        I64Test::Never => false,
        I64Test::Always => true,
        I64Test::Lt(v) => x < v,
        I64Test::Le(v) => x <= v,
        I64Test::Gt(v) => x > v,
        I64Test::Ge(v) => x >= v,
        I64Test::Eq(v) => x == v,
        I64Test::Ne(v) => x != v,
    };
    refine_by(sel, validity, |i| (check(ge_lo, vals[i]) && check(le_hi, vals[i])) != negated);
}

/// `vals[i] BETWEEN lo AND hi` (optionally negated) over `f64`. A NaN
/// element or bound is unknown and drops the row either way.
pub fn refine_f64_between(
    vals: &[f64],
    validity: Option<&[u64]>,
    lo: f64,
    hi: f64,
    negated: bool,
    sel: &mut Vec<u32>,
) {
    if lo.is_nan() || hi.is_nan() {
        sel.clear();
        return;
    }
    refine_by(sel, validity, |i| {
        let x = vals[i];
        !x.is_nan() && ((x >= lo && x <= hi) != negated)
    });
}

/// `IS [NOT] NULL` over a minicolumn: validity *is* the answer.
pub fn refine_is_null(validity: Option<&[u64]>, negated: bool, sel: &mut Vec<u32>) {
    match validity {
        // Typed columns without a bitmap never contain NULLs.
        None => {
            if !negated {
                sel.clear();
            }
        }
        Some(bits) => {
            let mut n = 0usize;
            for j in 0..sel.len() {
                let i = sel[j];
                sel[n] = i;
                n += usize::from(is_valid(Some(bits), i as usize) == negated);
            }
            sel.truncate(n);
        }
    }
}

// ---------------------------------------------------------------------------
// Arithmetic map kernels
// ---------------------------------------------------------------------------

/// Arithmetic ops with dense kernels (Div/Mod stay on the generic path:
/// their zero-divisor → NULL rule produces mixed output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

/// `a[i] <op> k` over `f64`, written as eight-lane `chunks_exact` blocks
/// the compiler turns into vector code.
pub fn f64_arith_const(op: ArithOp, a: &[f64], k: f64, swapped: bool) -> Vec<f64> {
    let mut out = vec![0.0f64; a.len()];
    let apply = |x: f64| -> f64 {
        let (l, r) = if swapped { (k, x) } else { (x, k) };
        match op {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
        }
    };
    let mut oc = out.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    for (o, x) in (&mut oc).zip(&mut ac) {
        for lane in 0..8 {
            o[lane] = apply(x[lane]);
        }
    }
    for (o, &x) in oc.into_remainder().iter_mut().zip(ac.remainder()) {
        *o = apply(x);
    }
    out
}

/// `a[i] <op> b[i]` over `f64`, eight lanes per block.
pub fn f64_arith_cols(op: ArithOp, a: &[f64], b: &[f64]) -> Vec<f64> {
    let n = a.len().min(b.len());
    let mut out = vec![0.0f64; n];
    let apply = |x: f64, y: f64| -> f64 {
        match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
        }
    };
    let mut oc = out.chunks_exact_mut(8);
    let mut ac = a[..n].chunks_exact(8);
    let mut bc = b[..n].chunks_exact(8);
    for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        for lane in 0..8 {
            o[lane] = apply(x[lane], y[lane]);
        }
    }
    for ((o, &x), &y) in oc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *o = apply(x, y);
    }
    out
}

/// Result of a checked Int arithmetic kernel.
pub enum IntArith {
    /// No element overflowed: a pure Int column.
    Ints(Vec<i64>),
    /// At least one element overflowed i64 and promoted to an exact-via-
    /// i128 Float; the rest stay Int (per-element promotion, matching the
    /// scalar evaluator).
    Mixed(Vec<Value>),
}

#[inline(always)]
fn i64_apply(op: ArithOp, x: i64, y: i64) -> (i64, bool) {
    match op {
        ArithOp::Add => x.overflowing_add(y),
        ArithOp::Sub => x.overflowing_sub(y),
        ArithOp::Mul => x.overflowing_mul(y),
    }
}

#[inline(always)]
fn i128_apply(op: ArithOp, x: i64, y: i64) -> i128 {
    // i64 inputs can never overflow i128 under +, −, ×.
    let (x, y) = (i128::from(x), i128::from(y));
    match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
    }
}

fn i64_arith_redo(op: ArithOp, n: usize, at: impl Fn(usize) -> (i64, i64)) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let (x, y) = at(i);
            let (v, over) = i64_apply(op, x, y);
            if over {
                Value::Float(i128_apply(op, x, y) as f64) // lint: allow as f64 — deliberate widening: i128 overflow promotes to float
            } else {
                Value::Int(v)
            }
        })
        .collect()
}

/// `a[i] <op> k` over `i64`: one optimistic overflowing pass with an OR'd
/// overflow flag; a slow exact redo only when something overflowed.
pub fn i64_arith_const(op: ArithOp, a: &[i64], k: i64, swapped: bool) -> IntArith {
    let mut out = vec![0i64; a.len()];
    let mut over = false;
    let pair = |x: i64| if swapped { (k, x) } else { (x, k) };
    for (o, &x) in out.iter_mut().zip(a) {
        let (l, r) = pair(x);
        let (v, o_bit) = i64_apply(op, l, r);
        *o = v;
        over |= o_bit;
    }
    if !over {
        return IntArith::Ints(out);
    }
    IntArith::Mixed(i64_arith_redo(op, a.len(), |i| pair(a[i])))
}

/// `a[i] <op> b[i]` over `i64`, same optimistic-then-redo shape.
pub fn i64_arith_cols(op: ArithOp, a: &[i64], b: &[i64]) -> IntArith {
    let n = a.len().min(b.len());
    let mut out = vec![0i64; n];
    let mut over = false;
    for i in 0..n {
        let (v, o_bit) = i64_apply(op, a[i], b[i]);
        out[i] = v;
        over |= o_bit;
    }
    if !over {
        return IntArith::Ints(out);
    }
    IntArith::Mixed(i64_arith_redo(op, n, |i| (a[i], b[i])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::cmp_i64_f64;
    use std::cmp::Ordering;

    fn sel(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn compiled_i64_cmp_matches_exact_scalar_cmp() {
        // Every compiled test must agree with cmp_i64_f64 on tricky values.
        let xs: Vec<i64> = vec![
            i64::MIN,
            i64::MIN + 1,
            -(1 << 53) - 1,
            -(1 << 53),
            -1,
            0,
            1,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1,
            i64::MAX - 1,
            i64::MAX,
        ];
        let ks: Vec<f64> = vec![
            f64::NAN,
            f64::NEG_INFINITY,
            f64::INFINITY,
            -9.3e18,
            9.3e18,
            9_223_372_036_854_775_808.0,
            -9_223_372_036_854_775_808.0,
            9007199254740992.0, // 2^53
            9007199254740993.0, // rounds to 2^53
            0.5,
            -0.5,
            0.0,
            1.0,
            (1i64 << 53) as f64 + 2.0,
        ];
        for &k in &ks {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let test = compile_i64_cmp(op, k);
                for &x in &xs {
                    let want = match cmp_i64_f64(x, k) {
                        None => false, // unknown → row drops
                        Some(ord) => match op {
                            CmpOp::Eq => ord == Ordering::Equal,
                            CmpOp::Ne => ord != Ordering::Equal,
                            CmpOp::Lt => ord == Ordering::Less,
                            CmpOp::Le => ord != Ordering::Greater,
                            CmpOp::Gt => ord == Ordering::Greater,
                            CmpOp::Ge => ord != Ordering::Less,
                        },
                    };
                    let mut s = vec![0u32];
                    refine_i64_test(test, &[x], None, &mut s);
                    assert_eq!(!s.is_empty(), want, "x={x} {op:?} k={k} compiled={test:?}");
                }
            }
        }
    }

    #[test]
    fn f64_cmp_drops_nan_rows_for_every_operator() {
        let vals = [1.0, f64::NAN, 3.0];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let mut s = sel(3);
            refine_f64_cmp(op, &vals, None, 2.0, &mut s);
            assert!(!s.contains(&1), "NaN row survived {op:?}");
        }
        // NaN constant: unknown for every row.
        let mut s = sel(3);
        refine_f64_cmp(CmpOp::Ne, &vals, None, f64::NAN, &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn validity_drops_null_rows() {
        let vals = [5i64, 6, 7, 8];
        let bits = vec![0b1010u64]; // rows 1 and 3 valid
        let mut s = sel(4);
        refine_i64_test(I64Test::Ge(0), &vals, Some(&bits), &mut s);
        assert_eq!(s, vec![1, 3]);
        let mut s = sel(4);
        refine_is_null(Some(&bits), false, &mut s);
        assert_eq!(s, vec![0, 2]);
        let mut s = sel(4);
        refine_is_null(Some(&bits), true, &mut s);
        assert_eq!(s, vec![1, 3]);
    }

    #[test]
    fn between_exact_bounds() {
        let vals = [(1i64 << 53), (1 << 53) + 1, (1 << 53) + 2];
        // Float bound (2^53 + 2) is exactly representable; (2^53)+1 must
        // stay inside [2^53, 2^53+2] even though it rounds to 2^53 as f64.
        let mut s = sel(3);
        refine_i64_between(
            &vals,
            None,
            &Value::Int(1 << 53),
            &Value::Float(((1i64 << 53) + 2) as f64),
            false,
            &mut s,
        );
        assert_eq!(s, vec![0, 1, 2]);
        let mut s = sel(3);
        refine_i64_between(
            &vals,
            None,
            &Value::Int((1 << 53) + 1),
            &Value::Int((1 << 53) + 1),
            false,
            &mut s,
        );
        assert_eq!(s, vec![1]);
        // NaN bound: unknown, drops everything even when negated.
        let mut s = sel(3);
        refine_i64_between(&vals, None, &Value::Float(f64::NAN), &Value::Int(9), true, &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn int_arith_promotes_overflow_per_element() {
        match i64_arith_const(ArithOp::Add, &[1, i64::MAX, 2], 1, false) {
            IntArith::Mixed(vs) => {
                assert_eq!(vs[0], Value::Int(2));
                assert_eq!(vs[1], Value::Float((i128::from(i64::MAX) + 1) as f64));
                assert_eq!(vs[2], Value::Int(3));
            }
            IntArith::Ints(_) => panic!("overflow must promote"),
        }
        match i64_arith_const(ArithOp::Mul, &[3, 4], 5, false) {
            IntArith::Ints(vs) => assert_eq!(vs, vec![15, 20]),
            IntArith::Mixed(_) => panic!("no overflow"),
        }
        // Swapped (constant on the left) subtraction.
        match i64_arith_const(ArithOp::Sub, &[1, 2], 10, true) {
            IntArith::Ints(vs) => assert_eq!(vs, vec![9, 8]),
            IntArith::Mixed(_) => panic!("no overflow"),
        }
    }

    #[test]
    fn mini_extraction_rejects_mixed_numerics() {
        assert!(mini_from_values(&[Value::Int(1), Value::Float(2.0)]).is_none());
        assert!(mini_from_values(&[Value::Int(1), Value::str("x")]).is_none());
        match mini_from_values(&[Value::Int(1), Value::Null, Value::Int(3)]) {
            Some(Mini::I64(vals, Some(bits))) => {
                assert_eq!(vals, vec![1, 0, 3]);
                assert!(is_valid(Some(&bits), 0));
                assert!(!is_valid(Some(&bits), 1));
                assert!(is_valid(Some(&bits), 2));
            }
            _ => panic!("expected nullable I64 mini"),
        }
        match mini_from_values(&[Value::Float(1.5)]) {
            Some(Mini::F64(vals, None)) => assert_eq!(vals, vec![1.5]),
            _ => panic!("expected dense F64 mini"),
        }
    }

    #[test]
    fn f64_arith_chunks_match_scalar() {
        let a: Vec<f64> = (0..21).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..21).map(|i| 10.0 - i as f64).collect();
        let out = f64_arith_cols(ArithOp::Mul, &a, &b);
        for i in 0..21 {
            assert_eq!(out[i], a[i] * b[i]);
        }
        let out = f64_arith_const(ArithOp::Sub, &a, 2.0, true); // 2.0 - a[i]
        for i in 0..21 {
            assert_eq!(out[i], 2.0 - a[i]);
        }
    }
}
