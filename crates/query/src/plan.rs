//! The logical plan layer: SELECT statements lowered to an operator tree.
//!
//! [`build`] translates a parsed [`Query`] into a [`LogicalPlan`]:
//!
//! ```text
//! Union
//!   Limit
//!     Sort
//!       Project | Aggregate        (with hidden ORDER BY key columns)
//!         Filter                   (WHERE)
//!           Join*                  (hash or nested loop, chosen at exec)
//!             Alias                (join-scope qualification)
//!               Scan | Unit | <subquery plan>
//! ```
//!
//! The tree is what [`crate::optimize`] rewrites (predicate pushdown,
//! projection pruning, constant folding, TSDB scan extraction) and what the
//! columnar executor in [`crate::exec`] runs. [`render`] pretty-prints a
//! plan for `EXPLAIN`.

use explainit_tsdb::TagFilter;

use crate::ast::{BinaryOp, Expr, JoinKind, Query, SelectItem, SelectStmt, TableRef};
use crate::catalog::Catalog;
use crate::table::Schema;
use crate::{QueryError, Result};

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: a named catalog table.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// Leaf: an index-assisted scan of a TSDB-bound virtual table with
    /// pushed-down predicates. Produced by the optimizer — the planner only
    /// emits [`LogicalPlan::Scan`].
    TsdbScan {
        /// Catalog name the TSDB is bound under.
        table: String,
        /// Pushed-down exact metric-name equality.
        name: Option<String>,
        /// Pushed-down tag predicates (conjunctive).
        tags: Vec<TagFilter>,
        /// Inclusive lower timestamp bound.
        start: Option<i64>,
        /// Inclusive upper timestamp bound.
        end: Option<i64>,
        /// Column pruning: indices into the observation schema
        /// `[timestamp, metric_name, tag, value]`; `None` keeps all.
        columns: Option<Vec<usize>>,
    },
    /// One empty row, zero columns (`SELECT 1`-style constant queries).
    Unit,
    /// Qualifies every column of the input with `alias.` (join scoping).
    Alias {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The qualifier.
        alias: String,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Kept rows satisfy this predicate.
        predicate: Expr,
    },
    /// Scalar projection (may contain window functions).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
        /// Extra ORDER BY key expressions evaluated against the *input*
        /// scope, appended as hidden columns for the enclosing Sort.
        hidden: Vec<Expr>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// GROUP BY key expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// `(expression, output name)` pairs; expressions may mix
        /// aggregates with scalars.
        items: Vec<(Expr, String)>,
        /// Hidden ORDER BY keys evaluated per group.
        hidden: Vec<Expr>,
    },
    /// Join of two plans.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// INNER / LEFT / FULL OUTER.
        kind: JoinKind,
        /// The ON predicate.
        on: Expr,
        /// Cardinality statistics attached by the optimizer (rule 7). The
        /// executor builds the hash side on the estimated-smaller input;
        /// `None` (un-optimized plans) keeps the legacy build-on-right.
        stats: Option<JoinStats>,
    },
    /// Sorts by key columns of the (extended) child output.
    Sort {
        /// Input plan — always a Project or Aggregate carrying the hidden
        /// key columns this node references.
        input: Box<LogicalPlan>,
        /// `(extended column index, ascending)` sort keys.
        keys: Vec<(usize, bool)>,
        /// Number of visible output columns (hidden keys are dropped after
        /// the sort).
        output_width: usize,
    },
    /// Keeps the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
    /// Bag union of compatible inputs (with Int/Float column coercion).
    Union {
        /// Unioned plans, in order; the first defines the output names.
        inputs: Vec<LogicalPlan>,
    },
    /// Partition-parallel execution marker, inserted by the optimizer
    /// around a pipeline the executor may run morsel-parallel: an
    /// `Aggregate` (two-phase: per-partition partial accumulators, then an
    /// order-preserving merge exchange) or a `Project`, in both cases with
    /// any directly nested `Filter`s evaluated per partition. The wrapped
    /// plan is also a valid serial plan; partition count is an execution
    /// option, so `Exchange` never changes results, only scheduling.
    Exchange {
        /// The pipeline to parallelize.
        input: Box<LogicalPlan>,
    },
    /// Aggregation pushed *into* the scan: produced by the optimizer when
    /// an `Aggregate` (optionally under `Exchange`, above pushed-down
    /// vectorizable `Filter`s) sits directly on a [`LogicalPlan::TsdbScan`]
    /// and every group key is the `timestamp` column or an expression over
    /// the dictionary-encoded scan columns (`metric_name`, `tag`). The
    /// executor pre-aggregates each series' sorted point vectors straight
    /// off [`explainit_tsdb::Tsdb::scan_parts_ordered`] into mergeable
    /// accumulators, grouping on `(dict class, timestamp)` composite keys —
    /// no row materialization and no per-row key-string rendering — and
    /// merges per-series partials deterministically, so results stay
    /// bit-exact with the serial and reference engines.
    ScanAggregate {
        /// Catalog name the TSDB is bound under.
        table: String,
        /// Pushed-down metric-name pattern (exact or glob).
        name: Option<String>,
        /// Pushed-down tag predicates (conjunctive).
        tags: Vec<TagFilter>,
        /// Inclusive lower timestamp bound.
        start: Option<i64>,
        /// Inclusive upper timestamp bound.
        end: Option<i64>,
        /// Residual predicates (outermost first) the scan could not
        /// absorb; evaluated per series / per point before aggregation.
        filters: Vec<Expr>,
        /// GROUP BY key expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// `(expression, output name)` pairs: group keys or plain
        /// aggregate calls (the eligibility analysis guarantees this).
        items: Vec<(Expr, String)>,
        /// Hidden ORDER BY keys, same shape restrictions as `items`.
        hidden: Vec<Expr>,
    },
}

/// The observation schema of a TSDB-bound table.
pub const TSDB_COLUMNS: [&str; 4] = ["timestamp", "metric_name", "tag", "value"];

/// Cardinality statistics the optimizer attaches to a [`LogicalPlan::Join`]:
/// per-side row estimates (from [`estimate_rows`]) and the hash-join build
/// side they imply. Statistics never change results — the executor emits
/// the same rows in the same order whichever side it builds on — so a
/// wrong estimate costs memory, not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// Estimated left-input rows.
    pub left_rows: u64,
    /// Estimated right-input rows.
    pub right_rows: u64,
    /// True when the hash index should be built over the *left* input
    /// (the estimated-smaller side); false keeps the legacy build-on-right.
    pub build_left: bool,
}

/// Estimated output row count of a plan, from catalog metadata only —
/// exact lengths for registered in-memory tables, tag-index set sizes and
/// point-count/time-span arithmetic for TSDB scans
/// ([`explainit_tsdb::Tsdb::estimate_points`]), and documented heuristics
/// for the relational operators above them (filters keep ~1/3 of their
/// input, aggregates produce ~sqrt(input) groups). Returns `None` when a
/// referenced table is unknown. Nothing is ever scanned or materialized.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> Option<u64> {
    match plan {
        LogicalPlan::Scan { table } => {
            if catalog.is_tsdb(table) {
                let binding = catalog.tsdb_binding(table)?;
                Some(binding.db().point_count() as u64)
            } else {
                Some(catalog.get(table)?.len() as u64)
            }
        }
        LogicalPlan::TsdbScan { table, name, tags, start, end, .. } => {
            let binding = catalog.tsdb_binding(table)?;
            let filter = explainit_tsdb::MetricFilter { name: name.clone(), tags: tags.clone() };
            let lo = start.unwrap_or(i64::MIN);
            let hi = end.unwrap_or(i64::MAX);
            Some(binding.db().estimate_points(&filter, lo, hi))
        }
        LogicalPlan::Unit => Some(1),
        LogicalPlan::Alias { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Exchange { input } => estimate_rows(input, catalog),
        LogicalPlan::Project { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Filter { input, .. } => {
            // Default selectivity heuristic: a WHERE clause keeps ~1/3 of
            // its input (non-zero inputs stay non-zero so join sides with
            // any data never look free). A chain of Filter nodes is one
            // clause the optimizer split per conjunct — charge the
            // selectivity once for the whole chain, not once per node, so
            // how a predicate happens to be split never skews the
            // estimate.
            let mut source = input;
            while let LogicalPlan::Filter { input, .. } = source.as_ref() {
                source = input;
            }
            let input = estimate_rows(source, catalog)?;
            Some(if input == 0 { 0 } else { (input / 3).max(1) })
        }
        LogicalPlan::Aggregate { input, group_by, .. } => {
            let input = estimate_rows(input, catalog)?;
            Some(group_estimate(input, group_by.is_empty()))
        }
        LogicalPlan::ScanAggregate { table, name, tags, start, end, group_by, .. } => {
            let binding = catalog.tsdb_binding(table)?;
            let filter = explainit_tsdb::MetricFilter { name: name.clone(), tags: tags.clone() };
            let lo = start.unwrap_or(i64::MIN);
            let hi = end.unwrap_or(i64::MAX);
            let input = binding.db().estimate_points(&filter, lo, hi);
            Some(group_estimate(input, group_by.is_empty()))
        }
        LogicalPlan::Join { left, right, .. } => {
            // Without key-distinctness statistics, assume the larger side
            // dominates (the classic |L ⋈ R| ~ max(|L|, |R|) bound for
            // foreign-key-shaped joins).
            let l = estimate_rows(left, catalog)?;
            let r = estimate_rows(right, catalog)?;
            Some(l.max(r))
        }
        LogicalPlan::Limit { input, n } => Some(estimate_rows(input, catalog)?.min(*n as u64)),
        LogicalPlan::Union { inputs } => {
            let mut total = 0u64;
            for p in inputs {
                total = total.saturating_add(estimate_rows(p, catalog)?);
            }
            Some(total)
        }
    }
}

/// Distinct-group estimate for an aggregation over `input` rows: one
/// global group without keys, ~sqrt(input) groups with them.
fn group_estimate(input: u64, global: bool) -> u64 {
    if global {
        1
    } else if input == 0 {
        0
    } else {
        ((input as f64).sqrt().ceil() as u64).max(1)
    }
}

impl LogicalPlan {
    /// The visible output schema of this plan.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { table } => {
                catalog.schema_of(table).ok_or_else(|| QueryError::UnknownTable(table.clone()))
            }
            LogicalPlan::TsdbScan { columns, .. } => {
                let names: Vec<String> = match columns {
                    None => TSDB_COLUMNS.iter().map(|s| s.to_string()).collect(),
                    Some(idx) => idx.iter().map(|&i| TSDB_COLUMNS[i].to_string()).collect(),
                };
                Ok(Schema::new(names))
            }
            LogicalPlan::Unit => Ok(Schema::default()),
            LogicalPlan::Alias { input, alias } => Ok(input.schema(catalog)?.qualified(alias)),
            LogicalPlan::Filter { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.schema(catalog)
            }
            LogicalPlan::Project { items, .. }
            | LogicalPlan::Aggregate { items, .. }
            | LogicalPlan::ScanAggregate { items, .. } => {
                Ok(Schema::new(items.iter().map(|(_, n)| n.clone()).collect()))
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut cols = left.schema(catalog)?.columns().to_vec();
                cols.extend(right.schema(catalog)?.columns().iter().cloned());
                Ok(Schema::new(cols))
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Exchange { input } => {
                input.schema(catalog)
            }
            LogicalPlan::Union { inputs } => inputs
                .first()
                .ok_or_else(|| QueryError::Plan("empty UNION".into()))?
                .schema(catalog),
        }
    }
}

/// Lowers a parsed query to a logical plan (no optimization applied).
pub fn build(catalog: &Catalog, query: &Query) -> Result<LogicalPlan> {
    let mut parts = Vec::with_capacity(query.selects.len());
    for select in &query.selects {
        parts.push(build_select(catalog, select)?);
    }
    match parts.len() {
        0 => Err(QueryError::Plan("query has no SELECT".into())),
        1 => Ok(parts.pop().expect("one part")), // invariant: length checked by the match arm
        _ => Ok(LogicalPlan::Union { inputs: parts }),
    }
}

fn table_ref_plan(catalog: &Catalog, tref: &TableRef) -> Result<LogicalPlan> {
    match tref {
        TableRef::Named { name, .. } => Ok(LogicalPlan::Scan { table: name.clone() }),
        TableRef::Subquery { query, .. } => build(catalog, query),
    }
}

fn build_select(catalog: &Catalog, select: &SelectStmt) -> Result<LogicalPlan> {
    // ---- FROM + JOINs ----------------------------------------------------
    let mut plan = match &select.from {
        Some(tref) => {
            let base = table_ref_plan(catalog, tref)?;
            if select.joins.is_empty() {
                base
            } else {
                let scope = tref
                    .scope_name()
                    .ok_or_else(|| QueryError::Plan("subquery in a join needs an alias".into()))?;
                LogicalPlan::Alias { input: Box::new(base), alias: scope.to_string() }
            }
        }
        None => LogicalPlan::Unit,
    };
    for join in &select.joins {
        let right = table_ref_plan(catalog, &join.table)?;
        let scope = join
            .table
            .scope_name()
            .ok_or_else(|| QueryError::Plan("joined subquery needs an alias".into()))?;
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::Alias {
                input: Box::new(right),
                alias: scope.to_string(),
            }),
            kind: join.kind,
            on: join.on.clone(),
            stats: None,
        };
    }

    // ---- WHERE -----------------------------------------------------------
    if let Some(pred) = &select.where_clause {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred.clone() };
    }

    // ---- projection / aggregation ----------------------------------------
    let has_aggregates = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    });
    let grouped = !select.group_by.is_empty() || has_aggregates;

    let mut items: Vec<(Expr, String)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                if grouped {
                    return Err(QueryError::Plan(
                        "SELECT * cannot be combined with GROUP BY".into(),
                    ));
                }
                let input_schema = plan.schema(catalog)?;
                for c in input_schema.columns() {
                    items.push((Expr::Column(c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                items.push((expr.clone(), name));
            }
        }
    }

    // ---- ORDER BY keys ---------------------------------------------------
    // An ORDER BY column that resolves in the output schema sorts on the
    // projected value; anything else becomes a hidden key evaluated against
    // the projection input (per-group for aggregates).
    let out_names = Schema::new(items.iter().map(|(_, n)| n.clone()).collect());
    let mut keys: Vec<(usize, bool)> = Vec::new();
    let mut hidden: Vec<Expr> = Vec::new();
    for ok in &select.order_by {
        let slot = match &ok.expr {
            Expr::Column(name) => out_names.resolve(name).ok(),
            _ => None,
        };
        let idx = match slot {
            Some(i) => i,
            None => {
                hidden.push(ok.expr.clone());
                items.len() + hidden.len() - 1
            }
        };
        keys.push((idx, ok.ascending));
    }
    let output_width = items.len();

    plan = if grouped {
        LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: select.group_by.clone(),
            items,
            hidden,
        }
    } else {
        LogicalPlan::Project { input: Box::new(plan), items, hidden }
    };

    if !keys.is_empty() {
        plan = LogicalPlan::Sort { input: Box::new(plan), keys, output_width };
    }
    if let Some(n) = select.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Shared predicate helpers
// ---------------------------------------------------------------------------

/// Splits an expression on AND into its conjuncts.
pub fn collect_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: BinaryOp::And, left, right } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Joins conjuncts back into one AND expression (`None` when empty).
pub fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| Expr::Binary {
        op: BinaryOp::And,
        left: Box::new(acc),
        right: Box::new(c),
    }))
}

/// Tries to decompose a join ON predicate into `l1 = r1 AND l2 = r2 AND ...`
/// with each side resolving in exactly one input. Returns parallel column
/// index lists on success.
pub fn equi_join_keys(
    on: &Expr,
    left: &Schema,
    right: &Schema,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(on, &mut conjuncts);
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for c in conjuncts {
        match c {
            Expr::Binary { op: BinaryOp::Eq, left: a, right: b } => {
                let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) else {
                    return None;
                };
                let (la, ra) = (left.resolve(ca).ok(), right.resolve(ca).ok());
                let (lb, rb) = (left.resolve(cb).ok(), right.resolve(cb).ok());
                match (la, rb, ra, lb) {
                    // a on the left, b on the right (only unambiguous splits).
                    (Some(l), Some(r), None, None) => {
                        lk.push(l);
                        rk.push(r);
                    }
                    (None, None, Some(r), Some(l)) => {
                        lk.push(l);
                        rk.push(r);
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    if lk.is_empty() {
        None
    } else {
        Some((lk, rk))
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Renders a plan as an indented tree, one node per line.
pub fn render(plan: &LogicalPlan) -> String {
    render_with(plan, None)
}

/// [`render`] with an optional catalog for static refinement annotations:
/// each `Filter` node in a scan-rooted chain is tagged with how the
/// executor will evaluate it, as decided *statically* from the inferred
/// column types ([`crate::types`]) and the vectorizer's analysis:
///
/// * `refine=dict` — references only the dictionary-encoded
///   `metric_name`/`tag` columns; evaluated once per distinct series.
/// * `refine=kernel` — refines the selection vector with typed
///   branch-free loops ([`crate::kernel`]) straight off the column
///   slices: span-refinable point predicates on a TSDB scan, or (on a
///   registered table, when the catalog is supplied) a vectorizable
///   comparison whose columns all inferred to non-null `Int`/`Float`.
/// * `refine=general` — needs the row gather + vectorized evaluator
///   fallback.
pub fn render_with(plan: &LogicalPlan, catalog: Option<&Catalog>) -> String {
    let mut out = String::new();
    render_into(plan, 0, catalog, &mut out);
    out
}

/// The `refine=` class of one filter predicate, or `None` when the chain
/// source is not a scan (derived columns — no static story to tell).
fn refine_class(predicate: &Expr, source: &LogicalPlan, catalog: &Catalog) -> Option<&'static str> {
    match source {
        LogicalPlan::TsdbScan { .. } => {
            let obs = Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect());
            let mut cols = Vec::new();
            crate::optimize::collect_columns(predicate, &mut cols);
            if cols.iter().all(|c| obs.resolve(c).is_ok_and(|i| i == 1 || i == 2)) {
                Some("dict")
            } else if crate::veval::span_refinable(predicate, &obs) {
                Some("kernel")
            } else {
                Some("general")
            }
        }
        LogicalPlan::Scan { table } => {
            let types = crate::types::base_table_types(catalog, table).ok()?;
            let mut cols = Vec::new();
            crate::optimize::collect_columns(predicate, &mut cols);
            let numeric = crate::veval::supported(predicate)
                && cols.iter().all(|c| {
                    types.resolve(c).is_ok_and(|info| !info.nullable && info.ty.is_numeric())
                });
            Some(if numeric { "kernel" } else { "general" })
        }
        _ => None,
    }
}

/// The first non-`Filter` node under a filter chain.
fn chain_source(mut plan: &LogicalPlan) -> &LogicalPlan {
    while let LogicalPlan::Filter { input, .. } = plan {
        plan = input;
    }
    plan
}

fn push_line(out: &mut String, depth: usize, line: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(line);
    out.push('\n');
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => match v {
            crate::value::Value::Str(s) => format!("'{s}'"),
            other => other.render(),
        },
        Expr::Column(c) => c.clone(),
        Expr::Binary { op, left, right } => {
            let op = match op {
                BinaryOp::Or => "OR",
                BinaryOp::And => "AND",
                BinaryOp::Eq => "=",
                BinaryOp::NotEq => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::LtEq => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::GtEq => ">=",
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Mod => "%",
                BinaryOp::Like => "LIKE",
                BinaryOp::Glob => "GLOB",
            };
            format!("({} {} {})", render_expr(left), op, render_expr(right))
        }
        Expr::Unary { op, operand } => match op {
            crate::ast::UnaryOp::Neg => format!("(-{})", render_expr(operand)),
            crate::ast::UnaryOp::Not => format!("(NOT {})", render_expr(operand)),
        },
        Expr::Function { name, args } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Index { container, index } => {
            format!("{}[{}]", render_expr(container), render_expr(index))
        }
        Expr::InList { expr, list, negated } => {
            let list: Vec<String> = list.iter().map(render_expr).collect();
            let not = if *negated { " NOT" } else { "" };
            format!("({}{} IN ({}))", render_expr(expr), not, list.join(", "))
        }
        Expr::Between { expr, low, high, negated } => {
            let not = if *negated { " NOT" } else { "" };
            format!(
                "({}{} BETWEEN {} AND {})",
                render_expr(expr),
                not,
                render_expr(low),
                render_expr(high)
            )
        }
        Expr::IsNull { expr, negated } => {
            let not = if *negated { " NOT" } else { "" };
            format!("({} IS{} NULL)", render_expr(expr), not)
        }
        Expr::Case { .. } => "CASE ... END".to_string(),
    }
}

/// Renders the pushed-down scan predicates shared by `TsdbScan` and
/// `ScanAggregate` lines.
fn push_scan_attrs(
    line: &mut String,
    name: &Option<String>,
    tags: &[TagFilter],
    start: &Option<i64>,
    end: &Option<i64>,
) {
    if let Some(name) = name {
        line.push_str(&format!(" name={name}"));
    }
    for t in tags {
        match t {
            TagFilter::Equals(k, v) => line.push_str(&format!(" tag[{k}]={v}")),
            TagFilter::Glob(k, p) => line.push_str(&format!(" tag[{k}]~{p}")),
            TagFilter::HasKey(k) => line.push_str(&format!(" tag[{k}] present")),
            TagFilter::Absent(k) => line.push_str(&format!(" tag[{k}] absent")),
        }
    }
    if start.is_some() || end.is_some() {
        let lo = start.map_or("-inf".to_string(), |v| v.to_string());
        let hi = end.map_or("+inf".to_string(), |v| v.to_string());
        line.push_str(&format!(" time=[{lo}, {hi}]"));
    }
}

fn render_into(plan: &LogicalPlan, depth: usize, catalog: Option<&Catalog>, out: &mut String) {
    match plan {
        LogicalPlan::Scan { table } => push_line(out, depth, &format!("Scan {table}")),
        LogicalPlan::TsdbScan { table, name, tags, start, end, columns } => {
            let mut line = format!("TsdbScan {table}");
            push_scan_attrs(&mut line, name, tags, start, end);
            if let Some(cols) = columns {
                let names: Vec<&str> = cols.iter().map(|&i| TSDB_COLUMNS[i]).collect();
                line.push_str(&format!(" columns=[{}]", names.join(", ")));
            }
            push_line(out, depth, &line);
        }
        LogicalPlan::Unit => push_line(out, depth, "Unit"),
        LogicalPlan::Alias { input, alias } => {
            push_line(out, depth, &format!("Alias {alias}"));
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut line = format!("Filter {}", render_expr(predicate));
            if let Some(class) =
                catalog.and_then(|c| refine_class(predicate, chain_source(input), c))
            {
                line.push_str(&format!(" refine={class}"));
            }
            push_line(out, depth, &line);
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Project { input, items, hidden } => {
            let cols: Vec<String> =
                items.iter().map(|(e, n)| format!("{} AS {n}", render_expr(e))).collect();
            let mut line = format!("Project [{}]", cols.join(", "));
            if !hidden.is_empty() {
                let h: Vec<String> = hidden.iter().map(render_expr).collect();
                line.push_str(&format!(" hidden=[{}]", h.join(", ")));
            }
            push_line(out, depth, &line);
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            let keys: Vec<String> = group_by.iter().map(render_expr).collect();
            let cols: Vec<String> =
                items.iter().map(|(e, n)| format!("{} AS {n}", render_expr(e))).collect();
            let mut line =
                format!("Aggregate group=[{}] items=[{}]", keys.join(", "), cols.join(", "));
            if !hidden.is_empty() {
                let h: Vec<String> = hidden.iter().map(render_expr).collect();
                line.push_str(&format!(" hidden=[{}]", h.join(", ")));
            }
            push_line(out, depth, &line);
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Join { left, right, kind, on, stats } => {
            let kind = match kind {
                JoinKind::Inner => "Inner",
                JoinKind::Left => "Left",
                JoinKind::FullOuter => "FullOuter",
            };
            let mut line = format!("Join {kind} on {}", render_expr(on));
            if let Some(s) = stats {
                line.push_str(&format!(
                    " rows=[l~{}, r~{}] build={}",
                    s.left_rows,
                    s.right_rows,
                    if s.build_left { "left" } else { "right" }
                ));
            }
            push_line(out, depth, &line);
            render_into(left, depth + 1, catalog, out);
            render_into(right, depth + 1, catalog, out);
        }
        LogicalPlan::Sort { input, keys, .. } => {
            let keys: Vec<String> = keys
                .iter()
                .map(|(i, asc)| format!("#{i} {}", if *asc { "ASC" } else { "DESC" }))
                .collect();
            push_line(out, depth, &format!("Sort [{}]", keys.join(", ")));
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Limit { input, n } => {
            push_line(out, depth, &format!("Limit {n}"));
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::Union { inputs } => {
            push_line(out, depth, "Union");
            for i in inputs {
                render_into(i, depth + 1, catalog, out);
            }
        }
        LogicalPlan::Exchange { input } => {
            push_line(out, depth, "Exchange partitions=auto");
            render_into(input, depth + 1, catalog, out);
        }
        LogicalPlan::ScanAggregate {
            table,
            name,
            tags,
            start,
            end,
            filters,
            group_by,
            items,
            hidden,
        } => {
            let mut line = format!("ScanAggregate {table}");
            push_scan_attrs(&mut line, name, tags, start, end);
            if !filters.is_empty() {
                let f: Vec<String> = filters.iter().map(render_expr).collect();
                line.push_str(&format!(" where=[{}]", f.join(", ")));
            }
            let keys: Vec<String> = group_by.iter().map(render_expr).collect();
            let cols: Vec<String> =
                items.iter().map(|(e, n)| format!("{} AS {n}", render_expr(e))).collect();
            line.push_str(&format!(" group=[{}] items=[{}]", keys.join(", "), cols.join(", ")));
            if !hidden.is_empty() {
                let h: Vec<String> = hidden.iter().map(render_expr).collect();
                line.push_str(&format!(" hidden=[{}]", h.join(", ")));
            }
            push_line(out, depth, &line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::table::Table;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(&["ts", "v"], vec![vec![Value::Int(0), Value::Float(1.0)]]),
        );
        c
    }

    #[test]
    fn select_lowers_to_project_over_scan() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t WHERE ts > 0").unwrap();
        let p = build(&c, &q).unwrap();
        match p {
            LogicalPlan::Project { input, items, .. } => {
                assert_eq!(items.len(), 1);
                assert!(matches!(*input, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn aggregate_and_sort_nodes() {
        let c = catalog();
        let q = parse_query("SELECT ts, AVG(v) AS m FROM t GROUP BY ts ORDER BY m DESC LIMIT 3")
            .unwrap();
        let p = build(&c, &q).unwrap();
        let LogicalPlan::Limit { input, n } = p else { panic!("expected limit") };
        assert_eq!(n, 3);
        let LogicalPlan::Sort { input, keys, output_width } = *input else {
            panic!("expected sort")
        };
        assert_eq!(keys, vec![(1, false)]); // alias m resolves to output col 1
        assert_eq!(output_width, 2);
        assert!(matches!(*input, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn order_by_non_projected_column_becomes_hidden_key() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t ORDER BY ts").unwrap();
        let p = build(&c, &q).unwrap();
        let LogicalPlan::Sort { input, keys, output_width } = p else { panic!("expected sort") };
        assert_eq!(keys, vec![(1, true)]); // hidden key appended after 1 item
        assert_eq!(output_width, 1);
        let LogicalPlan::Project { hidden, .. } = *input else { panic!("expected project") };
        assert_eq!(hidden, vec![Expr::col("ts")]);
    }

    #[test]
    fn wildcard_expands_against_input_schema() {
        let c = catalog();
        let q = parse_query("SELECT * FROM t").unwrap();
        let p = build(&c, &q).unwrap();
        let LogicalPlan::Project { items, .. } = p else { panic!("expected project") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, "ts");
    }

    #[test]
    fn joins_wrap_sides_in_alias_scopes() {
        let mut c = catalog();
        c.register("u", Table::from_rows(&["ts", "w"], vec![]));
        let q = parse_query("SELECT t.v FROM t JOIN u ON t.ts = u.ts").unwrap();
        let p = build(&c, &q).unwrap();
        let LogicalPlan::Project { input, .. } = p else { panic!("expected project") };
        let LogicalPlan::Join { left, right, .. } = *input else { panic!("expected join") };
        assert!(matches!(*left, LogicalPlan::Alias { ref alias, .. } if alias == "t"));
        assert!(matches!(*right, LogicalPlan::Alias { ref alias, .. } if alias == "u"));
    }

    #[test]
    fn union_node_wraps_selects() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t UNION ALL SELECT v FROM t").unwrap();
        let p = build(&c, &q).unwrap();
        assert!(matches!(p, LogicalPlan::Union { ref inputs } if inputs.len() == 2));
    }

    #[test]
    fn render_is_indented() {
        let c = catalog();
        let q = parse_query("SELECT v FROM t WHERE ts > 0").unwrap();
        let p = build(&c, &q).unwrap();
        let s = render(&p);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Project"));
        assert!(lines[1].starts_with("  Filter"));
        assert!(lines[2].starts_with("    Scan t"));
    }
}
