//! The table catalog: named tables plus the TSDB virtual table binding.

use std::collections::HashMap;

use explainit_tsdb::Tsdb;

use crate::ast::Query;
use crate::exec::execute;
use crate::parser::parse_query;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A catalog of named tables that SQL queries run against.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under a case-insensitive name.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_lowercase(), table);
    }

    /// Binds a TSDB as a relational table (default name `tsdb`) with the
    /// paper's observation schema: `timestamp, metric_name, tag, value`.
    ///
    /// The store is materialised row-wise at bind time; re-bind after
    /// ingesting more data.
    pub fn register_tsdb(&mut self, name: &str, db: &Tsdb) {
        self.register(name, table_from_tsdb(db));
    }

    /// Looks a table up (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_lowercase())
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Parses and executes a SQL string.
    pub fn execute(&self, sql: &str) -> Result<Table> {
        let query = parse_query(sql)?;
        self.execute_query(&query)
    }

    /// Executes a pre-parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<Table> {
        execute(self, query)
    }

    /// Executes a query and registers the result as a new table — the
    /// paper's workflow stores each stage (Target, Condition, feature
    /// families) in a session-scoped temporary table.
    pub fn execute_into(&mut self, sql: &str, into: &str) -> Result<Table> {
        let t = self.execute(sql)?;
        self.register(into, t.clone());
        Ok(t)
    }
}

/// Converts a TSDB to the relational observation table.
///
/// Rows are ordered by `(timestamp, series key)` for deterministic output.
pub fn table_from_tsdb(db: &Tsdb) -> Table {
    let mut rows: Vec<(i64, String, Vec<Value>)> = Vec::with_capacity(db.point_count());
    for (_, series) in db.iter() {
        let canonical = series.key.canonical();
        let tag_map: std::collections::BTreeMap<String, String> = series.key.tags.clone();
        for p in series.points() {
            rows.push((
                p.ts,
                canonical.clone(),
                vec![
                    Value::Int(p.ts),
                    Value::Str(series.key.name.clone()),
                    Value::Map(tag_map.clone()),
                    Value::Float(p.value),
                ],
            ));
        }
    }
    rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    Table::from_rows(
        &["timestamp", "metric_name", "tag", "value"],
        rows.into_iter().map(|(_, _, r)| r).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_tsdb::SeriesKey;

    fn db() -> Tsdb {
        let mut db = Tsdb::new();
        for (host, base) in [("web-1", 1.0), ("web-2", 2.0)] {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 0..3 {
                db.insert(&key, t * 60, base + t as f64);
            }
        }
        let key = SeriesKey::new("pipeline_runtime").with_tag("pipeline_name", "p1");
        for t in 0..3 {
            db.insert(&key, t * 60, 10.0 * t as f64);
        }
        db
    }

    #[test]
    fn tsdb_binding_schema_and_rows() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c.execute("SELECT * FROM tsdb").unwrap();
        assert_eq!(t.schema().columns(), &["timestamp", "metric_name", "tag", "value"]);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn paper_target_query_runs() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute(
                "SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec \
                 FROM tsdb WHERE metric_name = 'pipeline_runtime' \
                 AND timestamp BETWEEN 0 AND 200 \
                 GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC",
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[2][2], Value::Float(20.0));
        assert_eq!(t.rows()[0][1], Value::str("p1"));
    }

    #[test]
    fn tag_filtering() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute("SELECT value FROM tsdb WHERE tag['host'] = 'web-2' ORDER BY value")
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0][0], Value::Float(2.0));
    }

    #[test]
    fn execute_into_registers_result() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        c.execute_into(
            "SELECT timestamp, AVG(value) AS v FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp",
            "target",
        )
        .unwrap();
        let t = c.execute("SELECT COUNT(*) FROM target").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn case_insensitive_names() {
        let mut c = Catalog::new();
        c.register("MyTable", Table::empty(&["x"]));
        assert!(c.get("mytable").is_some());
        assert!(c.execute("SELECT * FROM MYTABLE").is_ok());
    }
}
