//! The table catalog: named tables plus TSDB virtual table bindings.
//!
//! A TSDB registered via [`Catalog::register_tsdb`] stays a *live store
//! handle* (snapshotted at bind time): the optimizer pushes `metric_name`,
//! `tag['k']` and `timestamp` predicates down into its inverted tag index
//! instead of materializing the whole store as rows. Row materialization
//! only happens for queries that genuinely read everything (and for the
//! naive reference executor), and is cached.
//!
//! Each binding also carries lazily built **scan dictionaries**
//! ([`TsdbDicts`]): the distinct metric names and tag maps of the store,
//! each behind a shared `Arc`, plus a per-series code. Scans emit their
//! `metric_name`/`tag` columns as [`crate::column::Column::Dict`] code
//! vectors over these dictionaries, so a scan allocates no per-row strings
//! or tag-map clones no matter how many rows it returns.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use explainit_tsdb::Tsdb;

use crate::ast::Query;
use crate::exec::{execute, execute_with, ExecOptions};
use crate::parser::parse_query;
use crate::plan::TSDB_COLUMNS;
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::Result;

/// Shared dictionaries for one TSDB binding's scan columns.
#[derive(Debug)]
pub(crate) struct TsdbDicts {
    /// Distinct metric names as `Value::Str`.
    pub names: Arc<Vec<Value>>,
    /// `names` code per series, indexed by `SeriesId::index()`.
    pub name_code: Vec<u32>,
    /// Distinct tag maps as `Value::Map`.
    pub tags: Arc<Vec<Value>>,
    /// `tags` code per series, indexed by `SeriesId::index()`.
    pub tag_code: Vec<u32>,
}

impl TsdbDicts {
    fn build(db: &Tsdb) -> TsdbDicts {
        let mut names: Vec<Value> = Vec::new();
        let mut name_ix: HashMap<String, u32> = HashMap::new();
        let mut tags: Vec<Value> = Vec::new();
        let mut tag_ix: HashMap<BTreeMap<String, String>, u32> = HashMap::new();
        let mut name_code = vec![0u32; db.series_count()];
        let mut tag_code = vec![0u32; db.series_count()];
        for (id, series) in db.iter() {
            let nc = *name_ix.entry(series.key.name.clone()).or_insert_with(|| {
                names.push(Value::Str(series.key.name.clone()));
                (names.len() - 1) as u32
            });
            name_code[id.index()] = nc;
            let tc = *tag_ix.entry(series.key.tags.clone()).or_insert_with(|| {
                tags.push(Value::Map(series.key.tags.clone()));
                (tags.len() - 1) as u32
            });
            tag_code[id.index()] = tc;
        }
        TsdbDicts { names: Arc::new(names), name_code, tags: Arc::new(tags), tag_code }
    }
}

/// One registered table: plain rows, or a bound TSDB with a lazily
/// materialized relational view and lazily built scan dictionaries.
#[derive(Debug)]
enum Source {
    Mem(Table),
    Tsdb { db: Tsdb, cache: OnceLock<Table>, dicts: OnceLock<TsdbDicts> },
}

/// A catalog of named tables that SQL queries run against.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Source>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under a case-insensitive name.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_lowercase(), Source::Mem(table));
    }

    /// Binds a TSDB as a relational table (default name `tsdb`) with the
    /// paper's observation schema: `timestamp, metric_name, tag, value`.
    ///
    /// The store is snapshotted at bind time (re-bind after ingesting more
    /// data) but *not* materialized: filtered queries scan through the tag
    /// index via predicate pushdown.
    pub fn register_tsdb(&mut self, name: &str, db: &Tsdb) {
        self.tables.insert(
            name.to_lowercase(),
            Source::Tsdb { db: db.clone(), cache: OnceLock::new(), dicts: OnceLock::new() },
        );
    }

    /// Looks a table up (case-insensitive). For a TSDB binding this
    /// materializes (and caches) the full relational view — the pushdown
    /// path in the executor avoids this entirely.
    pub fn get(&self, name: &str) -> Option<&Table> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Mem(t) => Some(t),
            Source::Tsdb { db, cache, .. } => Some(cache.get_or_init(|| table_from_tsdb(db))),
        }
    }

    /// The live TSDB behind a binding, if `name` is one.
    pub fn tsdb_source(&self, name: &str) -> Option<&Tsdb> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Tsdb { db, .. } => Some(db),
            Source::Mem(_) => None,
        }
    }

    /// The scan dictionaries of a TSDB binding (built on first use).
    pub(crate) fn tsdb_dicts(&self, name: &str) -> Option<&TsdbDicts> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Tsdb { db, dicts, .. } => Some(dicts.get_or_init(|| TsdbDicts::build(db))),
            Source::Mem(_) => None,
        }
    }

    /// The schema of a registered table without materializing it.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Mem(t) => Some(t.schema().clone()),
            Source::Tsdb { .. } => {
                Some(Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect()))
            }
        }
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Parses and executes a SQL string (`EXPLAIN <query>` returns the
    /// optimized plan as a one-column table).
    pub fn execute(&self, sql: &str) -> Result<Table> {
        let query = parse_query(sql)?;
        self.execute_query(&query)
    }

    /// Executes a pre-parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<Table> {
        execute(self, query)
    }

    /// Executes a pre-parsed query with explicit execution options (e.g. a
    /// forced partition count for the parallel pipelines).
    pub fn execute_query_with(&self, query: &Query, opts: ExecOptions) -> Result<Table> {
        execute_with(self, query, opts)
    }

    /// Executes a query and registers the result as a new table — the
    /// paper's workflow stores each stage (Target, Condition, feature
    /// families) in a session-scoped temporary table.
    pub fn execute_into(&mut self, sql: &str, into: &str) -> Result<Table> {
        let t = self.execute(sql)?;
        self.register(into, t.clone());
        Ok(t)
    }
}

/// Converts a TSDB to the relational observation table.
///
/// Rows are ordered by `(timestamp, series key)` for deterministic output.
pub fn table_from_tsdb(db: &Tsdb) -> Table {
    let mut rows: Vec<(i64, String, Vec<Value>)> = Vec::with_capacity(db.point_count());
    for (_, series) in db.iter() {
        let canonical = series.key.canonical();
        let tag_map: std::collections::BTreeMap<String, String> = series.key.tags.clone();
        for p in series.points() {
            rows.push((
                p.ts,
                canonical.clone(),
                vec![
                    Value::Int(p.ts),
                    Value::Str(series.key.name.clone()),
                    Value::Map(tag_map.clone()),
                    Value::Float(p.value),
                ],
            ));
        }
    }
    rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    Table::from_rows(&TSDB_COLUMNS, rows.into_iter().map(|(_, _, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_tsdb::SeriesKey;

    fn db() -> Tsdb {
        let mut db = Tsdb::new();
        for (host, base) in [("web-1", 1.0), ("web-2", 2.0)] {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 0..3 {
                db.insert(&key, t * 60, base + t as f64);
            }
        }
        let key = SeriesKey::new("pipeline_runtime").with_tag("pipeline_name", "p1");
        for t in 0..3 {
            db.insert(&key, t * 60, 10.0 * t as f64);
        }
        db
    }

    #[test]
    fn tsdb_binding_schema_and_rows() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c.execute("SELECT * FROM tsdb").unwrap();
        assert_eq!(t.schema().columns(), &["timestamp", "metric_name", "tag", "value"]);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn paper_target_query_runs() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute(
                "SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec \
                 FROM tsdb WHERE metric_name = 'pipeline_runtime' \
                 AND timestamp BETWEEN 0 AND 200 \
                 GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC",
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[2][2], Value::Float(20.0));
        assert_eq!(t.rows()[0][1], Value::str("p1"));
    }

    #[test]
    fn tag_filtering() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t =
            c.execute("SELECT value FROM tsdb WHERE tag['host'] = 'web-2' ORDER BY value").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0][0], Value::Float(2.0));
    }

    #[test]
    fn execute_into_registers_result() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        c.execute_into(
            "SELECT timestamp, AVG(value) AS v FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp",
            "target",
        )
        .unwrap();
        let t = c.execute("SELECT COUNT(*) FROM target").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn case_insensitive_names() {
        let mut c = Catalog::new();
        c.register("MyTable", Table::empty(&["x"]));
        assert!(c.get("mytable").is_some());
        assert!(c.execute("SELECT * FROM MYTABLE").is_ok());
    }

    #[test]
    fn tsdb_source_exposed_for_pushdown() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        assert!(c.tsdb_source("tsdb").is_some());
        assert!(c.tsdb_source("nope").is_none());
        c.register("plain", Table::empty(&["x"]));
        assert!(c.tsdb_source("plain").is_none());
    }

    #[test]
    fn schema_of_does_not_materialize() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let s = c.schema_of("tsdb").unwrap();
        assert_eq!(s.columns(), &["timestamp", "metric_name", "tag", "value"]);
    }

    #[test]
    fn explain_renders_pushed_down_plan() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute(
                "EXPLAIN SELECT timestamp, AVG(value) AS v FROM tsdb \
                 WHERE metric_name = 'cpu' AND tag['host'] = 'web-1' \
                 AND timestamp BETWEEN 0 AND 120 GROUP BY timestamp",
            )
            .unwrap();
        assert_eq!(t.schema().columns(), &["plan"]);
        let text: Vec<String> = t.rows().iter().map(|r| r[0].render()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("TsdbScan"), "plan:\n{joined}");
        assert!(joined.contains("name=cpu"), "plan:\n{joined}");
        assert!(joined.contains("tag[host]=web-1"), "plan:\n{joined}");
        assert!(joined.contains("time=[0, 120]"), "plan:\n{joined}");
    }
}
