//! The table catalog: named tables plus TSDB virtual table bindings.
//!
//! A TSDB registered via [`Catalog::register_tsdb`] stays a *live store
//! handle* (snapshotted at bind time): the optimizer pushes `metric_name`,
//! `tag['k']` and `timestamp` predicates down into its inverted tag index
//! instead of materializing the whole store as rows. Row materialization
//! only happens for queries that genuinely read everything (and for the
//! naive reference executor), and is cached.
//!
//! Bindings come in two flavours:
//!
//! * [`Catalog::register_tsdb`] — **fixed**: the store is cloned at bind
//!   time and never changes (the original snapshot contract);
//! * [`Catalog::register_tsdb_shared`] — **live**: the binding holds a
//!   [`SharedTsdb`] handle and re-snapshots itself whenever the handle's
//!   generation counter has advanced, so a long-lived session sees fresh
//!   ingests without re-binding. Two names bound to the same handle share
//!   one snapshot (and therefore one dictionary set) per generation.
//!
//! Each snapshot carries lazily built **scan dictionaries** ([`TsdbDicts`]):
//! the distinct metric names and tag maps of the store, each behind a
//! shared `Arc`, plus a per-series code. Scans emit their
//! `metric_name`/`tag` columns as [`crate::column::Column::Dict`] code
//! vectors over these dictionaries, so a scan allocates no per-row strings
//! or tag-map clones no matter how many rows it returns.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use explainit_sync::{LockClass, Mutex, OnceLock};

use explainit_tsdb::{SharedTsdb, Tsdb};

/// The published-snapshot slot of one TSDB registration. Held only to
/// clone or swap an `Arc` — never while snapshotting (which takes the
/// `tsdb.shared` lock, rank 10, and so must happen outside this one).
static CATALOG_BINDING: LockClass = LockClass::new("query.catalog.binding", 20);

/// A binding's materialized relational view; init scans the snapshot,
/// which decodes chunks and may fault pages — everything above rank 30.
static BINDING_CACHE: LockClass = LockClass::new("query.binding.cache", 30);

/// A binding's scan dictionaries; init walks the snapshot like the view.
static BINDING_DICTS: LockClass = LockClass::new("query.binding.dicts", 32);

use crate::ast::Query;
use crate::exec::{execute, execute_with, ExecOptions};
use crate::parser::parse_query;
use crate::plan::TSDB_COLUMNS;
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::Result;

/// Shared dictionaries for one TSDB binding's scan columns.
#[derive(Debug)]
pub(crate) struct TsdbDicts {
    /// Distinct metric names as `Value::Str`.
    pub names: Arc<Vec<Value>>,
    /// `names` code per series, indexed by `SeriesId::index()`.
    pub name_code: Vec<u32>,
    /// Distinct tag maps as `Value::Map`.
    pub tags: Arc<Vec<Value>>,
    /// `tags` code per series, indexed by `SeriesId::index()`.
    pub tag_code: Vec<u32>,
}

impl TsdbDicts {
    fn build(db: &Tsdb) -> TsdbDicts {
        let mut names: Vec<Value> = Vec::new();
        let mut name_ix: HashMap<String, u32> = HashMap::new();
        let mut tags: Vec<Value> = Vec::new();
        let mut tag_ix: HashMap<BTreeMap<String, String>, u32> = HashMap::new();
        let mut name_code = vec![0u32; db.series_count()];
        let mut tag_code = vec![0u32; db.series_count()];
        for (id, series) in db.iter() {
            let nc = *name_ix.entry(series.key.name.clone()).or_insert_with(|| {
                names.push(Value::Str(series.key.name.clone()));
                (names.len() - 1) as u32
            });
            name_code[id.index()] = nc;
            let tc = *tag_ix.entry(series.key.tags.clone()).or_insert_with(|| {
                tags.push(Value::Map(series.key.tags.clone()));
                (tags.len() - 1) as u32
            });
            tag_code[id.index()] = tc;
        }
        TsdbDicts { names: Arc::new(names), name_code, tags: Arc::new(tags), tag_code }
    }
}

/// One generation's snapshot of a bound store, with its lazily built
/// materialized view and scan dictionaries. Cheap to share: bindings of
/// the same [`SharedTsdb`] at the same generation hold the same `Arc`.
#[derive(Debug)]
pub(crate) struct TsdbBinding {
    db: Tsdb,
    generation: u64,
    cache: OnceLock<Arc<Table>>,
    dicts: OnceLock<TsdbDicts>,
}

impl TsdbBinding {
    fn at(db: Tsdb, generation: u64) -> Arc<TsdbBinding> {
        Arc::new(TsdbBinding {
            db,
            generation,
            cache: OnceLock::new(&BINDING_CACHE),
            dicts: OnceLock::new(&BINDING_DICTS),
        })
    }

    fn snapshot(handle: &SharedTsdb) -> Arc<TsdbBinding> {
        let (generation, db) = handle.snapshot();
        TsdbBinding::at(db, generation)
    }

    /// The bound store snapshot.
    pub(crate) fn db(&self) -> &Tsdb {
        &self.db
    }

    /// The scan dictionaries (built on first use).
    pub(crate) fn dicts(&self) -> &TsdbDicts {
        self.dicts.get_or_init(|| TsdbDicts::build(&self.db))
    }

    /// The materialized relational view (built on first use) — the
    /// pushdown path in the executor avoids this entirely.
    pub(crate) fn table(&self) -> Arc<Table> {
        self.cache.get_or_init(|| Arc::new(table_from_tsdb(&self.db))).clone()
    }
}

/// One registered table: plain rows, or a bound TSDB. Live TSDB bindings
/// keep the shared handle and swap in a fresh snapshot when its
/// generation moves.
#[derive(Debug)]
enum Source {
    Mem(Arc<Table>),
    Tsdb {
        /// `Some` for live bindings; `None` for fixed snapshot binds.
        shared: Option<SharedTsdb>,
        /// The current snapshot (refreshed on access for live bindings).
        bound: Mutex<Arc<TsdbBinding>>,
    },
}

/// A catalog of named tables that SQL queries run against.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Source>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under a case-insensitive name.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_lowercase(), Source::Mem(Arc::new(table)));
    }

    /// Removes a registered table or binding. Returns true if it existed.
    pub fn deregister(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_lowercase()).is_some()
    }

    /// Binds a TSDB as a relational table (default name `tsdb`) with the
    /// paper's observation schema: `timestamp, metric_name, tag, value`.
    ///
    /// The store is snapshotted at bind time (re-bind after ingesting more
    /// data, or use [`Catalog::register_tsdb_shared`] for a live binding)
    /// but *not* materialized: filtered queries scan through the tag index
    /// via predicate pushdown.
    pub fn register_tsdb(&mut self, name: &str, db: &Tsdb) {
        self.tables.insert(
            name.to_lowercase(),
            Source::Tsdb {
                shared: None,
                bound: Mutex::new(&CATALOG_BINDING, TsdbBinding::at(db.clone(), 0)),
            },
        );
    }

    /// Binds a [`SharedTsdb`] as a live relational table: queries always
    /// run against the handle's current generation, re-snapshotting (and
    /// rebuilding dictionaries) only when an ingest actually happened.
    pub fn register_tsdb_shared(&mut self, name: &str, handle: &SharedTsdb) {
        let bound =
            self.current_binding_of(handle).unwrap_or_else(|| TsdbBinding::snapshot(handle));
        self.tables.insert(
            name.to_lowercase(),
            Source::Tsdb {
                shared: Some(handle.clone()),
                bound: Mutex::new(&CATALOG_BINDING, bound),
            },
        );
    }

    /// An up-to-date binding some *other* registration already holds for
    /// the same store, so same-store bindings share snapshots and
    /// dictionaries instead of cloning per name.
    fn current_binding_of(&self, handle: &SharedTsdb) -> Option<Arc<TsdbBinding>> {
        let generation = handle.generation();
        self.tables.values().find_map(|source| match source {
            Source::Tsdb { shared: Some(peer), bound } if peer.same_store(handle) => {
                // try_lock: a peer mid-refresh on another thread is simply
                // skipped; we fall back to snapshotting ourselves.
                let peer_bound = bound.try_lock()?;
                (peer_bound.generation == generation).then(|| peer_bound.clone())
            }
            _ => None,
        })
    }

    /// The current snapshot behind a TSDB binding, refreshed first if the
    /// shared handle has advanced.
    pub(crate) fn tsdb_binding(&self, name: &str) -> Option<Arc<TsdbBinding>> {
        let Source::Tsdb { shared, bound } = self.tables.get(&name.to_lowercase())? else {
            return None;
        };
        let current = bound.lock().clone();
        let Some(handle) = shared else {
            return Some(current);
        };
        if current.generation == handle.generation() {
            return Some(current);
        }
        // Stale: reuse a same-store peer's fresh snapshot if one exists,
        // else take our own, then publish it (last writer wins — the
        // refresh is idempotent for one generation).
        let fresh =
            self.current_binding_of(handle).unwrap_or_else(|| TsdbBinding::snapshot(handle));
        *bound.lock() = fresh.clone();
        Some(fresh)
    }

    /// True when `name` is a TSDB binding (fixed or live).
    pub fn is_tsdb(&self, name: &str) -> bool {
        matches!(self.tables.get(&name.to_lowercase()), Some(Source::Tsdb { .. }))
    }

    /// Looks a table up (case-insensitive). For a TSDB binding this
    /// materializes (and caches, per generation) the full relational view —
    /// the pushdown path in the executor avoids this entirely.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Mem(t) => Some(t.clone()),
            Source::Tsdb { .. } => Some(self.tsdb_binding(name)?.table()),
        }
    }

    /// The schema of a registered table without materializing it.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        match self.tables.get(&name.to_lowercase())? {
            Source::Mem(t) => Some(t.schema().clone()),
            Source::Tsdb { .. } => {
                Some(Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect()))
            }
        }
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Parses and executes a SQL string (`EXPLAIN <query>` returns the
    /// optimized plan as a one-column table).
    pub fn execute(&self, sql: &str) -> Result<Table> {
        let query = parse_query(sql)?;
        self.execute_query(&query)
    }

    /// Executes a pre-parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<Table> {
        execute(self, query)
    }

    /// Executes a pre-parsed query with explicit execution options (e.g. a
    /// forced partition count for the parallel pipelines).
    pub fn execute_query_with(&self, query: &Query, opts: ExecOptions) -> Result<Table> {
        execute_with(self, query, opts)
    }

    /// Executes a query and registers the result as a new table — the
    /// paper's workflow stores each stage (Target, Condition, feature
    /// families) in a session-scoped temporary table.
    pub fn execute_into(&mut self, sql: &str, into: &str) -> Result<Table> {
        let t = self.execute(sql)?;
        self.register(into, t.clone());
        Ok(t)
    }
}

/// Converts a TSDB to the relational observation table.
///
/// Rows are ordered by `(timestamp, series key)` for deterministic output.
pub fn table_from_tsdb(db: &Tsdb) -> Table {
    let mut rows: Vec<(i64, String, Vec<Value>)> = Vec::with_capacity(db.point_count());
    for (_, series) in db.iter() {
        let canonical = series.key.canonical();
        let tag_map: std::collections::BTreeMap<String, String> = series.key.tags.clone();
        for p in series.points() {
            rows.push((
                p.ts,
                canonical.clone(),
                vec![
                    Value::Int(p.ts),
                    Value::Str(series.key.name.clone()),
                    Value::Map(tag_map.clone()),
                    Value::Float(p.value),
                ],
            ));
        }
    }
    rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    Table::from_rows(&TSDB_COLUMNS, rows.into_iter().map(|(_, _, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainit_tsdb::SeriesKey;

    fn db() -> Tsdb {
        let mut db = Tsdb::new();
        for (host, base) in [("web-1", 1.0), ("web-2", 2.0)] {
            let key = SeriesKey::new("cpu").with_tag("host", host);
            for t in 0..3 {
                db.insert(&key, t * 60, base + t as f64);
            }
        }
        let key = SeriesKey::new("pipeline_runtime").with_tag("pipeline_name", "p1");
        for t in 0..3 {
            db.insert(&key, t * 60, 10.0 * t as f64);
        }
        db
    }

    #[test]
    fn tsdb_binding_schema_and_rows() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c.execute("SELECT * FROM tsdb").unwrap();
        assert_eq!(t.schema().columns(), &["timestamp", "metric_name", "tag", "value"]);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn paper_target_query_runs() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute(
                "SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec \
                 FROM tsdb WHERE metric_name = 'pipeline_runtime' \
                 AND timestamp BETWEEN 0 AND 200 \
                 GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC",
            )
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[2][2], Value::Float(20.0));
        assert_eq!(t.rows()[0][1], Value::str("p1"));
    }

    #[test]
    fn tag_filtering() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t =
            c.execute("SELECT value FROM tsdb WHERE tag['host'] = 'web-2' ORDER BY value").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0][0], Value::Float(2.0));
    }

    #[test]
    fn execute_into_registers_result() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        c.execute_into(
            "SELECT timestamp, AVG(value) AS v FROM tsdb WHERE metric_name = 'cpu' GROUP BY timestamp",
            "target",
        )
        .unwrap();
        let t = c.execute("SELECT COUNT(*) FROM target").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn case_insensitive_names() {
        let mut c = Catalog::new();
        c.register("MyTable", Table::empty(&["x"]));
        assert!(c.get("mytable").is_some());
        assert!(c.execute("SELECT * FROM MYTABLE").is_ok());
    }

    #[test]
    fn tsdb_binding_exposed_for_pushdown() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        assert!(c.is_tsdb("tsdb"));
        assert!(c.tsdb_binding("tsdb").is_some());
        assert!(!c.is_tsdb("nope"));
        assert!(c.tsdb_binding("nope").is_none());
        c.register("plain", Table::empty(&["x"]));
        assert!(!c.is_tsdb("plain"));
        assert!(c.tsdb_binding("plain").is_none());
    }

    #[test]
    fn deregister_removes_tables() {
        let mut c = Catalog::new();
        c.register("t", Table::empty(&["x"]));
        assert!(c.deregister("T"));
        assert!(!c.deregister("t"));
        assert!(c.get("t").is_none());
    }

    #[test]
    fn schema_of_does_not_materialize() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let s = c.schema_of("tsdb").unwrap();
        assert_eq!(s.columns(), &["timestamp", "metric_name", "tag", "value"]);
    }

    #[test]
    fn fixed_binding_stays_a_snapshot() {
        let mut live = db();
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &live);
        live.insert(&SeriesKey::new("cpu").with_tag("host", "web-3"), 0, 7.0);
        let t = c.execute("SELECT COUNT(*) FROM tsdb").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(9)); // the late insert is invisible
    }

    #[test]
    fn shared_binding_sees_fresh_ingests() {
        let shared = SharedTsdb::new(db());
        let mut c = Catalog::new();
        c.register_tsdb_shared("tsdb", &shared);
        let count =
            |c: &Catalog| c.execute("SELECT COUNT(*) FROM tsdb").unwrap().rows()[0][0].clone();
        assert_eq!(count(&c), Value::Int(9));
        shared.insert(&SeriesKey::new("cpu").with_tag("host", "web-3"), 0, 7.0);
        assert_eq!(count(&c), Value::Int(10)); // no re-bind needed
                                               // The new series also reaches the dictionary-encoded pushdown path.
        let t = c.execute("SELECT value FROM tsdb WHERE tag['host'] = 'web-3'").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Float(7.0));
    }

    #[test]
    fn shared_binding_refreshes_only_on_generation_change() {
        let shared = SharedTsdb::new(db());
        let mut c = Catalog::new();
        c.register_tsdb_shared("tsdb", &shared);
        let first = c.tsdb_binding("tsdb").unwrap();
        let again = c.tsdb_binding("tsdb").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "no ingest, same snapshot");
        shared.insert(&SeriesKey::new("cpu").with_tag("host", "web-9"), 0, 1.0);
        let refreshed = c.tsdb_binding("tsdb").unwrap();
        assert!(!Arc::ptr_eq(&first, &refreshed), "ingest forces a new snapshot");
    }

    #[test]
    fn same_store_bindings_share_one_snapshot() {
        let shared = SharedTsdb::new(db());
        let mut c = Catalog::new();
        c.register_tsdb_shared("tsdb", &shared);
        c.register_tsdb_shared("mirror", &shared);
        let a = c.tsdb_binding("tsdb").unwrap();
        let b = c.tsdb_binding("mirror").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same handle, same generation, one snapshot");
        shared.insert(&SeriesKey::new("cpu").with_tag("host", "web-9"), 0, 1.0);
        let a2 = c.tsdb_binding("tsdb").unwrap();
        let b2 = c.tsdb_binding("mirror").unwrap();
        assert!(Arc::ptr_eq(&a2, &b2), "refresh is shared too");
        assert!(!Arc::ptr_eq(&a, &a2));
    }

    #[test]
    fn explain_renders_pushed_down_plan() {
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db());
        let t = c
            .execute(
                "EXPLAIN SELECT timestamp, AVG(value) AS v FROM tsdb \
                 WHERE metric_name = 'cpu' AND tag['host'] = 'web-1' \
                 AND timestamp BETWEEN 0 AND 120 GROUP BY timestamp",
            )
            .unwrap();
        assert_eq!(t.schema().columns(), &["plan"]);
        let text: Vec<String> = t.rows().iter().map(|r| r[0].render()).collect();
        let joined = text.join("\n");
        // The GROUP BY timestamp pipeline collapses all the way into the
        // scan; the pushed-down predicates surface on its EXPLAIN line.
        assert!(joined.contains("ScanAggregate"), "plan:\n{joined}");
        assert!(joined.contains("name=cpu"), "plan:\n{joined}");
        assert!(joined.contains("tag[host]=web-1"), "plan:\n{joined}");
        assert!(joined.contains("time=[0, 120]"), "plan:\n{joined}");
    }
}
