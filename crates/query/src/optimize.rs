//! Rule-based plan optimizer.
//!
//! Four rewrites run in order:
//!
//! 1. **Constant folding** — literal-only subexpressions are evaluated at
//!    plan time (`1 + 2` → `3`), plus boolean shortcuts (`TRUE AND x` → `x`,
//!    `FALSE AND x` → `FALSE`).
//! 2. **TSDB scan conversion** — a [`LogicalPlan::Scan`] of a table bound
//!    via [`Catalog::register_tsdb`] becomes a [`LogicalPlan::TsdbScan`].
//! 3. **Predicate pushdown** — WHERE conjuncts sink through Alias and
//!    Project nodes (with alias substitution), into the matching side of a
//!    Join, through Aggregate group keys, and finally *into* the TSDB scan:
//!    `metric_name = '…'` becomes an inverted-index name lookup,
//!    `tag['k'] = 'v'` / `tag['k'] IS [NOT] NULL` become tag-index
//!    predicates, and `timestamp` comparisons become the scan's time range —
//!    so the store is never materialized wholesale.
//! 4. **Projection pruning** — TSDB scans only materialize the observation
//!    columns the rest of the plan references (skipping per-row tag-map
//!    clones when `tag` is never read).
//! 5. **Parallelization** — an `Aggregate` whose outputs are group keys and
//!    plain (mergeable) aggregate calls, or a TSDB-scan-rooted `Project`,
//!    with any directly nested vectorizable `Filter`s, is wrapped in a
//!    [`LogicalPlan::Exchange`] marker: the executor runs the pipeline
//!    per-partition (two-phase aggregation with accumulator merges) when
//!    partitions are available. The wrapped plan stays a valid serial
//!    plan, so the marker never changes results.
//! 6. **Scan-level aggregate pushdown** — an `Aggregate` (with or without
//!    its `Exchange` marker, above vectorizable pushed-down `Filter`s)
//!    sitting directly on a `TsdbScan` collapses into a single
//!    [`LogicalPlan::ScanAggregate`] node when every group key is the
//!    `timestamp` column or an expression over the dictionary-encoded
//!    scan columns (`metric_name`, `tag`) and every output is a group key
//!    or a plain mergeable aggregate over observation columns. The
//!    executor then pre-aggregates per series straight off the store's
//!    sorted point vectors — no row materialization at all. Joins, UNION
//!    branches, non-dict group keys and non-mergeable outputs fall back
//!    to the ordinary pipeline. Disable with
//!    [`OptimizeOptions::scan_aggregate`] (the differential harness runs
//!    both ways).
//! 7. **Join-side statistics** — every `Join` is annotated with per-side
//!    row estimates from [`crate::plan::estimate_rows`] (tag-index set
//!    sizes and point-count arithmetic for TSDB scans, exact lengths for
//!    registered tables) and the hash-join build side they imply: the
//!    executor builds its hash index over the estimated-smaller input
//!    while emitting rows in exactly the order the legacy build-on-right
//!    algorithm produced, so statistics can only change memory and speed,
//!    never results. `EXPLAIN` shows the estimates and the chosen side on
//!    the `Join` line. Rule 3 additionally orders the residual conjuncts
//!    it leaves above a `TsdbScan` so per-series-constant predicates
//!    (references to the dictionary-encoded `metric_name`/`tag` columns
//!    only) apply innermost: the scan-aggregate operator evaluates those
//!    once per series — often discarding the whole series for the cost of
//!    one comparison — before any per-point work runs.

use std::collections::HashSet;

use explainit_tsdb::TagFilter;

use crate::ast::{BinaryOp, Expr, JoinKind};
use crate::catalog::Catalog;
use crate::eval::eval_row;
use crate::functions::{is_aggregate, is_window};
use crate::plan::{collect_conjuncts, conjoin, LogicalPlan, TSDB_COLUMNS};
use crate::table::Schema;
use crate::value::Value;
use crate::veval;
use crate::Result;

/// Optimizer toggles (all rewrites that change plan *shape* but never
/// results; tests and the differential harness switch them off to compare
/// engines).
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Apply rule 6 (collapse eligible aggregates into
    /// [`LogicalPlan::ScanAggregate`]). Default: on.
    pub scan_aggregate: bool,
    /// Run the [`crate::verify`] invariant checks after every rule.
    /// Default: off — but debug builds always verify, and setting the
    /// `EXPLAINIT_VERIFY_PLANS` environment variable (to anything but `0`)
    /// forces verification in release builds too.
    pub verify: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions { scan_aggregate: true, verify: false }
    }
}

/// Applies all rewrite rules with default options.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    optimize_with(plan, catalog, &OptimizeOptions::default())
}

/// Applies all rewrite rules.
pub fn optimize_with(
    plan: LogicalPlan,
    catalog: &Catalog,
    opts: &OptimizeOptions,
) -> Result<LogicalPlan> {
    let verify = opts.verify || cfg!(debug_assertions) || crate::verify::env_forced();
    let planned = if verify { plan.schema(catalog).ok() } else { None };
    let check = |rule: &'static str, plan: &LogicalPlan| -> Result<()> {
        if verify {
            crate::verify::check_after(rule, plan, planned.as_ref(), catalog)
        } else {
            Ok(())
        }
    };
    let plan = fold_plan(plan);
    check("fold_constants", &plan)?;
    let plan = convert_tsdb_scans(plan, catalog);
    check("convert_tsdb_scans", &plan)?;
    let plan = pushdown(plan, catalog)?;
    check("pushdown", &plan)?;
    let plan = prune(plan, None);
    check("prune", &plan)?;
    let plan = annotate_join_stats(plan, catalog);
    check("annotate_join_stats", &plan)?;
    let plan = parallelize(plan);
    check("parallelize", &plan)?;
    let plan = if opts.scan_aggregate { push_aggregates_into_scans(plan) } else { plan };
    check("scan_aggregate", &plan)?;
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Rule 1: constant folding
// ---------------------------------------------------------------------------

/// Folds constants in every expression of the plan.
fn fold_plan(plan: LogicalPlan) -> LogicalPlan {
    map_exprs(plan, &fold_expr)
}

fn map_exprs(plan: LogicalPlan, f: &impl Fn(Expr) -> Expr) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(map_exprs(*input, f)), predicate: f(predicate) }
        }
        LogicalPlan::Project { input, items, hidden } => LogicalPlan::Project {
            input: Box::new(map_exprs(*input, f)),
            items: items.into_iter().map(|(e, n)| (f(e), n)).collect(),
            hidden: hidden.into_iter().map(f).collect(),
        },
        LogicalPlan::Aggregate { input, group_by, items, hidden } => LogicalPlan::Aggregate {
            input: Box::new(map_exprs(*input, f)),
            group_by: group_by.into_iter().map(f).collect(),
            items: items.into_iter().map(|(e, n)| (f(e), n)).collect(),
            hidden: hidden.into_iter().map(f).collect(),
        },
        LogicalPlan::Join { left, right, kind, on, stats } => LogicalPlan::Join {
            left: Box::new(map_exprs(*left, f)),
            right: Box::new(map_exprs(*right, f)),
            kind,
            on: f(on),
            stats,
        },
        LogicalPlan::Alias { input, alias } => {
            LogicalPlan::Alias { input: Box::new(map_exprs(*input, f)), alias }
        }
        LogicalPlan::Sort { input, keys, output_width } => {
            LogicalPlan::Sort { input: Box::new(map_exprs(*input, f)), keys, output_width }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(map_exprs(*input, f)), n }
        }
        LogicalPlan::Union { inputs } => {
            LogicalPlan::Union { inputs: inputs.into_iter().map(|p| map_exprs(p, f)).collect() }
        }
        LogicalPlan::Exchange { input } => {
            LogicalPlan::Exchange { input: Box::new(map_exprs(*input, f)) }
        }
        // `ScanAggregate` is produced by rule 6, which runs last; the
        // earlier passes never see it, so a leaf treatment is safe.
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::TsdbScan { .. }
        | LogicalPlan::Unit
        | LogicalPlan::ScanAggregate { .. }) => leaf,
    }
}

/// True when the whole subtree is literal (safe to evaluate at plan time).
fn is_const(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Column(_) => false,
        Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
        Expr::Unary { operand, .. } => is_const(operand),
        Expr::Function { name, args } => {
            !is_aggregate(name) && !is_window(name) && args.iter().all(is_const)
        }
        Expr::Index { container, index } => is_const(container) && is_const(index),
        Expr::InList { expr, list, .. } => is_const(expr) && list.iter().all(is_const),
        Expr::Between { expr, low, high, .. } => is_const(expr) && is_const(low) && is_const(high),
        Expr::IsNull { expr, .. } => is_const(expr),
        Expr::Case { when_then, else_expr } => {
            when_then.iter().all(|(c, v)| is_const(c) && is_const(v))
                && else_expr.as_ref().is_none_or(|e| is_const(e))
        }
    }
}

/// Folds constants bottom-up. Expressions that error at plan time (e.g.
/// `'a' + 1`) are left intact so the runtime error surface is unchanged.
pub fn fold_expr(expr: Expr) -> Expr {
    // Fold children first.
    let expr = match expr {
        Expr::Binary { op, left, right } => {
            let left = Box::new(fold_expr(*left));
            let right = Box::new(fold_expr(*right));
            // Boolean shortcuts (sound under three-valued logic).
            match op {
                BinaryOp::And => {
                    if matches!(*left, Expr::Literal(Value::Bool(true))) {
                        return *right;
                    }
                    if matches!(*right, Expr::Literal(Value::Bool(true))) {
                        return *left;
                    }
                    if matches!(*left, Expr::Literal(Value::Bool(false)))
                        || matches!(*right, Expr::Literal(Value::Bool(false)))
                    {
                        return Expr::Literal(Value::Bool(false));
                    }
                }
                BinaryOp::Or => {
                    if matches!(*left, Expr::Literal(Value::Bool(true)))
                        || matches!(*right, Expr::Literal(Value::Bool(true)))
                    {
                        return Expr::Literal(Value::Bool(true));
                    }
                    if matches!(*left, Expr::Literal(Value::Bool(false))) {
                        return *right;
                    }
                    if matches!(*right, Expr::Literal(Value::Bool(false))) {
                        return *left;
                    }
                }
                _ => {}
            }
            Expr::Binary { op, left, right }
        }
        Expr::Unary { op, operand } => Expr::Unary { op, operand: Box::new(fold_expr(*operand)) },
        Expr::Function { name, args } => {
            Expr::Function { name, args: args.into_iter().map(fold_expr).collect() }
        }
        Expr::Index { container, index } => Expr::Index {
            container: Box::new(fold_expr(*container)),
            index: Box::new(fold_expr(*index)),
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(fold_expr(*expr)),
            low: Box::new(fold_expr(*low)),
            high: Box::new(fold_expr(*high)),
            negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(fold_expr(*expr)), negated }
        }
        Expr::Case { when_then, else_expr } => Expr::Case {
            when_then: when_then.into_iter().map(|(c, v)| (fold_expr(c), fold_expr(v))).collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
        },
        leaf => leaf,
    };
    if matches!(expr, Expr::Literal(_)) || !is_const(&expr) {
        return expr;
    }
    let empty = Schema::default();
    match eval_row(&expr, &empty, &[]) {
        Ok(v) => Expr::Literal(v),
        Err(_) => expr, // leave runtime errors to the runtime
    }
}

// ---------------------------------------------------------------------------
// Rule 2: TSDB scan conversion
// ---------------------------------------------------------------------------

fn convert_tsdb_scans(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Scan { table } if catalog.is_tsdb(&table) => LogicalPlan::TsdbScan {
            table,
            name: None,
            tags: Vec::new(),
            start: None,
            end: None,
            columns: None,
        },
        other => other,
    })
}

/// Bottom-up structural rewrite.
fn map_plan(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(map_plan(*input, f)), predicate }
        }
        LogicalPlan::Project { input, items, hidden } => {
            LogicalPlan::Project { input: Box::new(map_plan(*input, f)), items, hidden }
        }
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            LogicalPlan::Aggregate { input: Box::new(map_plan(*input, f)), group_by, items, hidden }
        }
        LogicalPlan::Join { left, right, kind, on, stats } => LogicalPlan::Join {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            kind,
            on,
            stats,
        },
        LogicalPlan::Alias { input, alias } => {
            LogicalPlan::Alias { input: Box::new(map_plan(*input, f)), alias }
        }
        LogicalPlan::Sort { input, keys, output_width } => {
            LogicalPlan::Sort { input: Box::new(map_plan(*input, f)), keys, output_width }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(map_plan(*input, f)), n }
        }
        LogicalPlan::Union { inputs } => {
            LogicalPlan::Union { inputs: inputs.into_iter().map(|p| map_plan(p, f)).collect() }
        }
        LogicalPlan::Exchange { input } => {
            LogicalPlan::Exchange { input: Box::new(map_plan(*input, f)) }
        }
        leaf => leaf,
    };
    f(rebuilt)
}

// ---------------------------------------------------------------------------
// Rule 3: predicate pushdown
// ---------------------------------------------------------------------------

fn pushdown(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = pushdown(*input, catalog)?;
            sink_filter(predicate, input, catalog)
        }
        LogicalPlan::Project { input, items, hidden } => {
            Ok(LogicalPlan::Project { input: Box::new(pushdown(*input, catalog)?), items, hidden })
        }
        LogicalPlan::Aggregate { input, group_by, items, hidden } => Ok(LogicalPlan::Aggregate {
            input: Box::new(pushdown(*input, catalog)?),
            group_by,
            items,
            hidden,
        }),
        LogicalPlan::Join { left, right, kind, on, stats } => Ok(LogicalPlan::Join {
            left: Box::new(pushdown(*left, catalog)?),
            right: Box::new(pushdown(*right, catalog)?),
            kind,
            on,
            stats,
        }),
        LogicalPlan::Alias { input, alias } => {
            Ok(LogicalPlan::Alias { input: Box::new(pushdown(*input, catalog)?), alias })
        }
        LogicalPlan::Sort { input, keys, output_width } => Ok(LogicalPlan::Sort {
            input: Box::new(pushdown(*input, catalog)?),
            keys,
            output_width,
        }),
        LogicalPlan::Limit { input, n } => {
            Ok(LogicalPlan::Limit { input: Box::new(pushdown(*input, catalog)?), n })
        }
        LogicalPlan::Union { inputs } => Ok(LogicalPlan::Union {
            inputs: inputs.into_iter().map(|p| pushdown(p, catalog)).collect::<Result<_>>()?,
        }),
        leaf => Ok(leaf),
    }
}

/// Collects every column name referenced by an expression.
pub(crate) fn collect_columns(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Unary { operand, .. } => collect_columns(operand, out),
        Expr::Function { args, .. } => args.iter().for_each(|a| collect_columns(a, out)),
        Expr::Index { container, index } => {
            collect_columns(container, out);
            collect_columns(index, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            list.iter().for_each(|e| collect_columns(e, out));
        }
        Expr::Between { expr, low, high, .. } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Case { when_then, else_expr } => {
            for (c, v) in when_then {
                collect_columns(c, out);
                collect_columns(v, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
    }
}

fn contains_window(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, args } => is_window(name) || args.iter().any(contains_window),
        Expr::Binary { left, right, .. } => contains_window(left) || contains_window(right),
        Expr::Unary { operand, .. } => contains_window(operand),
        Expr::Index { container, index } => contains_window(container) || contains_window(index),
        Expr::InList { expr, list, .. } => {
            contains_window(expr) || list.iter().any(contains_window)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_window(expr) || contains_window(low) || contains_window(high)
        }
        Expr::IsNull { expr, .. } => contains_window(expr),
        Expr::Case { when_then, else_expr } => {
            when_then.iter().any(|(c, v)| contains_window(c) || contains_window(v))
                || else_expr.as_ref().is_some_and(|e| contains_window(e))
        }
        Expr::Literal(_) | Expr::Column(_) => false,
    }
}

/// Rewrites column references via `f` (also used by the scan-aggregate
/// operator to substitute per-series constants into expressions).
pub(crate) fn map_columns(expr: Expr, f: &impl Fn(String) -> Expr) -> Expr {
    match expr {
        Expr::Column(c) => f(c),
        Expr::Literal(_) => expr,
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(map_columns(*left, f)),
            right: Box::new(map_columns(*right, f)),
        },
        Expr::Unary { op, operand } => {
            Expr::Unary { op, operand: Box::new(map_columns(*operand, f)) }
        }
        Expr::Function { name, args } => {
            Expr::Function { name, args: args.into_iter().map(|a| map_columns(a, f)).collect() }
        }
        Expr::Index { container, index } => Expr::Index {
            container: Box::new(map_columns(*container, f)),
            index: Box::new(map_columns(*index, f)),
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(map_columns(*expr, f)),
            list: list.into_iter().map(|e| map_columns(e, f)).collect(),
            negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(map_columns(*expr, f)),
            low: Box::new(map_columns(*low, f)),
            high: Box::new(map_columns(*high, f)),
            negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(map_columns(*expr, f)), negated }
        }
        Expr::Case { when_then, else_expr } => Expr::Case {
            when_then: when_then
                .into_iter()
                .map(|(c, v)| (map_columns(c, f), map_columns(v, f)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(map_columns(*e, f))),
        },
    }
}

/// Strips a leading `alias.` qualifier from column references.
fn strip_qualifier(expr: Expr, alias: &str) -> Expr {
    map_columns(expr, &|name| {
        if let Some((head, tail)) = name.split_once('.') {
            if head.eq_ignore_ascii_case(alias) {
                return Expr::Column(tail.to_string());
            }
        }
        Expr::Column(name)
    })
}

/// Sinks a filter predicate as deep as semantics allow.
fn sink_filter(pred: Expr, input: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(&pred, &mut conjuncts);

    match input {
        // Adjacent filters merge before sinking further.
        LogicalPlan::Filter { input, predicate } => {
            collect_conjuncts(&predicate, &mut conjuncts);
            // invariant: collect_conjuncts yields at least one conjunct
            sink_filter(conjoin(conjuncts).expect("non-empty"), *input, catalog)
        }

        // Alias is a pure rename: strip the qualifier and continue below.
        LogicalPlan::Alias { input, alias } => {
            let stripped: Vec<Expr> =
                conjuncts.into_iter().map(|c| strip_qualifier(c, &alias)).collect();
            Ok(LogicalPlan::Alias {
                input: Box::new(sink_filter(
                    conjoin(stripped).expect("non-empty"), // invariant: collect_conjuncts yields at least one conjunct
                    *input,
                    catalog,
                )?),
                alias,
            })
        }

        // Joins: route side-pure conjuncts to their side.
        LogicalPlan::Join { left, right, kind, on, stats } => {
            let left_schema = left.schema(catalog)?;
            let right_schema = right.schema(catalog)?;
            let mut combined_cols = left_schema.columns().to_vec();
            combined_cols.extend(right_schema.columns().iter().cloned());
            let combined = Schema::new(combined_cols);

            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                if c.contains_aggregate() || contains_window(&c) {
                    keep.push(c);
                    continue;
                }
                let mut cols = Vec::new();
                collect_columns(&c, &mut cols);
                // Unresolvable or ambiguous references stay above the join
                // so the runtime error surface is unchanged.
                if cols.iter().any(|n| combined.resolve(n).is_err()) {
                    keep.push(c);
                    continue;
                }
                let all_left = cols.iter().all(|n| left_schema.resolve(n).is_ok());
                let all_right = cols.iter().all(|n| right_schema.resolve(n).is_ok());
                // A LEFT/FULL OUTER join null-extends, so only sides whose
                // rows cannot be fabricated by the join accept pushdown.
                let left_ok = kind != JoinKind::FullOuter;
                let right_ok = kind == JoinKind::Inner;
                if all_left && !all_right && left_ok && !cols.is_empty() {
                    to_left.push(c);
                } else if all_right && !all_left && right_ok && !cols.is_empty() {
                    to_right.push(c);
                } else {
                    keep.push(c);
                }
            }
            let mut left = *left;
            if let Some(p) = conjoin(to_left) {
                left = sink_filter(p, left, catalog)?;
            }
            let mut right = *right;
            if let Some(p) = conjoin(to_right) {
                right = sink_filter(p, right, catalog)?;
            }
            let joined =
                LogicalPlan::Join { left: Box::new(left), right: Box::new(right), kind, on, stats };
            Ok(match conjoin(keep) {
                Some(p) => LogicalPlan::Filter { input: Box::new(joined), predicate: p },
                None => joined,
            })
        }

        // Projections: substitute aliases, then continue below.
        LogicalPlan::Project { input, items, hidden } => {
            // A window function anywhere in the projection reads the whole
            // input row set; filtering below it would shrink that window
            // and change its results, so nothing may sink through.
            let has_window = items.iter().map(|(e, _)| e).chain(hidden.iter()).any(contains_window);
            if has_window {
                return Ok(LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Project { input, items, hidden }),
                    predicate: conjoin(conjuncts).expect("non-empty"), // invariant: collect_conjuncts yields at least one conjunct
                });
            }
            let out_names = Schema::new(items.iter().map(|(_, n)| n.clone()).collect());
            let mut push = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                collect_columns(&c, &mut cols);
                let substitutable =
                    !cols.is_empty() && cols.iter().all(|n| out_names.resolve(n).is_ok());
                if substitutable && !c.contains_aggregate() && !contains_window(&c) {
                    let rewritten = map_columns(c, &|name| {
                        let i = out_names.resolve(&name).expect("checked resolvable"); // invariant: the substitutable filter above resolved every column
                        items[i].0.clone()
                    });
                    push.push(rewritten);
                } else {
                    keep.push(c);
                }
            }
            let mut inner = *input;
            if let Some(p) = conjoin(push) {
                inner = sink_filter(p, inner, catalog)?;
            }
            let projected = LogicalPlan::Project { input: Box::new(inner), items, hidden };
            Ok(match conjoin(keep) {
                Some(p) => LogicalPlan::Filter { input: Box::new(projected), predicate: p },
                None => projected,
            })
        }

        // Aggregates: only conjuncts over pure group keys sink below.
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            let out_names = Schema::new(items.iter().map(|(_, n)| n.clone()).collect());
            let mut push = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                collect_columns(&c, &mut cols);
                let key_backed = !cols.is_empty()
                    && cols.iter().all(|n| {
                        out_names
                            .resolve(n)
                            .is_ok_and(|i| group_by.iter().any(|g| *g == items[i].0))
                    });
                if key_backed && !c.contains_aggregate() && !contains_window(&c) {
                    let rewritten = map_columns(c, &|name| {
                        let i = out_names.resolve(&name).expect("checked resolvable"); // invariant: the key_backed filter above resolved every column
                        items[i].0.clone()
                    });
                    push.push(rewritten);
                } else {
                    keep.push(c);
                }
            }
            let mut inner = *input;
            if let Some(p) = conjoin(push) {
                inner = sink_filter(p, inner, catalog)?;
            }
            let agg = LogicalPlan::Aggregate { input: Box::new(inner), group_by, items, hidden };
            Ok(match conjoin(keep) {
                Some(p) => LogicalPlan::Filter { input: Box::new(agg), predicate: p },
                None => agg,
            })
        }

        // The payoff: absorb conjuncts into the TSDB scan's index lookup.
        LogicalPlan::TsdbScan { table, mut name, mut tags, mut start, mut end, columns } => {
            let schema =
                Schema::new(crate::plan::TSDB_COLUMNS.iter().map(|s| s.to_string()).collect());
            let mut residual = Vec::new();
            for c in conjuncts {
                if !absorb_tsdb_conjunct(&c, &schema, &mut name, &mut tags, &mut start, &mut end) {
                    residual.push(c);
                }
            }
            // Cost-ordered residual chain (rule 7's filter half), three
            // classes innermost-out: (0) conjuncts over the per-series-
            // constant dictionary columns — the scan-aggregate operator
            // evaluates those once per series and can drop a whole series
            // before any per-point work; (1) kernel-refinable point
            // predicates — comparisons/BETWEEN/IS NULL/IN of `timestamp`/
            // `value` against literals, which refine the selection vector
            // branch-free straight off the raw point slices; (2) general
            // expressions, which pay a gather + vectorized mask. The sort
            // is stable, so equal-cost conjuncts keep their source order,
            // and conjunction commutes, so the kept row set is unchanged.
            residual.sort_by_key(|c| {
                if refs_within(c, &schema, &[1, 2]) {
                    0usize
                } else if crate::veval::span_refinable(c, &schema) {
                    1
                } else {
                    2
                }
            });
            let mut plan = LogicalPlan::TsdbScan { table, name, tags, start, end, columns };
            // Wrap innermost-first: the first residual becomes the deepest
            // Filter, which every executor path applies first.
            for predicate in residual {
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
            }
            Ok(plan)
        }

        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate: conjoin(conjuncts).expect("non-empty"), // invariant: collect_conjuncts yields at least one conjunct
        }),
    }
}

/// True when `expr` is a reference to the named observation column.
fn is_tsdb_col(expr: &Expr, schema: &Schema, want: usize) -> bool {
    matches!(expr, Expr::Column(c) if schema.resolve(c).is_ok_and(|i| i == want))
}

/// `tag['k']` accessor detection; returns the key.
fn tag_access<'e>(expr: &'e Expr, schema: &Schema) -> Option<&'e str> {
    if let Expr::Index { container, index } = expr {
        if is_tsdb_col(container, schema, 2) {
            if let Expr::Literal(Value::Str(k)) = index.as_ref() {
                return Some(k);
            }
        }
    }
    None
}

fn lit_int(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::Literal(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

fn tighten_start(start: &mut Option<i64>, lo: i64) {
    *start = Some(start.map_or(lo, |s| s.max(lo)));
}

fn tighten_end(end: &mut Option<i64>, hi: i64) {
    *end = Some(end.map_or(hi, |e| e.min(hi)));
}

/// Tries to fold one conjunct into the scan's pushed-down predicates.
/// Returns false when the conjunct must stay as a residual filter.
fn absorb_tsdb_conjunct(
    c: &Expr,
    schema: &Schema,
    name: &mut Option<String>,
    tags: &mut Vec<TagFilter>,
    start: &mut Option<i64>,
    end: &mut Option<i64>,
) -> bool {
    match c {
        Expr::Binary { op: BinaryOp::Eq, left, right } => {
            let (col_side, lit_side) = if matches!(right.as_ref(), Expr::Literal(_)) {
                (left, right)
            } else {
                (right, left)
            };
            // metric_name = 'x'
            if is_tsdb_col(col_side, schema, 1) {
                if let Expr::Literal(Value::Str(s)) = lit_side.as_ref() {
                    if name.is_none() {
                        *name = Some(s.clone());
                        return true;
                    }
                    return false; // second name constraint stays residual
                }
            }
            // tag['k'] = 'v'
            if let Some(k) = tag_access(col_side, schema) {
                if let Expr::Literal(Value::Str(v)) = lit_side.as_ref() {
                    tags.push(TagFilter::Equals(k.to_string(), v.clone()));
                    return true;
                }
            }
            // timestamp = n
            if is_tsdb_col(col_side, schema, 0) {
                if let Some(n) = lit_int(lit_side) {
                    tighten_start(start, n);
                    tighten_end(end, n);
                    return true;
                }
            }
            false
        }
        // metric_name/tag['k'] GLOB 'pat' (and LIKE, translated to glob):
        // the store's find() range-scans the name index over the pattern's
        // literal prefix; tag globs become TagFilter::Glob predicates.
        Expr::Binary { op: op @ (BinaryOp::Like | BinaryOp::Glob), left, right } => {
            let Expr::Literal(Value::Str(pat)) = right.as_ref() else {
                return false;
            };
            let glob_pat = match op {
                BinaryOp::Glob => pat.clone(),
                _ => {
                    // LIKE: `%` ≙ `*`, `_` ≙ `?` (identical matchers).
                    // Literal glob metacharacters in the pattern would
                    // change meaning, so such patterns stay residual.
                    if pat.contains('*') || pat.contains('?') {
                        return false;
                    }
                    pat.replace('%', "*").replace('_', "?")
                }
            };
            if is_tsdb_col(left, schema, 1) {
                if name.is_none() {
                    *name = Some(glob_pat);
                    return true;
                }
                return false;
            }
            if let Some(k) = tag_access(left, schema) {
                // Row semantics match exactly: a missing tag key makes the
                // row predicate NULL (dropped), and TagFilter::Glob
                // requires the key to exist.
                tags.push(TagFilter::Glob(k.to_string(), glob_pat));
                return true;
            }
            false
        }
        // timestamp BETWEEN a AND b (inclusive)
        Expr::Between { expr, low, high, negated: false } => {
            if is_tsdb_col(expr, schema, 0) {
                if let (Some(a), Some(b)) = (lit_int(low), lit_int(high)) {
                    tighten_start(start, a);
                    tighten_end(end, b);
                    return true;
                }
            }
            false
        }
        // timestamp </<=/>/>= n, either operand order.
        Expr::Binary { op, left, right }
            if matches!(op, BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq) =>
        {
            let (col_first, col, lit) = if is_tsdb_col(left, schema, 0) {
                (true, left, right)
            } else if is_tsdb_col(right, schema, 0) {
                (false, right, left)
            } else {
                return false;
            };
            let _ = col;
            let Some(n) = lit_int(lit) else { return false };
            // Normalize to "timestamp OP n".
            let op = if col_first {
                *op
            } else {
                match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    _ => unreachable!(),
                }
            };
            match op {
                BinaryOp::GtEq => tighten_start(start, n),
                // `timestamp > i64::MAX` / `< i64::MIN` are unsatisfiable;
                // saturating the strict bound would silently re-admit the
                // extreme point, so force an inverted (empty) range instead.
                BinaryOp::Gt => match n.checked_add(1) {
                    Some(lo) => tighten_start(start, lo),
                    None => {
                        tighten_start(start, i64::MAX);
                        tighten_end(end, i64::MIN);
                    }
                },
                BinaryOp::LtEq => tighten_end(end, n),
                BinaryOp::Lt => match n.checked_sub(1) {
                    Some(hi) => tighten_end(end, hi),
                    None => {
                        tighten_start(start, i64::MAX);
                        tighten_end(end, i64::MIN);
                    }
                },
                _ => unreachable!(),
            }
            true
        }
        // tag['k'] IS NULL / IS NOT NULL -> tag-key absence / presence.
        Expr::IsNull { expr, negated } => {
            if let Some(k) = tag_access(expr, schema) {
                tags.push(if *negated {
                    TagFilter::HasKey(k.to_string())
                } else {
                    TagFilter::Absent(k.to_string())
                });
                return true;
            }
            false
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Rule 4: projection pruning (TSDB scans)
// ---------------------------------------------------------------------------

/// Pushes the set of referenced column names down to TSDB scans, which then
/// materialize only those observation columns. `None` = everything.
fn prune(plan: LogicalPlan, needs: Option<HashSet<String>>) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, items, hidden } => {
            let mut cols = Vec::new();
            for (e, _) in &items {
                collect_columns(e, &mut cols);
            }
            for e in &hidden {
                collect_columns(e, &mut cols);
            }
            let needs = Some(cols.into_iter().collect());
            LogicalPlan::Project { input: Box::new(prune(*input, needs)), items, hidden }
        }
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            let mut cols = Vec::new();
            for e in group_by.iter().chain(hidden.iter()) {
                collect_columns(e, &mut cols);
            }
            for (e, _) in &items {
                collect_columns(e, &mut cols);
            }
            let needs = Some(cols.into_iter().collect());
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, needs)),
                group_by,
                items,
                hidden,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let needs = needs.map(|mut n| {
                let mut cols = Vec::new();
                collect_columns(&predicate, &mut cols);
                n.extend(cols);
                n
            });
            LogicalPlan::Filter { input: Box::new(prune(*input, needs)), predicate }
        }
        LogicalPlan::Alias { input, alias } => {
            let needs = needs.map(|n| {
                n.into_iter()
                    .map(|name| match name.split_once('.') {
                        Some((head, tail)) if head.eq_ignore_ascii_case(&alias) => tail.to_string(),
                        _ => name,
                    })
                    .collect()
            });
            LogicalPlan::Alias { input: Box::new(prune(*input, needs)), alias }
        }
        LogicalPlan::Join { left, right, kind, on, stats } => {
            let needs = needs.map(|mut n| {
                let mut cols = Vec::new();
                collect_columns(&on, &mut cols);
                n.extend(cols);
                n
            });
            LogicalPlan::Join {
                left: Box::new(prune(*left, needs.clone())),
                right: Box::new(prune(*right, needs)),
                kind,
                on,
                stats,
            }
        }
        LogicalPlan::Sort { input, keys, output_width } => {
            LogicalPlan::Sort { input: Box::new(prune(*input, needs)), keys, output_width }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune(*input, needs)), n }
        }
        LogicalPlan::Exchange { input } => {
            LogicalPlan::Exchange { input: Box::new(prune(*input, needs)) }
        }
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            // Positional name mapping across branches is fragile; keep all.
            inputs: inputs.into_iter().map(|p| prune(p, None)).collect(),
        },
        LogicalPlan::TsdbScan { table, name, tags, start, end, columns } => {
            let columns = match needs {
                None => columns,
                Some(needs) => {
                    let schema = Schema::new(
                        crate::plan::TSDB_COLUMNS.iter().map(|s| s.to_string()).collect(),
                    );
                    let mut keep: Vec<usize> =
                        needs.iter().filter_map(|n| schema.resolve(n).ok()).collect();
                    keep.sort_unstable();
                    keep.dedup();
                    if keep.len() == crate::plan::TSDB_COLUMNS.len() {
                        None
                    } else if keep.is_empty() {
                        // COUNT(*)-style plans still need the row count;
                        // keep the cheapest column.
                        Some(vec![0])
                    } else {
                        Some(keep)
                    }
                }
            };
            LogicalPlan::TsdbScan { table, name, tags, start, end, columns }
        }
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::Unit
        | LogicalPlan::ScanAggregate { .. }) => leaf,
    }
}

// ---------------------------------------------------------------------------
// Rule 7: join-side statistics
// ---------------------------------------------------------------------------

/// Attaches per-side row estimates (and the hash build side they imply) to
/// every `Join` node. Runs after pushdown/pruning so the estimates see the
/// final scan predicates. Purely advisory: the executor's output is
/// bit-identical whichever side it builds on.
fn annotate_join_stats(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Join { left, right, kind, on, .. } => {
            let stats = match (
                crate::plan::estimate_rows(&left, catalog),
                crate::plan::estimate_rows(&right, catalog),
            ) {
                (Some(l), Some(r)) => {
                    Some(crate::plan::JoinStats { left_rows: l, right_rows: r, build_left: l < r })
                }
                _ => None,
            };
            LogicalPlan::Join { left, right, kind, on, stats }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Rule 5: parallelization markers
// ---------------------------------------------------------------------------

/// Wraps partition-parallelizable pipelines in [`LogicalPlan::Exchange`].
fn parallelize(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &|node| {
        let eligible = match &node {
            LogicalPlan::Aggregate { input, group_by, items, hidden } => {
                aggregate_exchange_eligible(input, group_by, items, hidden)
            }
            LogicalPlan::Project { input, items, hidden } => {
                project_exchange_eligible(input, items, hidden)
            }
            _ => false,
        };
        if eligible {
            LogicalPlan::Exchange { input: Box::new(node) }
        } else {
            node
        }
    })
}

/// Walks a chain of `Filter` nodes, requiring every predicate to be
/// vectorizable (the executor evaluates them per morsel); returns the
/// first non-Filter node.
fn peel_supported_filters(mut plan: &LogicalPlan) -> Option<&LogicalPlan> {
    loop {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                if !veval::supported(predicate) {
                    return None;
                }
                plan = input;
            }
            other => return Some(other),
        }
    }
}

/// An aggregate pipeline parallelizes when the executor can run it
/// two-phase: vectorizable group keys, every output either a group key or a
/// plain aggregate call (whose partial states merge), and only
/// vectorizable filters between the aggregate and its source.
pub(crate) fn aggregate_exchange_eligible(
    input: &LogicalPlan,
    group_by: &[Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
) -> bool {
    if peel_supported_filters(input).is_none() {
        return false;
    }
    if !group_by.iter().all(veval::supported) {
        return false;
    }
    items.iter().map(|(e, _)| e).chain(hidden.iter()).all(|e| {
        if group_by.iter().any(|g| g == e) {
            return true;
        }
        match e {
            Expr::Function { name, args } => {
                is_aggregate(name) && args.iter().all(veval::supported)
            }
            _ => false,
        }
    })
}

/// A projection pipeline parallelizes when it is TSDB-scan-rooted (the
/// partitioned source of §4's data-parallel loop) and fully vectorizable —
/// window functions (which read the whole input) never qualify because
/// [`veval::supported`] rejects function calls.
pub(crate) fn project_exchange_eligible(
    input: &LogicalPlan,
    items: &[(Expr, String)],
    hidden: &[Expr],
) -> bool {
    let Some(mut source) = peel_supported_filters(input) else {
        return false;
    };
    while let LogicalPlan::Alias { input, .. } = source {
        source = input;
    }
    if !matches!(source, LogicalPlan::TsdbScan { .. }) {
        return false;
    }
    items.iter().map(|(e, _)| e).chain(hidden.iter()).all(veval::supported)
}

// ---------------------------------------------------------------------------
// Rule 6: scan-level aggregate pushdown
// ---------------------------------------------------------------------------

/// Walks the straight-line spine of the plan converting eligible
/// `(Exchange)? → Aggregate → Filter* → TsdbScan` chains into
/// [`LogicalPlan::ScanAggregate`]. The rewrite deliberately does *not*
/// descend into `Join` sides or `Union` branches: those contexts fall back
/// to the ordinary pipeline (asserted by the plan-shape tests).
fn push_aggregates_into_scans(plan: LogicalPlan) -> LogicalPlan {
    if scan_aggregate_candidate(&plan) {
        return convert_scan_aggregate(plan);
    }
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(push_aggregates_into_scans(*input)), predicate }
        }
        LogicalPlan::Project { input, items, hidden } => LogicalPlan::Project {
            input: Box::new(push_aggregates_into_scans(*input)),
            items,
            hidden,
        },
        LogicalPlan::Aggregate { input, group_by, items, hidden } => LogicalPlan::Aggregate {
            input: Box::new(push_aggregates_into_scans(*input)),
            group_by,
            items,
            hidden,
        },
        LogicalPlan::Alias { input, alias } => {
            LogicalPlan::Alias { input: Box::new(push_aggregates_into_scans(*input)), alias }
        }
        LogicalPlan::Sort { input, keys, output_width } => LogicalPlan::Sort {
            input: Box::new(push_aggregates_into_scans(*input)),
            keys,
            output_width,
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(push_aggregates_into_scans(*input)), n }
        }
        LogicalPlan::Exchange { input } => {
            LogicalPlan::Exchange { input: Box::new(push_aggregates_into_scans(*input)) }
        }
        other => other,
    }
}

/// True when the node is an eligible aggregate-over-scan pipeline.
fn scan_aggregate_candidate(node: &LogicalPlan) -> bool {
    match node {
        LogicalPlan::Exchange { input } => match input.as_ref() {
            LogicalPlan::Aggregate { input, group_by, items, hidden } => {
                scan_aggregate_eligible(input, group_by, items, hidden)
            }
            _ => false,
        },
        LogicalPlan::Aggregate { input, group_by, items, hidden } => {
            scan_aggregate_eligible(input, group_by, items, hidden)
        }
        _ => false,
    }
}

/// Collapses a node [`scan_aggregate_candidate`] accepted.
fn convert_scan_aggregate(node: LogicalPlan) -> LogicalPlan {
    let agg = match node {
        LogicalPlan::Exchange { input } => *input,
        other => other,
    };
    let LogicalPlan::Aggregate { input, group_by, items, hidden } = agg else {
        unreachable!("eligibility matched an aggregate");
    };
    // Peel the (vectorizable) filter chain, outermost first.
    let mut filters = Vec::new();
    let mut cur = *input;
    loop {
        match cur {
            LogicalPlan::Filter { input, predicate } => {
                filters.push(predicate);
                cur = *input;
            }
            other => {
                cur = other;
                break;
            }
        }
    }
    let LogicalPlan::TsdbScan { table, name, tags, start, end, .. } = cur else {
        unreachable!("eligibility checked the source");
    };
    LogicalPlan::ScanAggregate { table, name, tags, start, end, filters, group_by, items, hidden }
}

fn tsdb_schema() -> Schema {
    Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect())
}

/// Splits a `Filter` chain off a plan without the vectorizability check.
fn peel_filter_chain(mut plan: &LogicalPlan) -> (Vec<&Expr>, &LogicalPlan) {
    let mut filters = Vec::new();
    loop {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                filters.push(predicate);
                plan = input;
            }
            other => return (filters, other),
        }
    }
}

/// True when every column reference of `expr` resolves in the observation
/// schema to one of the `allowed` indices.
fn refs_within(expr: &Expr, schema: &Schema, allowed: &[usize]) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    cols.iter().all(|c| schema.resolve(c).is_ok_and(|i| allowed.contains(&i)))
}

/// True when `expr` is a bare reference to observation column `want`.
fn is_obs_column(expr: &Expr, schema: &Schema, want: usize) -> bool {
    matches!(expr, Expr::Column(c) if schema.resolve(c).is_ok_and(|i| i == want))
}

/// True when every reference to the raw `tag` map column sits under an
/// index access (`tag['k']`). A bare `tag` feeding MIN/MAX would make the
/// fold depend on accumulation order (maps are mutually incomparable under
/// `sql_cmp`), which the series-major scan aggregate cannot reproduce.
fn bare_tag_free(expr: &Expr, schema: &Schema) -> bool {
    match expr {
        Expr::Column(c) => !schema.resolve(c).is_ok_and(|i| i == 2),
        Expr::Literal(_) => true,
        Expr::Index { container, index } => {
            let container_ok = match container.as_ref() {
                Expr::Column(c) if schema.resolve(c).is_ok_and(|i| i == 2) => true,
                other => bare_tag_free(other, schema),
            };
            container_ok && bare_tag_free(index, schema)
        }
        Expr::Binary { left, right, .. } => {
            bare_tag_free(left, schema) && bare_tag_free(right, schema)
        }
        Expr::Unary { operand, .. } => bare_tag_free(operand, schema),
        Expr::Function { args, .. } => args.iter().all(|a| bare_tag_free(a, schema)),
        Expr::InList { expr, list, .. } => {
            bare_tag_free(expr, schema) && list.iter().all(|e| bare_tag_free(e, schema))
        }
        Expr::Between { expr, low, high, .. } => {
            bare_tag_free(expr, schema) && bare_tag_free(low, schema) && bare_tag_free(high, schema)
        }
        Expr::IsNull { expr, .. } => bare_tag_free(expr, schema),
        Expr::Case { when_then, else_expr } => {
            when_then.iter().all(|(c, v)| bare_tag_free(c, schema) && bare_tag_free(v, schema))
                && else_expr.as_ref().is_none_or(|e| bare_tag_free(e, schema))
        }
    }
}

/// The eligibility analysis for rule 6: the pipeline must reach a
/// `TsdbScan` through vectorizable filters over observation columns, every
/// group key must be the `timestamp` column (at most once) or an
/// expression over the dictionary-encoded columns, and every output must
/// be a group key or a plain mergeable aggregate call whose arguments are
/// vectorizable expressions over observation columns.
pub(crate) fn scan_aggregate_eligible(
    input: &LogicalPlan,
    group_by: &[Expr],
    items: &[(Expr, String)],
    hidden: &[Expr],
) -> bool {
    let (filters, source) = peel_filter_chain(input);
    if !matches!(source, LogicalPlan::TsdbScan { .. }) {
        return false;
    }
    let schema = tsdb_schema();
    let all_cols = [0usize, 1, 2, 3];
    if !filters.iter().all(|p| veval::supported(p) && refs_within(p, &schema, &all_cols)) {
        return false;
    }
    let mut saw_ts = false;
    for g in group_by {
        if is_obs_column(g, &schema, 0) {
            if saw_ts {
                return false; // a duplicated timestamp key stays on the row engine
            }
            saw_ts = true;
            continue;
        }
        // Dictionary-encoded group key: vectorizable, referencing only
        // metric_name / tag (column-free constants also qualify).
        if !(veval::supported(g) && refs_within(g, &schema, &[1, 2])) {
            return false;
        }
    }
    items.iter().map(|(e, _)| e).chain(hidden.iter()).all(|e| {
        if group_by.iter().any(|g| g == e) {
            return true;
        }
        match e {
            Expr::Function { name, args } => {
                if !is_aggregate(name)
                    || !args
                        .iter()
                        .all(|a| veval::supported(a) && refs_within(a, &schema, &all_cols))
                {
                    return false;
                }
                if matches!(name.as_str(), "MIN" | "MAX") {
                    if !args.iter().all(|a| bare_tag_free(a, &schema)) {
                        return false;
                    }
                    // MIN/MAX folds are order-dependent when the input
                    // stream is not totally ordered (NaN values, mixed
                    // classes): the serial engines accumulate in row
                    // order, the scan aggregate series-major. With a
                    // timestamp group key the two orders coincide (each
                    // group's rows share one timestamp and arrive in
                    // series-rank order); without one, only streams with
                    // a guaranteed total order stay eligible — the Int
                    // timestamp column or per-series-constant dictionary
                    // expressions (Str/Bool/NULL, never NaN). A bare
                    // `value` (or computed float) stream falls back.
                    if !saw_ts
                        && !args.iter().all(|a| {
                            is_obs_column(a, &schema, 0) || refs_within(a, &schema, &[1, 2])
                        })
                    {
                        return false;
                    }
                }
                true
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::build;
    use crate::table::Table;
    use explainit_tsdb::{SeriesKey, Tsdb};

    fn tsdb_catalog() -> Catalog {
        let mut db = Tsdb::new();
        let key = SeriesKey::new("cpu").with_tag("host", "web-1");
        db.insert(&key, 0, 1.0);
        db.insert(&key, 60, 2.0);
        let mut c = Catalog::new();
        c.register_tsdb("tsdb", &db);
        c.register("plain", Table::from_rows(&["x"], vec![vec![Value::Int(1)]]));
        c
    }

    fn optimized(c: &Catalog, sql: &str) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        optimize(build(c, &q).unwrap(), c).unwrap()
    }

    /// Optimizes with rule 6 (scan-aggregate pushdown) disabled, so the
    /// rule-1..5 shape assertions stay focused.
    fn optimized_no_sa(c: &Catalog, sql: &str) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        optimize_with(
            build(c, &q).unwrap(),
            c,
            &OptimizeOptions { scan_aggregate: false, ..OptimizeOptions::default() },
        )
        .unwrap()
    }

    /// Strips an `Exchange` parallelization marker (rule 5, tested on its
    /// own) so the rule-1..4 shape assertions stay focused.
    fn unwrap_exchange(p: LogicalPlan) -> LogicalPlan {
        match p {
            LogicalPlan::Exchange { input } => *input,
            other => other,
        }
    }

    #[test]
    fn constant_folding_collapses_literals() {
        assert_eq!(
            fold_expr(Expr::Binary {
                op: BinaryOp::Add,
                left: Box::new(Expr::lit(1i64)),
                right: Box::new(Expr::lit(2i64)),
            }),
            Expr::lit(3i64)
        );
        // TRUE AND x simplifies structurally.
        assert_eq!(
            fold_expr(Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(Expr::lit(true)),
                right: Box::new(Expr::col("v")),
            }),
            Expr::col("v")
        );
        // Runtime errors are not folded away.
        let bad = Expr::Binary {
            op: BinaryOp::Add,
            left: Box::new(Expr::lit("a")),
            right: Box::new(Expr::Literal(Value::Map(Default::default()))),
        };
        assert_eq!(fold_expr(bad.clone()), bad);
    }

    #[test]
    fn tsdb_scan_absorbs_name_tag_and_time() {
        let c = tsdb_catalog();
        let p = optimized(
            &c,
            "SELECT value FROM tsdb WHERE metric_name = 'cpu' AND tag['host'] = 'web-1' \
             AND timestamp BETWEEN 0 AND 100",
        );
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { name, tags, start, end, .. } = *input else {
            panic!("expected tsdb scan, got {input:?}")
        };
        assert_eq!(name.as_deref(), Some("cpu"));
        assert_eq!(tags, vec![TagFilter::Equals("host".into(), "web-1".into())]);
        assert_eq!((start, end), (Some(0), Some(100)));
    }

    #[test]
    fn tsdb_residual_keeps_unpushable_conjuncts() {
        let c = tsdb_catalog();
        let p = optimized(&c, "SELECT value FROM tsdb WHERE metric_name = 'cpu' AND value > 1.5");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::Filter { input, predicate } = *input else {
            panic!("expected residual filter, got {input:?}")
        };
        assert!(
            matches!(*input, LogicalPlan::TsdbScan { ref name, .. } if name.as_deref() == Some("cpu"))
        );
        let mut cols = Vec::new();
        collect_columns(&predicate, &mut cols);
        assert_eq!(cols, vec!["value".to_string()]);
    }

    #[test]
    fn tag_null_checks_become_index_predicates() {
        let c = tsdb_catalog();
        let p = optimized(&c, "SELECT value FROM tsdb WHERE tag['host'] IS NOT NULL");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { tags, .. } = *input else { panic!("expected scan") };
        assert_eq!(tags, vec![TagFilter::HasKey("host".into())]);
    }

    #[test]
    fn timestamp_comparisons_tighten_range() {
        let c = tsdb_catalog();
        let p = optimized(
            &c,
            "SELECT value FROM tsdb WHERE timestamp >= 10 AND timestamp < 50 AND 20 <= timestamp",
        );
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { start, end, .. } = *input else { panic!("expected scan") };
        assert_eq!((start, end), (Some(20), Some(49)));
    }

    #[test]
    fn pruning_drops_unreferenced_scan_columns() {
        let c = tsdb_catalog();
        let p = optimized(&c, "SELECT timestamp, value FROM tsdb WHERE metric_name = 'cpu'");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { columns, .. } = *input else { panic!("expected scan") };
        // metric_name was absorbed into the scan filter, so only
        // timestamp + value survive; the tag maps are never cloned.
        assert_eq!(columns, Some(vec![0, 3]));
    }

    #[test]
    fn filter_splits_across_inner_join() {
        let mut c = tsdb_catalog();
        c.register("l", Table::from_rows(&["k", "a"], vec![]));
        c.register("r", Table::from_rows(&["k", "b"], vec![]));
        let p = optimized(&c, "SELECT l.a FROM l JOIN r ON l.k = r.k WHERE l.a > 1 AND r.b < 2");
        let LogicalPlan::Project { input, .. } = p else { panic!("expected project") };
        let LogicalPlan::Join { left, right, .. } = *input else {
            panic!("expected join on top (filters pushed), got {input:?}")
        };
        // Both sides got their conjunct (below the Alias nodes).
        let LogicalPlan::Alias { input: li, .. } = *left else { panic!("expected alias") };
        assert!(matches!(*li, LogicalPlan::Filter { .. }));
        let LogicalPlan::Alias { input: ri, .. } = *right else { panic!("expected alias") };
        assert!(matches!(*ri, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn left_join_does_not_push_into_right_side() {
        let mut c = tsdb_catalog();
        c.register("l", Table::from_rows(&["k", "a"], vec![]));
        c.register("r", Table::from_rows(&["k", "b"], vec![]));
        let p = optimized(&c, "SELECT l.a FROM l LEFT JOIN r ON l.k = r.k WHERE r.b < 2");
        let LogicalPlan::Project { input, .. } = p else { panic!("expected project") };
        assert!(
            matches!(*input, LogicalPlan::Filter { .. }),
            "right-side conjunct must stay above a LEFT join"
        );
    }

    #[test]
    fn filter_pushes_through_subquery_projection() {
        let c = tsdb_catalog();
        let p = optimized(&c, "SELECT y FROM (SELECT x AS y FROM plain) s WHERE y > 0");
        // The filter must sit below the subquery's Project, directly on the
        // scan, rewritten in terms of x.
        let LogicalPlan::Project { input: outer, .. } = p else { panic!("expected project") };
        let LogicalPlan::Project { input, .. } = *outer else { panic!("expected inner project") };
        let LogicalPlan::Filter { predicate, input } = *input else {
            panic!("expected pushed filter, got {input:?}")
        };
        assert!(matches!(*input, LogicalPlan::Scan { .. }));
        let mut cols = Vec::new();
        collect_columns(&predicate, &mut cols);
        assert_eq!(cols, vec!["x".to_string()]);
    }

    #[test]
    fn filter_never_sinks_through_window_projections() {
        let c = tsdb_catalog();
        // LAG reads the whole input row set; pushing `k > 0` below the
        // projection would shrink its window and change results.
        let p = optimized(
            &c,
            "SELECT prev FROM (SELECT x AS k, LAG(x) AS prev FROM plain) s WHERE k > 0",
        );
        let LogicalPlan::Project { input: outer, .. } = p else { panic!("expected project") };
        let LogicalPlan::Filter { input, .. } = *outer else {
            panic!("filter must stay above the window projection, got {outer:?}")
        };
        let LogicalPlan::Project { input, .. } = *input else { panic!("expected inner project") };
        assert!(matches!(*input, LogicalPlan::Scan { .. }), "nothing may sink below");
    }

    #[test]
    fn glob_and_like_patterns_push_into_the_scan() {
        let c = tsdb_catalog();
        // metric_name GLOB with a literal prefix becomes the scan's name
        // pattern (served by a name-index range scan in the store).
        let p = optimized(&c, "SELECT value FROM tsdb WHERE metric_name GLOB 'c*'");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { name, .. } = *input else {
            panic!("expected scan, got {input:?}")
        };
        assert_eq!(name.as_deref(), Some("c*"));

        // tag['k'] LIKE translates %/_ to */? and lands in the tag filters.
        let p = optimized(&c, "SELECT value FROM tsdb WHERE tag['host'] LIKE 'web-%'");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        let LogicalPlan::TsdbScan { tags, .. } = *input else { panic!("expected scan") };
        assert_eq!(tags, vec![TagFilter::Glob("host".into(), "web-*".into())]);

        // A LIKE pattern containing literal glob metacharacters must stay
        // a residual filter (translation would change its meaning).
        let p = optimized(&c, "SELECT value FROM tsdb WHERE tag['host'] LIKE 'w*b%'");
        let LogicalPlan::Project { input, .. } = unwrap_exchange(p) else {
            panic!("expected project")
        };
        assert!(matches!(*input, LogicalPlan::Filter { .. }), "expected residual, got {input:?}");
    }

    #[test]
    fn parallelize_marks_mergeable_aggregates() {
        let c = tsdb_catalog();
        let p = optimized_no_sa(
            &c,
            "SELECT timestamp, AVG(value) AS m, COUNT(*) AS n FROM tsdb \
             WHERE metric_name = 'cpu' GROUP BY timestamp",
        );
        let LogicalPlan::Exchange { input } = p else { panic!("expected exchange, got {p:?}") };
        assert!(matches!(*input, LogicalPlan::Aggregate { .. }));
        // With rule 6 on, the same pipeline collapses into the scan.
        let p = optimized(
            &c,
            "SELECT timestamp, AVG(value) AS m, COUNT(*) AS n FROM tsdb \
             WHERE metric_name = 'cpu' GROUP BY timestamp",
        );
        assert!(matches!(p, LogicalPlan::ScanAggregate { .. }), "got {p:?}");
    }

    #[test]
    fn scan_aggregate_absorbs_filters_and_scan_predicates() {
        let c = tsdb_catalog();
        let p = optimized(
            &c,
            "SELECT timestamp, tag['host'] AS h, AVG(value) AS m FROM tsdb \
             WHERE metric_name = 'cpu' AND timestamp BETWEEN 0 AND 100 AND value > 0.5 \
             GROUP BY timestamp, tag['host']",
        );
        let LogicalPlan::ScanAggregate { name, start, end, filters, group_by, .. } = p else {
            panic!("expected scan aggregate, got {p:?}")
        };
        assert_eq!(name.as_deref(), Some("cpu"));
        assert_eq!((start, end), (Some(0), Some(100)));
        assert_eq!(filters.len(), 1, "the value conjunct stays residual");
        assert_eq!(group_by.len(), 2);
    }

    #[test]
    fn scan_aggregate_falls_back_for_ineligible_shapes() {
        let c = tsdb_catalog();
        // A `value` group key is not dictionary-encoded.
        let p = optimized(&c, "SELECT value, COUNT(*) AS n FROM tsdb GROUP BY value");
        assert!(!matches!(p, LogicalPlan::ScanAggregate { .. }), "got {p:?}");
        // Non-mergeable output expressions stay on the row engines.
        let p = optimized(&c, "SELECT AVG(value) * 2 AS m FROM tsdb GROUP BY timestamp");
        assert!(!matches!(p, LogicalPlan::ScanAggregate { .. }), "got {p:?}");
        // MIN over the raw tag map would be accumulation-order dependent.
        let p = optimized(&c, "SELECT MIN(tag) AS t FROM tsdb GROUP BY timestamp");
        assert!(!matches!(p, LogicalPlan::ScanAggregate { .. }), "got {p:?}");
        // ...but MIN over an indexed tag is fine.
        let p = optimized(&c, "SELECT MIN(tag['host']) AS h FROM tsdb GROUP BY timestamp");
        assert!(matches!(p, LogicalPlan::ScanAggregate { .. }), "got {p:?}");
    }

    #[test]
    fn parallelize_skips_non_mergeable_aggregate_outputs() {
        let c = tsdb_catalog();
        // AVG(x) * 2 is not a plain aggregate call: its partial states
        // cannot merge, so the pipeline stays serial.
        let p = optimized(&c, "SELECT AVG(x) * 2 AS m FROM plain GROUP BY x");
        assert!(matches!(p, LogicalPlan::Aggregate { .. }), "got {p:?}");
        // Window projections stay serial too (they read the whole input).
        let p = optimized(&c, "SELECT LAG(value) AS prev FROM tsdb");
        assert!(matches!(p, LogicalPlan::Project { .. }), "got {p:?}");
    }

    #[test]
    fn aggregate_only_passes_group_key_conjuncts() {
        let c = tsdb_catalog();
        let p = optimized(
            &c,
            "SELECT m FROM (SELECT x AS k, AVG(x) AS m FROM plain GROUP BY x) s WHERE m > 0 AND k = 1",
        );
        // k = 1 (a group key) sinks below the aggregate; m > 0 stays above.
        let LogicalPlan::Project { input: outer, .. } = p else { panic!("expected project") };
        let LogicalPlan::Filter { predicate, input } = *outer else { panic!("expected filter") };
        let mut cols = Vec::new();
        collect_columns(&predicate, &mut cols);
        assert_eq!(cols, vec!["m".to_string()]);
        let LogicalPlan::Aggregate { input, .. } = unwrap_exchange(*input) else {
            panic!("expected aggregate")
        };
        assert!(matches!(*input, LogicalPlan::Filter { .. }), "group-key conjunct pushed below");
    }
}
