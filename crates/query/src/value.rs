//! The runtime value type of the query engine.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// Exact `i64` vs `f64` SQL comparison: never rounds the integer through
/// `as f64` (which is lossy above 2^53). NaN is incomparable (`None`);
/// floats at or beyond ±2^63 order strictly outside every `i64`; finite
/// in-range floats compare against their truncation, with the fractional
/// part breaking the tie.
pub(crate) fn cmp_i64_f64(a: i64, b: f64) -> Option<Ordering> {
    if b.is_nan() {
        return None;
    }
    const TWO63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exactly representable
    if b >= TWO63 {
        return Some(Ordering::Less); // every i64 < b (covers +inf)
    }
    if b < -TWO63 {
        return Some(Ordering::Greater); // every i64 > b (covers -inf)
    }
    let t = b.trunc();
    let ti = t as i64; // exact: t ∈ [−2^63, 2^63)
    match a.cmp(&ti) {
        Ordering::Equal => {
            // a == trunc(b): the fractional part decides. trunc rounds
            // toward zero, so b > t means b has a positive fraction
            // (a < b) and b < t a negative one (a > b).
            if b > t {
                Some(Ordering::Less)
            } else if b < t {
                Some(Ordering::Greater)
            } else {
                Some(Ordering::Equal)
            }
        }
        ord => Some(ord),
    }
}

/// A dynamically typed SQL value.
///
/// `Map` carries the TSDB tag set (`tag['host']`); `List` is the result of
/// `SPLIT` and supports integer indexing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (timestamps, counts).
    Int(i64),
    /// 64-bit float (metric values).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean (comparison results).
    Bool(bool),
    /// String-to-string map (tag sets).
    Map(BTreeMap<String, String>),
    /// List of values (SPLIT results).
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats coerce; bools are 0/1; everything else
    /// is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Integer view (floats with no fractional part coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view (only true strings; use [`Value::render`] for display).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for WHERE: NULL and false are not-true (SQL three-valued
    /// logic collapses to "row kept iff predicate is true").
    pub fn is_true(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            _ => false,
        }
    }

    /// SQL comparison. NULLs compare as "unknown" (`None`); numeric types
    /// compare across Int/Float; strings compare lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            // Exact numeric arms: i64 values above 2^53 must not round
            // through f64 (the generic as_f64 arm below would collapse
            // 2^53 and 2^53+1).
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => cmp_i64_f64(*a, *b),
            (Value::Float(a), Value::Int(b)) => cmp_i64_f64(*b, *a).map(Ordering::reverse),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Ordering for ORDER BY / grouping keys: total, with NULLs first, then
    /// by type class, Int/Float merged numerically.
    pub fn order_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::List(_) => 4,
                Value::Map(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.order_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => a.cmp(b),
            _ if class(self) == 2 && class(other) == 2 => {
                let a = self.as_f64().expect("numeric"); // invariant: both classes verified numeric by the match
                let b = other.as_f64().expect("numeric"); // invariant: both classes verified numeric by the match
                a.total_cmp(&b)
            }
            _ => class(self).cmp(&class(other)),
        }
    }

    /// Key form for GROUP BY hashing (string-rendered; numeric values are
    /// canonicalised so `1` and `1.0` group together).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".into(),
            Value::Bool(b) => format!("\u{0}b{b}"),
            Value::Int(i) => format!("\u{0}n{}", *i as f64),
            Value::Float(f) => format!("\u{0}n{f}"),
            Value::Str(s) => format!("\u{0}s{s}"),
            Value::List(items) => {
                let mut out = String::from("\u{0}l[");
                for item in items {
                    out.push_str(&item.group_key());
                    out.push(',');
                }
                out.push(']');
                out
            }
            Value::Map(m) => format!("\u{0}m{m:?}"),
        }
    }

    /// Human-readable rendering (used by report printing and CONCAT).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Map(m) => {
                let inner: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{{{}}}", inner.join(","))
            }
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(","))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn sql_cmp_mixed_numerics() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::str("b")), Some(Ordering::Less));
    }

    #[test]
    fn sql_cmp_is_exact_above_2_pow_53() {
        let big = (1i64 << 53) + 1; // rounds down to 2^53 as f64
        assert_eq!(
            Value::Int(big).sql_cmp(&Value::Float((1i64 << 53) as f64)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float((1i64 << 53) as f64).sql_cmp(&Value::Int(big)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(big).sql_cmp(&Value::Int(1 << 53)), Some(Ordering::Greater));
        // i64::MAX is below 2^63 = (i64::MAX as f64).
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Float(i64::MAX as f64)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).sql_cmp(&Value::Float(i64::MIN as f64)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_nan_and_infinities() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(f64::NAN)), None);
        assert_eq!(Value::Float(f64::NAN).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Float(f64::NAN).sql_cmp(&Value::Float(f64::NAN)), None);
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).sql_cmp(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn cmp_i64_f64_fraction_tiebreak() {
        assert_eq!(cmp_i64_f64(3, 3.5), Some(Ordering::Less));
        assert_eq!(cmp_i64_f64(3, 2.5), Some(Ordering::Greater));
        assert_eq!(cmp_i64_f64(-3, -3.5), Some(Ordering::Greater));
        assert_eq!(cmp_i64_f64(-3, -2.5), Some(Ordering::Less));
        assert_eq!(cmp_i64_f64(-4, -3.5), Some(Ordering::Less));
        assert_eq!(cmp_i64_f64(0, -0.0), Some(Ordering::Equal));
    }

    #[test]
    fn order_cmp_total_with_nulls_first() {
        let mut vals =
            [Value::str("z"), Value::Int(5), Value::Null, Value::Float(1.5), Value::Bool(true)];
        vals.sort_by(|a, b| a.order_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::str("z"));
    }

    #[test]
    fn group_key_unifies_int_and_float() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::str("1").group_key());
        assert_ne!(Value::Null.group_key(), Value::str("null").group_key());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(Value::Int(7).is_true());
        assert!(!Value::Int(0).is_true());
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(1.5).render(), "1.5");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::str("hi").render(), "hi");
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "1".to_string());
        assert_eq!(Value::Map(m).render(), "{a=1}");
        assert_eq!(Value::List(vec![Value::Int(1), Value::str("x")]).render(), "[1,x]");
    }
}
