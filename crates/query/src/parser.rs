//! Recursive-descent parser for the SQL subset.

use crate::ast::{
    BinaryOp, CreateFamily, ExplainFor, Expr, JoinClause, JoinKind, OrderKey, Query, SelectItem,
    SelectSpans, SelectStmt, Statement, TableRef, UnaryOp,
};
use crate::lexer::{tokenize_spanned, Token};
use crate::value::Value;
use crate::{QueryError, Result};

/// Words that terminate expressions / cannot be bare aliases.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "UNION", "JOIN", "INNER", "LEFT", "FULL",
    "OUTER", "ON", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "IS", "NULL", "LIKE", "GLOB", "CASE",
    "WHEN", "THEN", "ELSE", "END", "ASC", "DESC", "BY", "ALL", "TRUE", "FALSE", "HAVING",
    "EXPLAIN",
];

/// Parses a SQL string into a [`Query`]. A leading `EXPLAIN` keyword marks
/// the query for plan rendering instead of execution.
pub fn parse_query(sql: &str) -> Result<Query> {
    let mut p = Parser::new(sql)?;
    let explain = p.eat_kw("EXPLAIN");
    let mut q = p.query()?;
    q.explain = explain;
    if p.pos != p.tokens.len() {
        return Err(QueryError::Parse(format!(
            "unexpected trailing input at token {:?} at byte {}",
            p.tokens[p.pos],
            p.here(),
        )));
    }
    Ok(q)
}

/// Parses exactly one [`Statement`] (a trailing `;` is allowed; anything
/// beyond it is rejected).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut statements = parse_script(sql)?;
    match statements.len() {
        1 => Ok(statements.pop().expect("length checked")), // invariant: length checked by the match arm
        0 => Err(QueryError::Parse("empty statement".into())),
        n => Err(QueryError::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parses a `;`-separated script into its statements. Empty statements
/// (stray or trailing semicolons) are skipped; parse errors name the
/// 1-based statement they occurred in.
///
/// The RCA statement keywords (`CREATE`, `FAMILY`, `FOR`, `GIVEN`,
/// `USING`, `SCORER`, `TOP`, `SHOW`, `DROP`, `WITH`, ...) are recognised
/// *positionally*, not reserved: inside ordinary queries they all remain
/// usable as table names, column names and aliases.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_token(&Token::Semicolon) {}
        if p.peek().is_none() {
            break;
        }
        let idx = out.len() + 1;
        out.push(p.statement().map_err(|e| at_statement(idx, e))?);
        if p.peek().is_none() {
            break;
        }
        if !p.eat_token(&Token::Semicolon) {
            return Err(at_statement(
                idx,
                QueryError::Parse(format!(
                    "unexpected trailing input at token {:?} (statements are separated by ';')",
                    p.peek()
                )),
            ));
        }
    }
    Ok(out)
}

/// Labels a parse error with the 1-based statement index of a script.
fn at_statement(idx: usize, e: QueryError) -> QueryError {
    match e {
        QueryError::Parse(m) => QueryError::Parse(format!("statement {idx}: {m}")),
        other => other,
    }
}

struct Parser {
    tokens: Vec<Token>,
    /// Byte offset of each token in the source text (parallel to `tokens`).
    spans: Vec<usize>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        let (tokens, spans) = tokenize_spanned(sql)?.into_iter().unzip();
        Ok(Parser { tokens, spans, pos: 0 })
    }

    /// Byte offset of the token about to be consumed (end of input falls
    /// back to the last token's offset).
    fn here(&self) -> usize {
        self.spans.get(self.pos).copied().unwrap_or_else(|| self.spans.last().copied().unwrap_or(0))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected keyword {kw}, found {:?} at byte {}",
                self.peek(),
                self.here(),
            )))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {t:?}, found {:?} at byte {}",
                self.peek(),
                self.here(),
            )))
        }
    }

    fn peek_is_reserved(&self) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)))
    }

    fn ident(&mut self) -> Result<String> {
        let at = self.here();
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                Err(QueryError::Parse(format!("expected identifier, found {other:?} at byte {at}")))
            }
        }
    }

    /// True when the next two tokens are the given keywords — the
    /// two-token lookahead that keeps every statement keyword usable as a
    /// plain identifier elsewhere.
    fn peek_kws(&self, first: &str, second: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(first)) && self.peek2().is_some_and(|t| t.is_kw(second))
    }

    /// A family / scorer name: a bare identifier, or a string literal for
    /// names that are not valid identifiers (`'disk{host=a}'`).
    fn object_name(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::StringLit(s)) => Ok(s),
            other => Err(QueryError::Parse(format!("expected a name, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kws("CREATE", "FAMILY") {
            self.pos += 2;
            return self.create_family();
        }
        if self.peek_kws("DROP", "FAMILY") {
            self.pos += 2;
            return Ok(Statement::DropFamily { name: self.object_name()? });
        }
        if self.peek_kws("SHOW", "FAMILIES") {
            self.pos += 2;
            return Ok(Statement::ShowFamilies);
        }
        if self.peek_kws("SHOW", "TABLES") {
            self.pos += 2;
            return Ok(Statement::ShowTables);
        }
        if self.peek_kws("EXPLAIN", "FOR") {
            self.pos += 2;
            return self.explain_for();
        }
        // Anything else is an ordinary (possibly EXPLAIN-prefixed) query.
        let explain = self.eat_kw("EXPLAIN");
        let mut q = self.query()?;
        q.explain = explain;
        Ok(Statement::Query(q))
    }

    /// `CREATE FAMILY <name> [WITH (k = v, ...)] AS <query>` (the leading
    /// keywords are already consumed).
    fn create_family(&mut self) -> Result<Statement> {
        let name = self.object_name()?;
        let mut options = Vec::new();
        if self.eat_kw("WITH") {
            self.expect_token(&Token::LParen)?;
            loop {
                let key = self.ident()?.to_lowercase();
                self.expect_token(&Token::Eq)?;
                let value = match self.advance() {
                    Some(Token::StringLit(s)) | Some(Token::Ident(s)) => Value::Str(s),
                    Some(Token::IntLit(n)) => Value::Int(n),
                    Some(Token::FloatLit(f)) => Value::Float(f),
                    other => {
                        return Err(QueryError::Parse(format!(
                            "expected an option value after {key} =, found {other:?}"
                        )))
                    }
                };
                options.push((key, value));
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        self.expect_kw("AS")?;
        let query = self.query()?;
        Ok(Statement::CreateFamily(CreateFamily { name, options, query }))
    }

    /// `EXPLAIN FOR <target> [GIVEN a, b] [USING SCORER s] [TOP k]` (the
    /// leading keywords are already consumed).
    fn explain_for(&mut self) -> Result<Statement> {
        let target = self.object_name()?;
        let mut given = Vec::new();
        if self.eat_kw("GIVEN") {
            given.push(self.object_name()?);
            while self.eat_token(&Token::Comma) {
                given.push(self.object_name()?);
            }
        }
        let scorer = if self.eat_kw("USING") {
            self.expect_kw("SCORER")?;
            Some(self.object_name()?)
        } else {
            None
        };
        let top = if self.eat_kw("TOP") {
            match self.advance() {
                Some(Token::IntLit(n)) if n > 0 => Some(n as usize),
                other => {
                    return Err(QueryError::Parse(format!(
                        "TOP expects a positive integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::ExplainFor(ExplainFor { target, given, scorer, top }))
    }

    fn query(&mut self) -> Result<Query> {
        let mut selects = vec![self.select()?];
        while self.eat_kw("UNION") {
            // UNION ALL and plain UNION are both bag semantics here; the
            // paper's stage-one queries use UNION of disjoint families.
            self.eat_kw("ALL");
            selects.push(self.select()?);
        }
        Ok(Query { selects, explain: false })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let mut spans = SelectSpans { select: self.here(), ..SelectSpans::default() };
        self.expect_kw("SELECT")?;
        spans.items.push(self.here());
        let mut items = vec![self.select_item()?];
        while self.eat_token(&Token::Comma) {
            spans.items.push(self.here());
            items.push(self.select_item()?);
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("FROM") {
            spans.from = self.here();
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else if self.peek().is_some_and(|t| t.is_kw("INNER")) {
                    self.pos += 1;
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.peek().is_some_and(|t| t.is_kw("LEFT")) {
                    self.pos += 1;
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.peek().is_some_and(|t| t.is_kw("FULL")) {
                    self.pos += 1;
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::FullOuter
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                spans.join_ons.push(self.here());
                let on = self.expr()?;
                joins.push(JoinClause { kind, table, on });
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            spans.where_clause = self.here();
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            spans.group_by.push(self.here());
            group_by.push(self.expr()?);
            while self.eat_token(&Token::Comma) {
                spans.group_by.push(self.here());
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                spans.order_by.push(self.here());
                let expr = self.expr()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::IntLit(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(QueryError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt { items, from, joins, where_clause, group_by, order_by, limit, spans })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if !self.peek_is_reserved() {
            // Bare alias: a non-reserved identifier right after the expr.
            match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_token(&Token::LParen) {
            let query = self.query()?;
            self.expect_token(&Token::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if !self.peek_is_reserved() {
            if let Some(Token::Ident(_)) = self.peek() {
                return Ok(Some(self.ident()?));
            }
        }
        Ok(None)
    }

    // ---- expressions, precedence climbing --------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, operand: Box::new(operand) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // NOT IN / NOT BETWEEN / NOT LIKE / NOT GLOB.
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && self.peek2().is_some_and(|t| {
                t.is_kw("IN") || t.is_kw("BETWEEN") || t.is_kw("LIKE") || t.is_kw("GLOB")
            }) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        for (kw, op) in [("LIKE", BinaryOp::Like), ("GLOB", BinaryOp::Glob)] {
            if self.eat_kw(kw) {
                let right = self.additive()?;
                let matched = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
                return Ok(if negated {
                    Expr::Unary { op: UnaryOp::Not, operand: Box::new(matched) }
                } else {
                    matched
                });
            }
        }
        if negated {
            return Err(QueryError::Parse("dangling NOT before comparison".into()));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_token(&Token::Minus) {
            let operand = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, operand: Box::new(operand) });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat_token(&Token::LBracket) {
            let index = self.expr()?;
            self.expect_token(&Token::RBracket)?;
            e = Expr::Index { container: Box::new(e), index: Box::new(index) };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::IntLit(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Some(Token::FloatLit(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("CASE") {
                    self.pos += 1;
                    return self.case_expr();
                }
                // Function call?
                if self.peek2() == Some(&Token::LParen) {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if !self.eat_token(&Token::RParen) {
                        loop {
                            // COUNT(*).
                            if self.peek() == Some(&Token::Star) {
                                self.pos += 1;
                                args.push(Expr::Literal(Value::Int(1)));
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect_token(&Token::RParen)?;
                    }
                    return Ok(Expr::Function { name: name.to_uppercase(), args });
                }
                // Qualified column t.c?
                self.pos += 1;
                if self.eat_token(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(format!("{name}.{col}")));
                }
                Ok(Expr::Column(name))
            }
            other => Err(QueryError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut when_then = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let result = self.expr()?;
            when_then.push((cond, result));
        }
        if when_then.is_empty() {
            return Err(QueryError::Parse("CASE requires at least one WHEN arm".into()));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { when_then, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse_query("SELECT a FROM t").unwrap();
        assert_eq!(q.selects.len(), 1);
        let s = &q.selects[0];
        assert_eq!(s.items.len(), 1);
        assert!(matches!(
            s.from,
            Some(TableRef::Named { ref name, .. }) if name == "t"
        ));
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = parse_query("SELECT a AS x, b y FROM t").unwrap();
        let items = &q.selects[0].items;
        match (&items[0], &items[1]) {
            (SelectItem::Expr { alias: Some(x), .. }, SelectItem::Expr { alias: Some(y), .. }) => {
                assert_eq!(x, "x");
                assert_eq!(y, "y");
            }
            other => panic!("unexpected items {other:?}"),
        }
    }

    #[test]
    fn full_clause_stack() {
        let q = parse_query(
            "SELECT ts, AVG(v) AS m FROM t WHERE ts BETWEEN 0 AND 100 \
             GROUP BY ts ORDER BY ts ASC LIMIT 10",
        )
        .unwrap();
        let s = &q.selects[0];
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].ascending);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn union_all_of_selects() {
        let q =
            parse_query("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM w").unwrap();
        assert_eq!(q.selects.len(), 3);
    }

    #[test]
    fn joins_parse() {
        let q = parse_query(
            "SELECT * FROM a FULL OUTER JOIN b ON a.ts = b.ts LEFT JOIN c ON a.ts = c.ts \
             JOIN d ON a.ts = d.ts",
        )
        .unwrap();
        let joins = &q.selects[0].joins;
        assert_eq!(joins.len(), 3);
        assert_eq!(joins[0].kind, JoinKind::FullOuter);
        assert_eq!(joins[1].kind, JoinKind::Left);
        assert_eq!(joins[2].kind, JoinKind::Inner);
    }

    #[test]
    fn subquery_in_from() {
        let q = parse_query("SELECT x FROM (SELECT a AS x FROM t) sub").unwrap();
        match &q.selects[0].from {
            Some(TableRef::Subquery { alias: Some(a), .. }) => assert_eq!(a, "sub"),
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn map_and_list_indexing() {
        let q = parse_query("SELECT tag['host'], SPLIT(h, '-')[0] FROM tsdb").unwrap();
        let items = &q.selects[0].items;
        assert!(matches!(items[0], SelectItem::Expr { expr: Expr::Index { .. }, .. }));
        assert!(matches!(items[1], SelectItem::Expr { expr: Expr::Index { .. }, .. }));
    }

    #[test]
    fn precedence_and_parens() {
        let q = parse_query("SELECT 1 + 2 * 3").unwrap();
        match &q.selects[0].items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q2 = parse_query("SELECT (1 + 2) * 3").unwrap();
        match &q2.selects[0].items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Mul, left, .. }, .. } => {
                assert!(matches!(**left, Expr::Binary { op: BinaryOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence() {
        // a OR b AND c == a OR (b AND c)
        let q = parse_query("SELECT * FROM t WHERE a OR b AND c").unwrap();
        match q.selects[0].where_clause.as_ref().unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_between_null_like() {
        let q = parse_query(
            "SELECT * FROM t WHERE a IN ('x', 'y') AND b NOT IN (1) AND \
             c BETWEEN 1 AND 2 AND d IS NOT NULL AND e LIKE 'web%' AND f NOT LIKE '_x'",
        )
        .unwrap();
        assert!(q.selects[0].where_clause.is_some());
    }

    #[test]
    fn case_expression() {
        let q = parse_query("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t").unwrap();
        assert!(matches!(q.selects[0].items[0], SelectItem::Expr { expr: Expr::Case { .. }, .. }));
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT COUNT(*) FROM t").unwrap();
        match &q.selects[0].items[0] {
            SelectItem::Expr { expr: Expr::Function { name, args }, .. } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_prefix_sets_flag() {
        let q = parse_query("EXPLAIN SELECT a FROM t").unwrap();
        assert!(q.explain);
        let q = parse_query("SELECT a FROM t").unwrap();
        assert!(!q.explain);
        // EXPLAIN must prefix a whole query, not appear mid-stream.
        assert!(parse_query("SELECT a FROM t EXPLAIN").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT a FROM t extra garbage !").is_err());
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("FROM t").is_err());
    }

    #[test]
    fn qualified_columns() {
        let q = parse_query("SELECT t.a, u.b FROM t JOIN u ON t.k = u.k").unwrap();
        match &q.selects[0].items[0] {
            SelectItem::Expr { expr: Expr::Column(c), .. } => assert_eq!(c, "t.a"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_appendix_c_target_query_parses() {
        let sql = "SELECT timestamp, tag['pipeline_name'], AVG(value) as runtime_sec \
                   FROM tsdb WHERE metric_name = 'pipeline_runtime' \
                   AND timestamp BETWEEN 0 AND 86400 \
                   GROUP BY timestamp, tag['pipeline_name'] ORDER BY timestamp ASC";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.selects[0].group_by.len(), 2);
    }

    #[test]
    fn create_family_with_options() {
        let s = parse_statement(
            "CREATE FAMILY disk WITH (layout = 'long', ts = 'timestamp', family = metric_name) \
             AS SELECT timestamp, metric_name, tag, value FROM tsdb",
        )
        .unwrap();
        match s {
            Statement::CreateFamily(cf) => {
                assert_eq!(cf.name, "disk");
                assert_eq!(cf.options.len(), 3);
                assert_eq!(cf.options[0], ("layout".to_string(), Value::str("long")));
                // Bare identifiers are accepted as option values.
                assert_eq!(cf.options[2], ("family".to_string(), Value::str("metric_name")));
                assert_eq!(cf.query.selects.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_family_without_options() {
        let s = parse_statement(
            "CREATE FAMILY runtime AS SELECT timestamp, AVG(value) v FROM tsdb GROUP BY timestamp",
        )
        .unwrap();
        assert!(matches!(s, Statement::CreateFamily(cf) if cf.options.is_empty()));
    }

    #[test]
    fn explain_for_full_clause_stack() {
        let s = parse_statement(
            "EXPLAIN FOR pipeline_runtime GIVEN load, 'disk{host=a}' USING SCORER l2 TOP 5",
        )
        .unwrap();
        match s {
            Statement::ExplainFor(e) => {
                assert_eq!(e.target, "pipeline_runtime");
                assert_eq!(e.given, vec!["load", "disk{host=a}"]);
                assert_eq!(e.scorer.as_deref(), Some("l2"));
                assert_eq!(e.top, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_for_minimal() {
        let s = parse_statement("EXPLAIN FOR runtime").unwrap();
        match s {
            Statement::ExplainFor(e) => {
                assert!(e.given.is_empty() && e.scorer.is_none() && e.top.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_statement("EXPLAIN FOR runtime TOP 0").is_err());
    }

    #[test]
    fn explain_for_and_explain_query_coexist() {
        // A leading EXPLAIN still marks an ordinary query for plan dumping;
        // only the FOR lookahead selects the ranking statement.
        let s = parse_statement("EXPLAIN SELECT a FROM t").unwrap();
        assert!(matches!(s, Statement::Query(q) if q.explain));
        let s = parse_statement("EXPLAIN FOR t").unwrap();
        assert!(matches!(s, Statement::ExplainFor(_)));
    }

    #[test]
    fn show_and_drop_statements() {
        assert_eq!(parse_statement("SHOW FAMILIES").unwrap(), Statement::ShowFamilies);
        assert_eq!(parse_statement("show tables;").unwrap(), Statement::ShowTables);
        assert!(matches!(
            parse_statement("DROP FAMILY 'disk io'").unwrap(),
            Statement::DropFamily { name } if name == "disk io"
        ));
    }

    #[test]
    fn script_splits_on_semicolons() {
        let script = parse_script(
            "CREATE FAMILY f AS SELECT ts, v FROM t;;\n\
             -- a comment between statements\n\
             EXPLAIN FOR f TOP 3;\n\
             SELECT * FROM ranking;",
        )
        .unwrap();
        assert_eq!(script.len(), 3);
        assert!(matches!(script[0], Statement::CreateFamily(_)));
        assert!(matches!(script[1], Statement::ExplainFor(_)));
        assert!(matches!(script[2], Statement::Query(_)));
        assert!(parse_script("  ;; ;").unwrap().is_empty());
    }

    #[test]
    fn script_errors_name_the_statement() {
        let err = parse_script("SELECT 1; SELECT; SELECT 2").unwrap_err();
        assert!(err.to_string().contains("statement 2"), "got: {err}");
        // Missing separator between statements is rejected, not ignored.
        let err = parse_script("SELECT 1 SELECT 2").unwrap_err();
        assert!(err.to_string().contains("';'"), "got: {err}");
        // parse_statement rejects multi-statement input.
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
        assert!(parse_statement("   ;  ").is_err());
    }

    #[test]
    fn statement_keywords_stay_plain_identifiers_in_queries() {
        // Every new keyword works as a table name, column name or alias —
        // they are recognised positionally, never reserved.
        let q = parse_query(
            "SELECT family, top, given scorer, tables FROM create \
             JOIN drop ON create.family = drop.family WHERE show = 1",
        )
        .unwrap();
        assert_eq!(q.selects[0].items.len(), 4);
        match &q.selects[0].items[2] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "scorer"),
            other => panic!("unexpected {other:?}"),
        }
        // ... and in scripts too.
        let script = parse_script("SELECT top FROM families; SELECT scorer FROM for").unwrap();
        assert_eq!(script.len(), 2);
        // `SELECT create` (no FROM) round-trips as a bare column reference.
        let s = parse_statement("SELECT create").unwrap();
        match s {
            Statement::Query(q) => {
                assert!(matches!(&q.selects[0].items[0],
                    SelectItem::Expr { expr: Expr::Column(c), .. } if c == "create"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_appendix_c_process_query_parses() {
        let sql = "SELECT timestamp, CONCAT(service_name, SPLIT(hostname, '-')[0]), \
                   AVG(stime + utime) as cpu, AVG(statm_resident) as mem, \
                   AVG(GREATEST(write_b - cancelled_write_b, 0)) \
                   FROM processes \
                   WHERE SPLIT(hostname, '-')[0] IN ('web', 'app', 'db', 'pipeline') \
                   AND timestamp BETWEEN 0 AND 86400 \
                   GROUP BY timestamp, CONCAT(service_name, SPLIT(hostname, '-')[0]) \
                   ORDER BY timestamp ASC";
        assert!(parse_query(sql).is_ok());
    }
}
