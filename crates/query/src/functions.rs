//! Scalar and aggregate function implementations.
//!
//! Aggregates are built on *mergeable accumulators* ([`AggAcc`]): every
//! engine — the naive reference interpreter, the serial columnar executor
//! and the partition-parallel executor — feeds rows into the same
//! accumulator type and the parallel executor additionally merges partial
//! states across partitions. Floating-point sums use [`ExactSum`]
//! (Shewchuk-style error-free accumulation, finished with the `fsum`
//! rounding step), so a sum is the correctly rounded exact result and is
//! therefore *independent of partitioning*: serial, parallel and reference
//! results are bit-identical by construction, not by luck.

use crate::value::Value;
use crate::{QueryError, Result};

/// True when `name` (uppercase) is an aggregate function.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "AVG" | "SUM" | "MIN" | "MAX" | "COUNT" | "STDDEV" | "VARIANCE" | "PERCENTILE")
}

/// True when `name` (uppercase) is a window function.
pub fn is_window(name: &str) -> bool {
    matches!(name, "LAG" | "LEAD")
}

/// Evaluates a scalar function over already-evaluated arguments.
pub fn eval_scalar(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "CONCAT" => {
            // NULL inputs render as empty (Spark-style CONCAT returns NULL;
            // the paper's grouping keys are friendlier with empty) — we
            // follow the forgiving variant and document it.
            let mut s = String::new();
            for a in args {
                if !a.is_null() {
                    s.push_str(&a.render());
                }
            }
            Ok(Value::Str(s))
        }
        "SPLIT" => {
            expect_arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) => Ok(Value::Null),
                (Value::Str(s), Value::Str(sep)) => {
                    if sep.is_empty() {
                        return Err(QueryError::BadFunction(
                            "SPLIT separator must be non-empty".into(),
                        ));
                    }
                    Ok(Value::List(
                        s.split(sep.as_str()).map(|p| Value::Str(p.to_string())).collect(),
                    ))
                }
                _ => Err(QueryError::Type("SPLIT expects (string, string)".into())),
            }
        }
        "UPPER" => unary_string(name, args, |s| s.to_uppercase()),
        "LOWER" => unary_string(name, args, |s| s.to_lowercase()),
        "TRIM" => unary_string(name, args, |s| s.trim().to_string()),
        "LENGTH" => {
            expect_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::List(l) => Ok(Value::Int(l.len() as i64)),
                _ => Err(QueryError::Type("LENGTH expects a string or list".into())),
            }
        }
        "COALESCE" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "GREATEST" => fold_numeric(name, args, f64::max),
        "LEAST" => fold_numeric(name, args, f64::min),
        "ABS" => unary_numeric(name, args, f64::abs),
        "SQRT" => unary_numeric(name, args, f64::sqrt),
        "LN" => unary_numeric(name, args, f64::ln),
        "EXP" => unary_numeric(name, args, f64::exp),
        "FLOOR" => unary_numeric(name, args, f64::floor),
        "CEIL" => unary_numeric(name, args, f64::ceil),
        "ROUND" => {
            if args.len() == 1 {
                return unary_numeric(name, args, |v| v.round());
            }
            expect_arity(name, args, 2)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let v = numeric_arg(name, &args[0])?;
            let digits = args[1]
                .as_i64()
                .ok_or_else(|| QueryError::Type("ROUND digits must be integer".into()))?;
            let scale = 10f64.powi(digits as i32);
            Ok(Value::Float((v * scale).round() / scale))
        }
        "POW" | "POWER" => {
            expect_arity(name, args, 2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let a = numeric_arg(name, &args[0])?;
            let b = numeric_arg(name, &args[1])?;
            Ok(Value::Float(a.powf(b)))
        }
        "SUBSTR" | "SUBSTRING" => {
            // SUBSTR(s, start_1_based[, len])
            if args.len() != 2 && args.len() != 3 {
                return Err(QueryError::BadFunction(format!("{name} expects 2 or 3 args")));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let s = args[0]
                .as_str()
                .ok_or_else(|| QueryError::Type("SUBSTR expects a string".into()))?;
            let start = args[1]
                .as_i64()
                .ok_or_else(|| QueryError::Type("SUBSTR start must be integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            let begin = (start.max(1) as usize - 1).min(chars.len());
            let end = match args.get(2) {
                Some(l) => {
                    let len = l
                        .as_i64()
                        .ok_or_else(|| QueryError::Type("SUBSTR length must be integer".into()))?
                        .max(0) as usize;
                    (begin + len).min(chars.len())
                }
                None => chars.len(),
            };
            Ok(Value::Str(chars[begin..end].iter().collect()))
        }
        "REPLACE" => {
            expect_arity(name, args, 3)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            match (&args[0], &args[1], &args[2]) {
                (Value::Str(s), Value::Str(from), Value::Str(to)) => {
                    Ok(Value::Str(s.replace(from.as_str(), to)))
                }
                _ => Err(QueryError::Type("REPLACE expects three strings".into())),
            }
        }
        "HOSTGROUP" => {
            // The UDF from Appendix C: hostgroup('web-12') == 'web'.
            expect_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => {
                    Ok(Value::Str(s.split('-').next().unwrap_or_default().to_string()))
                }
                _ => Err(QueryError::Type("HOSTGROUP expects a string".into())),
            }
        }
        "IF" => {
            expect_arity(name, args, 3)?;
            Ok(if args[0].is_true() { args[1].clone() } else { args[2].clone() })
        }
        "NULLIF" => {
            expect_arity(name, args, 2)?;
            if args[0].sql_cmp(&args[1]) == Some(std::cmp::Ordering::Equal) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        other => Err(QueryError::BadFunction(format!("unknown function {other}"))),
    }
}

/// Evaluates an aggregate function over a group's argument values.
///
/// `args_per_row` holds, for each row in the group, the evaluated argument
/// list. NULL first-arguments are skipped (SQL semantics) except by COUNT
/// whose argument convention here is `COUNT(*)` ≙ `COUNT(1)`.
pub fn eval_aggregate(name: &str, args_per_row: &[Vec<Value>]) -> Result<Value> {
    let mut acc = AggAcc::new(name)
        .ok_or_else(|| QueryError::BadFunction(format!("unknown aggregate {name}")))?;
    for row in args_per_row {
        acc.push(row)?;
    }
    acc.finish()
}

// ---------------------------------------------------------------------------
// Mergeable aggregate accumulators
// ---------------------------------------------------------------------------

/// Error-free f64 accumulation: a Shewchuk expansion of non-overlapping
/// partials whose sum is the *exact* real sum of everything added.
///
/// Because the expansion represents the exact sum, adding values (or
/// merging whole expansions) in any order produces the same final
/// [`ExactSum::value`] — the property the partition-parallel aggregate
/// relies on to match serial execution bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    /// Non-overlapping partials, ascending in magnitude.
    partials: Vec<f64>,
    /// Plain running sum of non-finite inputs (inf/NaN poison the
    /// two-sum trick; they propagate here instead, order-independently).
    special: f64,
}

impl ExactSum {
    /// Adds one value.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.special += x;
            return;
        }
        let mut x = x;
        let mut kept = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Stages the expansion into a stack array for a bulk fold. Returns
    /// `None` if the expansion is too large to stage — impossible by the
    /// non-overlap invariant (see [`BulkSum`]), but callers fall back to
    /// per-element [`ExactSum::add`] defensively.
    pub(crate) fn bulk(&mut self) -> Option<BulkSum<'_>> {
        if self.partials.len() > BULK_SLOTS - 8 {
            return None;
        }
        let mut lows = [0.0f64; BULK_SLOTS];
        let (top, n_lows) = match self.partials.split_last() {
            Some((&top, rest)) => {
                lows[..rest.len()].copy_from_slice(rest);
                (Some(top), rest.len())
            }
            None => (None, 0),
        };
        Some(BulkSum { lows, n_lows, top, special: self.special, target: self })
    }

    /// Folds another expansion in (still exact).
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
        self.special += other.special;
    }

    /// The correctly rounded sum (CPython `math.fsum` finalization).
    pub fn value(&self) -> f64 {
        if self.special != 0.0 || self.special.is_nan() {
            return self.special + self.partials.iter().sum::<f64>();
        }
        let mut n = self.partials.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut x = self.partials[n];
        let mut lo = 0.0;
        while n > 0 {
            n -= 1;
            let y = self.partials[n];
            let hi = x + y;
            lo = y - (hi - x);
            x = hi;
            if lo != 0.0 {
                break;
            }
        }
        // Round-half-even correction against the next lower partial.
        if n > 0
            && ((lo < 0.0 && self.partials[n - 1] < 0.0)
                || (lo > 0.0 && self.partials[n - 1] > 0.0))
        {
            let y = lo * 2.0;
            let z = x + y;
            if y == z - x {
                x = z;
            }
        }
        x
    }
}

/// Slots in a [`BulkSum`] stack array. A non-overlapping f64 expansion
/// has at most ≈40 terms (the ~2098-bit exponent span of finite doubles
/// divided by 53 mantissa bits per partial), so 64 leaves ample margin.
pub(crate) const BULK_SLOTS: usize = 64;

/// Stack-staged continuation of an [`ExactSum`] expansion for bulk folds.
///
/// [`BulkSum::add`] runs the *identical* per-element algorithm as
/// [`ExactSum::add`] — same compare/swap, same two-sum, same compaction
/// order — so the expansion written back by [`BulkSum::finish`] is
/// bit-for-bit the one serial `add` calls would have produced. Two things
/// change *where the work happens*, not what it computes:
///
/// * the partials live in a fixed stack array instead of the `Vec`,
///   keeping per-element capacity checks / `truncate` / `push` out of
///   the hot loop;
/// * the expansion is held as `lows ++ [top]` with the top (largest)
///   partial in a register field. When every intermediate sum is exactly
///   representable — the common case for telemetry-scale data — the
///   expansion is a single partial, `n_lows` stays 0 and the whole add
///   is register arithmetic with no store→load round-trip on the serial
///   dependency chain.
///
/// Dropping a `BulkSum` without `finish` leaves the underlying sum
/// untouched.
pub(crate) struct BulkSum<'a> {
    /// All partials below the top one, ascending in magnitude.
    lows: [f64; BULK_SLOTS],
    /// Occupied `lows` slots.
    n_lows: usize,
    /// The largest partial; `None` for an empty expansion.
    top: Option<f64>,
    special: f64,
    target: &'a mut ExactSum,
}

impl BulkSum<'_> {
    /// Adds one value — the [`ExactSum::add`] algorithm over
    /// `lows ++ [top]`.
    #[inline]
    pub(crate) fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.special += x;
            return;
        }
        let Some(top) = self.top else {
            // Empty expansion: the walk is vacuous and `add` pushes x.
            self.top = Some(x);
            return;
        };
        let mut x = x;
        let mut kept = 0;
        // The walk over every partial but the last, in ascending order —
        // skipped entirely while the expansion is a single partial.
        for j in 0..self.n_lows {
            let mut y = self.lows[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.lows[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        // The top partial: same step, with y in a register.
        let mut y = top;
        if x.abs() < y.abs() {
            std::mem::swap(&mut x, &mut y);
        }
        let hi = x + y;
        let lo = y - (hi - x);
        if lo != 0.0 {
            debug_assert!(kept < BULK_SLOTS, "expansion exceeded {BULK_SLOTS} terms");
            self.lows[kept] = lo;
            kept += 1;
        }
        self.n_lows = kept;
        self.top = Some(hi);
    }

    /// Writes the staged expansion back to the underlying sum.
    pub(crate) fn finish(self) {
        self.target.partials.clear();
        self.target.partials.extend_from_slice(&self.lows[..self.n_lows]);
        if let Some(top) = self.top {
            self.target.partials.push(top);
        }
        self.target.special = self.special;
    }
}

/// Runs `f` over every selected valid row index, dispatching on the
/// validity bitmap once instead of per element — the `None` (all-valid)
/// loop is the raw selection with no bitmap check. The `Some` arm is
/// [`crate::kernel::is_valid`]'s bit test.
#[inline]
fn for_each_valid(
    sel: impl Iterator<Item = usize>,
    validity: Option<&[u64]>,
    f: impl FnMut(usize),
) {
    match validity {
        None => sel.for_each(f),
        Some(bits) => sel.filter(|&i| bits[i >> 6] >> (i & 63) & 1 == 1).for_each(f),
    }
}

/// One aggregate's mergeable partial state.
///
/// Every engine computes aggregates by `new` → `push` per row → `finish`;
/// the partition-parallel executor additionally `merge`s partials in
/// partition order. For each function, `merge` is *exactly* equivalent to
/// having pushed the second partial's rows after the first's — sums are
/// error-free (see [`ExactSum`]), COUNT/SUM-over-Int are integer-exact,
/// MIN/MAX folds candidates per comparability class, and PERCENTILE gathers
/// raw values and only sorts at `finish` — so partitioning never changes a
/// result.
#[derive(Debug, Clone)]
pub enum AggAcc {
    /// `COUNT(x)`: non-null rows.
    Count {
        /// Rows counted so far.
        n: i64,
    },
    /// `SUM(x)`: Int-typed when every input is an Int, Float otherwise.
    Sum {
        /// Exact integer sum (i128 cannot overflow from i64 inputs).
        int: i128,
        /// Exact float sum over all numeric inputs.
        float: ExactSum,
        /// True once any non-Int numeric input was seen.
        saw_float: bool,
        /// Numeric inputs seen.
        n: usize,
    },
    /// `AVG(x)`.
    Avg {
        /// Exact sum.
        sum: ExactSum,
        /// Numeric inputs seen.
        n: usize,
    },
    /// `VARIANCE(x)` / `STDDEV(x)` — *sample* (n−1) variance.
    Var {
        /// Exact Σv.
        sum: ExactSum,
        /// Exact Σv².
        sumsq: ExactSum,
        /// Numeric inputs seen.
        n: usize,
        /// Take the square root at finish (STDDEV).
        stddev: bool,
    },
    /// `MIN(x)` / `MAX(x)`.
    MinMax {
        /// One running best per comparability class, in first-seen class
        /// order; the head is the fold result. Keeping per-class bests
        /// makes the merge order-equivalent to the serial row fold even
        /// when a group mixes incomparable types.
        candidates: Vec<Value>,
        /// MIN when true.
        want_min: bool,
    },
    /// `PERCENTILE(x, p)` with constant `p` per group.
    Percentile {
        /// Gathered numeric inputs (sorted at finish).
        vals: Vec<f64>,
        /// The pinned p (first non-null seen; later disagreement errors).
        p: Option<f64>,
    },
}

impl AggAcc {
    /// A fresh accumulator for the (uppercase) aggregate name.
    pub fn new(name: &str) -> Option<AggAcc> {
        Some(match name {
            "COUNT" => AggAcc::Count { n: 0 },
            "SUM" => AggAcc::Sum { int: 0, float: ExactSum::default(), saw_float: false, n: 0 },
            "AVG" => AggAcc::Avg { sum: ExactSum::default(), n: 0 },
            "VARIANCE" => AggAcc::Var {
                sum: ExactSum::default(),
                sumsq: ExactSum::default(),
                n: 0,
                stddev: false,
            },
            "STDDEV" => AggAcc::Var {
                sum: ExactSum::default(),
                sumsq: ExactSum::default(),
                n: 0,
                stddev: true,
            },
            "MIN" => AggAcc::MinMax { candidates: Vec::new(), want_min: true },
            "MAX" => AggAcc::MinMax { candidates: Vec::new(), want_min: false },
            "PERCENTILE" => AggAcc::Percentile { vals: Vec::new(), p: None },
            _ => return None,
        })
    }

    /// Feeds one row's evaluated argument list.
    pub fn push(&mut self, args: &[Value]) -> Result<()> {
        let first = args.first().unwrap_or(&Value::Null);
        match self {
            AggAcc::Count { n } => {
                if !first.is_null() {
                    *n += 1;
                }
            }
            AggAcc::Sum { int, float, saw_float, n } => match first {
                Value::Int(i) => {
                    *int += i128::from(*i);
                    float.add(*i as f64);
                    *n += 1;
                }
                other => {
                    if let Some(f) = other.as_f64() {
                        float.add(f);
                        *saw_float = true;
                        *n += 1;
                    }
                }
            },
            AggAcc::Avg { sum, n } => {
                if let Some(f) = first.as_f64() {
                    sum.add(f);
                    *n += 1;
                }
            }
            AggAcc::Var { sum, sumsq, n, .. } => {
                if let Some(f) = first.as_f64() {
                    sum.add(f);
                    sumsq.add(f * f);
                    *n += 1;
                }
            }
            AggAcc::MinMax { candidates, want_min } => {
                if !first.is_null() {
                    fold_minmax(candidates, first.clone(), *want_min);
                }
            }
            AggAcc::Percentile { vals, p } => {
                if let Some(pv) = args.get(1).and_then(Value::as_f64) {
                    if !(0.0..=1.0).contains(&pv) {
                        return Err(QueryError::BadFunction(
                            "PERCENTILE p must be in [0,1]".into(),
                        ));
                    }
                    match *p {
                        None => *p = Some(pv),
                        Some(prev) if prev == pv => {}
                        Some(prev) => {
                            return Err(QueryError::BadFunction(format!(
                                "PERCENTILE p must be constant within a group (saw {prev} and {pv})"
                            )))
                        }
                    }
                }
                if let Some(v) = first.as_f64() {
                    vals.push(v);
                }
            }
        }
        Ok(())
    }

    /// Feeds one non-null Float argument; exactly `push(&[Value::Float(v)])`
    /// minus the boxing (single-argument pushes can never hit PERCENTILE's
    /// p validation, so this is infallible).
    pub fn push_f64(&mut self, v: f64) {
        match self {
            AggAcc::Count { n } => *n += 1,
            AggAcc::Sum { float, saw_float, n, .. } => {
                float.add(v);
                *saw_float = true;
                *n += 1;
            }
            AggAcc::Avg { sum, n } => {
                sum.add(v);
                *n += 1;
            }
            AggAcc::Var { sum, sumsq, n, .. } => {
                sum.add(v);
                sumsq.add(v * v);
                *n += 1;
            }
            AggAcc::MinMax { candidates, want_min } => {
                fold_minmax(candidates, Value::Float(v), *want_min);
            }
            AggAcc::Percentile { vals, .. } => vals.push(v),
        }
    }

    /// Feeds one non-null Int argument; exactly `push(&[Value::Int(v)])`
    /// minus the boxing.
    pub fn push_i64(&mut self, v: i64) {
        match self {
            AggAcc::Count { n } => *n += 1,
            AggAcc::Sum { int, float, n, .. } => {
                *int += i128::from(v);
                float.add(v as f64);
                *n += 1;
            }
            AggAcc::Avg { sum, n } => {
                sum.add(v as f64);
                *n += 1;
            }
            AggAcc::Var { sum, sumsq, n, .. } => {
                let f = v as f64;
                sum.add(f);
                sumsq.add(f * f);
                *n += 1;
            }
            AggAcc::MinMax { candidates, want_min } => {
                fold_minmax(candidates, Value::Int(v), *want_min);
            }
            AggAcc::Percentile { vals, .. } => vals.push(v as f64),
        }
    }

    /// Bulk fold over a Float minicolumn: equivalent to `push_f64` for
    /// every selected valid row, with the per-variant dispatch hoisted out
    /// of the loop. MIN/MAX runs a pure `f64` running best whenever the
    /// numeric candidate class is Float-typed (strict compares keep the
    /// incumbent on ties — including `-0.0` vs `0.0` — exactly like
    /// [`fold_minmax`]'s first-seen-wins rule); NaN inputs append their own
    /// incomparable candidate classes in encounter order.
    ///
    /// The sum-based arms dispatch on the validity bitmap once
    /// ([`for_each_valid`]) so the all-valid loop carries no per-element
    /// bitmap check.
    pub fn fold_f64s(
        &mut self,
        vals: &[f64],
        sel: impl Iterator<Item = usize>,
        validity: Option<&[u64]>,
    ) {
        let valid = |i: usize| crate::kernel::is_valid(validity, i);
        match self {
            AggAcc::Count { n } => {
                for i in sel {
                    *n += i64::from(valid(i));
                }
            }
            AggAcc::Sum { float, saw_float, n, .. } => {
                let before = *n;
                match float.bulk() {
                    Some(mut bulk) => {
                        for_each_valid(sel, validity, |i| {
                            bulk.add(vals[i]);
                            *n += 1;
                        });
                        bulk.finish();
                    }
                    None => for_each_valid(sel, validity, |i| {
                        float.add(vals[i]);
                        *n += 1;
                    }),
                }
                *saw_float |= *n != before;
            }
            AggAcc::Avg { sum, n } => match sum.bulk() {
                Some(mut bulk) => {
                    for_each_valid(sel, validity, |i| {
                        bulk.add(vals[i]);
                        *n += 1;
                    });
                    bulk.finish();
                }
                None => for_each_valid(sel, validity, |i| {
                    sum.add(vals[i]);
                    *n += 1;
                }),
            },
            AggAcc::Var { sum, sumsq, n, .. } => match (sum.bulk(), sumsq.bulk()) {
                (Some(mut bs), Some(mut bq)) => {
                    for_each_valid(sel, validity, |i| {
                        let v = vals[i];
                        bs.add(v);
                        bq.add(v * v);
                        *n += 1;
                    });
                    bs.finish();
                    bq.finish();
                }
                _ => for_each_valid(sel, validity, |i| {
                    let v = vals[i];
                    sum.add(v);
                    sumsq.add(v * v);
                    *n += 1;
                }),
            },
            AggAcc::MinMax { candidates, want_min } => {
                let want_min = *want_min;
                // The (single) candidate class a non-NaN number folds into:
                // the first candidate that is numeric and not NaN — every
                // earlier class is incomparable with a finite number, so
                // skipping the scan per element is exact.
                let mut num_pos =
                    candidates.iter().position(|c| c.as_f64().is_some_and(|f| !f.is_nan()));
                if num_pos.is_some_and(|p| !matches!(candidates[p], Value::Float(_))) {
                    // Int/Bool incumbent: rare — per-element sql_cmp fold.
                    for i in sel.filter(|&i| valid(i)) {
                        fold_minmax(candidates, Value::Float(vals[i]), want_min);
                    }
                    return;
                }
                let mut best: Option<f64> = num_pos.map(|p| match candidates[p] {
                    Value::Float(c) => c,
                    _ => unreachable!("checked Float above"),
                });
                for i in sel.filter(|&i| valid(i)) {
                    let v = vals[i];
                    if v.is_nan() {
                        // Incomparable: its own candidate class, in
                        // encounter order.
                        candidates.push(Value::Float(v));
                        continue;
                    }
                    best = Some(match best {
                        None => {
                            // First numeric: the class is created *here* so
                            // it keeps its encounter position among NaNs.
                            candidates.push(Value::Float(v));
                            num_pos = Some(candidates.len() - 1);
                            v
                        }
                        Some(c) if want_min => {
                            if v < c {
                                v
                            } else {
                                c
                            }
                        }
                        Some(c) => {
                            if v > c {
                                v
                            } else {
                                c
                            }
                        }
                    });
                }
                if let (Some(p), Some(b)) = (num_pos, best) {
                    candidates[p] = Value::Float(b);
                }
            }
            AggAcc::Percentile { vals: acc, .. } => {
                acc.extend(sel.filter(|&i| valid(i)).map(|i| vals[i]));
            }
        }
    }

    /// Bulk fold over an Int minicolumn: `push_i64` for every selected
    /// valid row with hoisted dispatch. MIN/MAX keeps exact i64 compares
    /// while the numeric candidate class is Int-typed.
    pub fn fold_i64s(
        &mut self,
        vals: &[i64],
        sel: impl Iterator<Item = usize>,
        validity: Option<&[u64]>,
    ) {
        let valid = |i: usize| crate::kernel::is_valid(validity, i);
        match self {
            AggAcc::Count { n } => {
                for i in sel {
                    *n += i64::from(valid(i));
                }
            }
            AggAcc::Sum { int, float, n, .. } => match float.bulk() {
                Some(mut bulk) => {
                    for_each_valid(sel, validity, |i| {
                        *int += i128::from(vals[i]);
                        bulk.add(vals[i] as f64);
                        *n += 1;
                    });
                    bulk.finish();
                }
                None => for_each_valid(sel, validity, |i| {
                    *int += i128::from(vals[i]);
                    float.add(vals[i] as f64);
                    *n += 1;
                }),
            },
            AggAcc::Avg { sum, n } => match sum.bulk() {
                Some(mut bulk) => {
                    for_each_valid(sel, validity, |i| {
                        bulk.add(vals[i] as f64);
                        *n += 1;
                    });
                    bulk.finish();
                }
                None => for_each_valid(sel, validity, |i| {
                    sum.add(vals[i] as f64);
                    *n += 1;
                }),
            },
            AggAcc::Var { sum, sumsq, n, .. } => match (sum.bulk(), sumsq.bulk()) {
                (Some(mut bs), Some(mut bq)) => {
                    for_each_valid(sel, validity, |i| {
                        let v = vals[i] as f64;
                        bs.add(v);
                        bq.add(v * v);
                        *n += 1;
                    });
                    bs.finish();
                    bq.finish();
                }
                _ => for_each_valid(sel, validity, |i| {
                    let v = vals[i] as f64;
                    sum.add(v);
                    sumsq.add(v * v);
                    *n += 1;
                }),
            },
            AggAcc::MinMax { candidates, want_min } => {
                let want_min = *want_min;
                let mut num_pos =
                    candidates.iter().position(|c| c.as_f64().is_some_and(|f| !f.is_nan()));
                if num_pos.is_some_and(|p| !matches!(candidates[p], Value::Int(_))) {
                    for i in sel.filter(|&i| valid(i)) {
                        fold_minmax(candidates, Value::Int(vals[i]), want_min);
                    }
                    return;
                }
                let mut best: Option<i64> = num_pos.map(|p| match candidates[p] {
                    Value::Int(c) => c,
                    _ => unreachable!("checked Int above"),
                });
                for i in sel.filter(|&i| valid(i)) {
                    let v = vals[i];
                    best = Some(match best {
                        None => {
                            candidates.push(Value::Int(v));
                            num_pos = Some(candidates.len() - 1);
                            v
                        }
                        Some(c) if want_min => c.min(v),
                        Some(c) => c.max(v),
                    });
                }
                if let (Some(p), Some(b)) = (num_pos, best) {
                    candidates[p] = Value::Int(b);
                }
            }
            AggAcc::Percentile { vals: acc, .. } => {
                acc.extend(sel.filter(|&i| valid(i)).map(|i| vals[i] as f64));
            }
        }
    }

    /// Folds another partial in; equivalent to pushing `other`'s rows
    /// after this accumulator's rows.
    pub fn merge(&mut self, other: AggAcc) -> Result<()> {
        match (self, other) {
            (AggAcc::Count { n }, AggAcc::Count { n: o }) => *n += o,
            (
                AggAcc::Sum { int, float, saw_float, n },
                AggAcc::Sum { int: oi, float: of, saw_float: os, n: on },
            ) => {
                *int += oi;
                float.merge(&of);
                *saw_float |= os;
                *n += on;
            }
            (AggAcc::Avg { sum, n }, AggAcc::Avg { sum: os, n: on }) => {
                sum.merge(&os);
                *n += on;
            }
            (AggAcc::Var { sum, sumsq, n, .. }, AggAcc::Var { sum: os, sumsq: oss, n: on, .. }) => {
                sum.merge(&os);
                sumsq.merge(&oss);
                *n += on;
            }
            (AggAcc::MinMax { candidates, want_min }, AggAcc::MinMax { candidates: oc, .. }) => {
                for v in oc {
                    fold_minmax(candidates, v, *want_min);
                }
            }
            (AggAcc::Percentile { vals, p }, AggAcc::Percentile { vals: ov, p: op }) => {
                match (*p, op) {
                    (Some(a), Some(b)) if a != b => {
                        return Err(QueryError::BadFunction(format!(
                            "PERCENTILE p must be constant within a group (saw {a} and {b})"
                        )))
                    }
                    (None, some) => *p = some,
                    _ => {}
                }
                vals.extend(ov);
            }
            _ => unreachable!("merging mismatched aggregate accumulators"),
        }
        Ok(())
    }

    /// The aggregate's final value.
    pub fn finish(self) -> Result<Value> {
        match self {
            AggAcc::Count { n } => Ok(Value::Int(n)),
            AggAcc::Sum { int, float, saw_float, n } => {
                if n == 0 {
                    Ok(Value::Null)
                } else if !saw_float {
                    // All-Int input keeps Int typing; i64 overflow promotes
                    // to the exact float sum.
                    match i64::try_from(int) {
                        Ok(i) => Ok(Value::Int(i)),
                        Err(_) => Ok(Value::Float(float.value())),
                    }
                } else {
                    Ok(Value::Float(float.value()))
                }
            }
            AggAcc::Avg { sum, n } => {
                if n == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(sum.value() / n as f64))
                }
            }
            AggAcc::Var { sum, sumsq, n, stddev } => {
                if n < 2 {
                    return Ok(Value::Null);
                }
                let s = sum.value();
                let ss = sumsq.value();
                // Sample (n−1) variance from exact moments; the subtraction
                // can go epsilon-negative, never meaningfully so.
                let mut var = (ss - s * s / n as f64) / (n as f64 - 1.0);
                if var < 0.0 {
                    var = 0.0;
                }
                Ok(Value::Float(if stddev { var.sqrt() } else { var }))
            }
            AggAcc::MinMax { candidates, .. } => {
                Ok(candidates.into_iter().next().unwrap_or(Value::Null))
            }
            AggAcc::Percentile { mut vals, p } => {
                let p = p.ok_or_else(|| {
                    QueryError::BadFunction("PERCENTILE needs a p argument".into())
                })?;
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                vals.sort_by(f64::total_cmp);
                // Linear interpolation between closest ranks.
                let idx = p * (vals.len() - 1) as f64;
                let lo = idx.floor() as usize;
                let hi = idx.ceil() as usize;
                let frac = idx - lo as f64;
                Ok(Value::Float(vals[lo] * (1.0 - frac) + vals[hi] * frac))
            }
        }
    }
}

/// One step of the MIN/MAX fold: replace the candidate `v` is comparable
/// with when `v` is strictly better, append `v` as a new class head when it
/// compares with nothing. Ties keep the incumbent (first-seen wins), which
/// is what makes the fold merge-associative.
fn fold_minmax(candidates: &mut Vec<Value>, v: Value, want_min: bool) {
    for c in candidates.iter_mut() {
        match v.sql_cmp(c) {
            Some(std::cmp::Ordering::Less) => {
                if want_min {
                    *c = v;
                }
                return;
            }
            Some(std::cmp::Ordering::Greater) => {
                if !want_min {
                    *c = v;
                }
                return;
            }
            Some(std::cmp::Ordering::Equal) => return,
            None => {}
        }
    }
    candidates.push(v);
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(QueryError::BadFunction(format!("{name} expects {n} argument(s), got {}", args.len())))
    }
}

fn numeric_arg(name: &str, v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| QueryError::Type(format!("{name} expects a numeric argument, got {v}")))
}

fn unary_numeric(name: &str, args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value> {
    expect_arity(name, args, 1)?;
    if args[0].is_null() {
        return Ok(Value::Null);
    }
    Ok(Value::Float(f(numeric_arg(name, &args[0])?)))
}

fn unary_string(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    expect_arity(name, args, 1)?;
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(f(s))),
        _ => Err(QueryError::Type(format!("{name} expects a string"))),
    }
}

fn fold_numeric(name: &str, args: &[Value], f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    if args.is_empty() {
        return Err(QueryError::BadFunction(format!("{name} needs arguments")));
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let mut acc = numeric_arg(name, &args[0])?;
    for a in &args[1..] {
        acc = f(acc, numeric_arg(name, a)?);
    }
    Ok(Value::Float(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every fold/push shortcut must agree with the boxed `push` loop.
    fn fold_matches_push(name: &str, vals: &[f64], sel: &[usize], validity: Option<&[u64]>) {
        let mut folded = AggAcc::new(name).unwrap();
        folded.fold_f64s(vals, sel.iter().copied(), validity);
        let mut pushed = AggAcc::new(name).unwrap();
        for &i in sel {
            if crate::kernel::is_valid(validity, i) {
                pushed.push(&[Value::Float(vals[i])]).unwrap();
            } else {
                pushed.push(&[Value::Null]).unwrap();
            }
        }
        assert_eq!(
            format!("{:?}", folded.finish()),
            format!("{:?}", pushed.finish()),
            "{name} over {vals:?} sel {sel:?}"
        );
    }

    #[test]
    fn typed_folds_match_boxed_pushes() {
        let vals = [3.0, f64::NAN, -0.0, 0.0, f64::INFINITY, 1.5, f64::NAN, -2.0];
        let all: Vec<usize> = (0..vals.len()).collect();
        let validity = vec![0b10110101u64]; // rows 1, 3, 6 are NULL
        for name in ["COUNT", "SUM", "AVG", "VARIANCE", "STDDEV", "MIN", "MAX"] {
            fold_matches_push(name, &vals, &all, None);
            fold_matches_push(name, &vals, &all, Some(&validity));
            fold_matches_push(name, &vals, &[], None); // empty selection
            fold_matches_push(name, &vals, &[4, 6, 1], None); // NaN/inf only-ish
        }
    }

    #[test]
    fn typed_i64_folds_match_boxed_pushes() {
        let vals = [5i64, i64::MAX, -3, i64::MIN, 0, 7];
        let all: Vec<usize> = (0..vals.len()).collect();
        for name in ["COUNT", "SUM", "AVG", "MIN", "MAX"] {
            let mut folded = AggAcc::new(name).unwrap();
            folded.fold_i64s(&vals, all.iter().copied(), None);
            let mut pushed = AggAcc::new(name).unwrap();
            for &i in &all {
                pushed.push(&[Value::Int(vals[i])]).unwrap();
            }
            assert_eq!(
                format!("{:?}", folded.finish()),
                format!("{:?}", pushed.finish()),
                "{name}"
            );
        }
    }

    #[test]
    fn fold_preserves_nan_class_head_order() {
        // A NaN seen before any number is the head class and wins finish().
        let vals = [f64::NAN, 1.0, -5.0];
        let mut folded = AggAcc::new("MIN").unwrap();
        folded.fold_f64s(&vals, 0..3, None);
        match folded.finish().unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected NaN head, got {other:?}"),
        }
        // Numbers first: the numeric class stays the head.
        let vals = [1.0, f64::NAN, -5.0];
        let mut folded = AggAcc::new("MIN").unwrap();
        folded.fold_f64s(&vals, 0..3, None);
        assert_eq!(folded.finish().unwrap(), Value::Float(-5.0));
    }

    #[test]
    fn fold_onto_int_incumbent_uses_exact_compare() {
        // MIN over an Int incumbent folded with floats: exact mixed compare.
        let mut acc = AggAcc::new("MIN").unwrap();
        acc.push(&[Value::Int((1 << 53) + 1)]).unwrap();
        acc.fold_f64s(&[(1i64 << 53) as f64], 0..1, None);
        // 2^53 < 2^53+1 exactly, so the float replaces the int.
        assert_eq!(acc.finish().unwrap(), Value::Float((1i64 << 53) as f64));
        let mut acc = AggAcc::new("MAX").unwrap();
        acc.push(&[Value::Int((1 << 53) + 1)]).unwrap();
        acc.fold_f64s(&[(1i64 << 53) as f64], 0..1, None);
        assert_eq!(acc.finish().unwrap(), Value::Int((1 << 53) + 1));
    }

    #[test]
    fn concat_renders_and_skips_nulls() {
        let v = eval_scalar(
            "CONCAT",
            &[Value::str("web"), Value::Int(1), Value::Null, Value::str("x")],
        )
        .unwrap();
        assert_eq!(v, Value::str("web1x"));
    }

    #[test]
    fn split_and_index_style_usage() {
        let v = eval_scalar("SPLIT", &[Value::str("web-1-a"), Value::str("-")]).unwrap();
        match v {
            Value::List(parts) => {
                assert_eq!(parts, vec![Value::str("web"), Value::str("1"), Value::str("a")]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(eval_scalar("SPLIT", &[Value::Null, Value::str("-")]).unwrap(), Value::Null);
        assert!(eval_scalar("SPLIT", &[Value::str("x"), Value::str("")]).is_err());
    }

    #[test]
    fn greatest_least_with_papers_usage() {
        // GREATEST(write_b - cancelled_write_b, 0)
        let v = eval_scalar("GREATEST", &[Value::Float(-3.0), Value::Int(0)]).unwrap();
        assert_eq!(v, Value::Float(0.0));
        let v = eval_scalar("LEAST", &[Value::Float(5.0), Value::Int(2)]).unwrap();
        assert_eq!(v, Value::Float(2.0));
        assert_eq!(eval_scalar("GREATEST", &[Value::Null, Value::Int(1)]).unwrap(), Value::Null);
    }

    #[test]
    fn hostgroup_udf() {
        assert_eq!(eval_scalar("HOSTGROUP", &[Value::str("web-12")]).unwrap(), Value::str("web"));
        assert_eq!(
            eval_scalar("HOSTGROUP", &[Value::str("standalone")]).unwrap(),
            Value::str("standalone")
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let v = eval_scalar("COALESCE", &[Value::Null, Value::Null, Value::Int(3)]).unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(eval_scalar("COALESCE", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn string_helpers() {
        assert_eq!(eval_scalar("UPPER", &[Value::str("ab")]).unwrap(), Value::str("AB"));
        assert_eq!(eval_scalar("LOWER", &[Value::str("AB")]).unwrap(), Value::str("ab"));
        assert_eq!(eval_scalar("TRIM", &[Value::str(" x ")]).unwrap(), Value::str("x"));
        assert_eq!(eval_scalar("LENGTH", &[Value::str("abc")]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_scalar("SUBSTR", &[Value::str("hello"), Value::Int(2), Value::Int(3)]).unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            eval_scalar("REPLACE", &[Value::str("a-b"), Value::str("-"), Value::str("_")]).unwrap(),
            Value::str("a_b")
        );
    }

    #[test]
    fn math_helpers() {
        assert_eq!(eval_scalar("ABS", &[Value::Float(-2.5)]).unwrap(), Value::Float(2.5));
        assert_eq!(eval_scalar("SQRT", &[Value::Int(9)]).unwrap(), Value::Float(3.0));
        assert_eq!(
            eval_scalar("ROUND", &[Value::Float(2.345), Value::Int(2)]).unwrap(),
            Value::Float(2.35)
        );
        assert_eq!(
            eval_scalar("POW", &[Value::Int(2), Value::Int(10)]).unwrap(),
            Value::Float(1024.0)
        );
    }

    #[test]
    fn aggregate_avg_sum_count() {
        let rows = vec![vec![Value::Float(1.0)], vec![Value::Float(3.0)], vec![Value::Null]];
        assert_eq!(eval_aggregate("AVG", &rows).unwrap(), Value::Float(2.0));
        assert_eq!(eval_aggregate("SUM", &rows).unwrap(), Value::Float(4.0));
        assert_eq!(eval_aggregate("COUNT", &rows).unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_preserves_int_typing() {
        let ints = vec![vec![Value::Int(2)], vec![Value::Int(40)], vec![Value::Null]];
        assert_eq!(eval_aggregate("SUM", &ints).unwrap(), Value::Int(42));
        // One float input demotes the whole sum to Float.
        let mixed = vec![vec![Value::Int(2)], vec![Value::Float(1.5)]];
        assert_eq!(eval_aggregate("SUM", &mixed).unwrap(), Value::Float(3.5));
        // i64 overflow promotes to the (exact) float sum instead of wrapping.
        let big = vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX)]];
        assert_eq!(eval_aggregate("SUM", &big).unwrap(), Value::Float(2.0 * i64::MAX as f64));
    }

    #[test]
    fn aggregate_min_max_strings() {
        let rows = vec![vec![Value::str("b")], vec![Value::str("a")], vec![Value::str("c")]];
        assert_eq!(eval_aggregate("MIN", &rows).unwrap(), Value::str("a"));
        assert_eq!(eval_aggregate("MAX", &rows).unwrap(), Value::str("c"));
    }

    #[test]
    fn aggregate_empty_group() {
        let rows: Vec<Vec<Value>> = vec![];
        assert_eq!(eval_aggregate("AVG", &rows).unwrap(), Value::Null);
        assert_eq!(eval_aggregate("COUNT", &rows).unwrap(), Value::Int(0));
        assert_eq!(eval_aggregate("MIN", &rows).unwrap(), Value::Null);
    }

    #[test]
    fn aggregate_stddev_is_sample_not_population() {
        // [2, 4, 4, 4, 5, 5, 7, 9]: Σv = 40, Σv² = 232, n = 8 →
        // sample variance = (232 − 40²/8) / 7 = 32/7 (population would be 4).
        let rows: Vec<Vec<Value>> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&v| vec![Value::Float(v)])
            .collect();
        assert_eq!(eval_aggregate("VARIANCE", &rows).unwrap(), Value::Float(32.0 / 7.0));
        assert_eq!(eval_aggregate("STDDEV", &rows).unwrap(), Value::Float((32.0f64 / 7.0).sqrt()));
        // n < 2 has no sample variance.
        assert_eq!(eval_aggregate("VARIANCE", &rows[..1]).unwrap(), Value::Null);
    }

    #[test]
    fn percentile_interpolates() {
        let rows: Vec<Vec<Value>> =
            (1..=5).map(|v| vec![Value::Float(v as f64), Value::Float(0.5)]).collect();
        assert_eq!(eval_aggregate("PERCENTILE", &rows).unwrap(), Value::Float(3.0));
        let rows99: Vec<Vec<Value>> =
            (0..101).map(|v| vec![Value::Float(v as f64), Value::Float(0.99)]).collect();
        assert_eq!(eval_aggregate("PERCENTILE", &rows99).unwrap(), Value::Float(99.0));
        let bad: Vec<Vec<Value>> = vec![vec![Value::Float(1.0), Value::Float(2.0)]];
        assert!(eval_aggregate("PERCENTILE", &bad).is_err());
    }

    #[test]
    fn percentile_rejects_non_constant_p() {
        let rows = vec![
            vec![Value::Float(1.0), Value::Float(0.5)],
            vec![Value::Float(2.0), Value::Float(0.9)],
        ];
        let err = eval_aggregate("PERCENTILE", &rows).unwrap_err();
        assert!(matches!(err, QueryError::BadFunction(_)), "got {err:?}");
        // A NULL p row does not conflict with the pinned p.
        let rows = vec![
            vec![Value::Float(1.0), Value::Float(0.5)],
            vec![Value::Float(2.0), Value::Null],
            vec![Value::Float(3.0), Value::Float(0.5)],
        ];
        assert_eq!(eval_aggregate("PERCENTILE", &rows).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn exact_sum_is_order_and_partition_independent() {
        let values = [1e16, 3.25, -1e16, 2.75, 1e-9, 0.1, -0.3, 7.5e15, -7.5e15];
        let mut forward = ExactSum::default();
        for &v in &values {
            forward.add(v);
        }
        let mut backward = ExactSum::default();
        for &v in values.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward.value(), backward.value());
        // Split into two partials and merge: identical bits.
        let (mut a, mut b) = (ExactSum::default(), ExactSum::default());
        for &v in &values[..4] {
            a.add(v);
        }
        for &v in &values[4..] {
            b.add(v);
        }
        a.merge(&b);
        assert_eq!(a.value(), forward.value());
        // And the exact result is right where naive summation drifts.
        assert_eq!(forward.value(), 3.25 + 2.75 + 1e-9 + 0.1 - 0.3);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let rows: Vec<Vec<Value>> = [0.1, 0.2, 0.3, 0.7, -1.5, 2.5, 0.4, 1e15, -1e15]
            .iter()
            .map(|&v| vec![Value::Float(v), Value::Float(0.5)])
            .collect();
        for name in ["COUNT", "SUM", "AVG", "MIN", "MAX", "VARIANCE", "STDDEV", "PERCENTILE"] {
            let serial = eval_aggregate(name, &rows).unwrap();
            for split in [1, 4, 8] {
                let mut left = AggAcc::new(name).unwrap();
                for r in &rows[..split] {
                    left.push(r).unwrap();
                }
                let mut right = AggAcc::new(name).unwrap();
                for r in &rows[split..] {
                    right.push(r).unwrap();
                }
                left.merge(right).unwrap();
                assert_eq!(left.finish().unwrap(), serial, "{name} split at {split}");
            }
        }
    }

    #[test]
    fn minmax_merge_handles_incomparable_classes_like_the_serial_fold() {
        // Strings and numbers are mutually incomparable under sql_cmp: the
        // serial fold keeps the first value's class. Partition merges must
        // reproduce that, whatever the split.
        let rows = vec![
            vec![Value::Int(5)],
            vec![Value::str("zz")],
            vec![Value::Int(1)],
            vec![Value::str("aa")],
        ];
        let serial = eval_aggregate("MIN", &rows).unwrap();
        assert_eq!(serial, Value::Int(1));
        for split in 1..rows.len() {
            let mut l = AggAcc::new("MIN").unwrap();
            for r in &rows[..split] {
                l.push(r).unwrap();
            }
            let mut r_acc = AggAcc::new("MIN").unwrap();
            for r in &rows[split..] {
                r_acc.push(r).unwrap();
            }
            l.merge(r_acc).unwrap();
            assert_eq!(l.finish().unwrap(), serial, "split {split}");
        }
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval_scalar("NOPE", &[]), Err(QueryError::BadFunction(_))));
        assert!(eval_aggregate("NOPE", &[]).is_err());
    }

    #[test]
    fn classification_helpers() {
        assert!(is_aggregate("AVG") && is_aggregate("PERCENTILE"));
        assert!(!is_aggregate("CONCAT"));
        assert!(is_window("LAG") && is_window("LEAD"));
        assert!(!is_window("AVG"));
    }
}
