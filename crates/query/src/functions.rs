//! Scalar and aggregate function implementations.

use crate::value::Value;
use crate::{QueryError, Result};

/// True when `name` (uppercase) is an aggregate function.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "AVG" | "SUM" | "MIN" | "MAX" | "COUNT" | "STDDEV" | "VARIANCE" | "PERCENTILE")
}

/// True when `name` (uppercase) is a window function.
pub fn is_window(name: &str) -> bool {
    matches!(name, "LAG" | "LEAD")
}

/// Evaluates a scalar function over already-evaluated arguments.
pub fn eval_scalar(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "CONCAT" => {
            // NULL inputs render as empty (Spark-style CONCAT returns NULL;
            // the paper's grouping keys are friendlier with empty) — we
            // follow the forgiving variant and document it.
            let mut s = String::new();
            for a in args {
                if !a.is_null() {
                    s.push_str(&a.render());
                }
            }
            Ok(Value::Str(s))
        }
        "SPLIT" => {
            expect_arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) => Ok(Value::Null),
                (Value::Str(s), Value::Str(sep)) => {
                    if sep.is_empty() {
                        return Err(QueryError::BadFunction(
                            "SPLIT separator must be non-empty".into(),
                        ));
                    }
                    Ok(Value::List(
                        s.split(sep.as_str()).map(|p| Value::Str(p.to_string())).collect(),
                    ))
                }
                _ => Err(QueryError::Type("SPLIT expects (string, string)".into())),
            }
        }
        "UPPER" => unary_string(name, args, |s| s.to_uppercase()),
        "LOWER" => unary_string(name, args, |s| s.to_lowercase()),
        "TRIM" => unary_string(name, args, |s| s.trim().to_string()),
        "LENGTH" => {
            expect_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::List(l) => Ok(Value::Int(l.len() as i64)),
                _ => Err(QueryError::Type("LENGTH expects a string or list".into())),
            }
        }
        "COALESCE" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "GREATEST" => fold_numeric(name, args, f64::max),
        "LEAST" => fold_numeric(name, args, f64::min),
        "ABS" => unary_numeric(name, args, f64::abs),
        "SQRT" => unary_numeric(name, args, f64::sqrt),
        "LN" => unary_numeric(name, args, f64::ln),
        "EXP" => unary_numeric(name, args, f64::exp),
        "FLOOR" => unary_numeric(name, args, f64::floor),
        "CEIL" => unary_numeric(name, args, f64::ceil),
        "ROUND" => {
            if args.len() == 1 {
                return unary_numeric(name, args, |v| v.round());
            }
            expect_arity(name, args, 2)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let v = numeric_arg(name, &args[0])?;
            let digits = args[1]
                .as_i64()
                .ok_or_else(|| QueryError::Type("ROUND digits must be integer".into()))?;
            let scale = 10f64.powi(digits as i32);
            Ok(Value::Float((v * scale).round() / scale))
        }
        "POW" | "POWER" => {
            expect_arity(name, args, 2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let a = numeric_arg(name, &args[0])?;
            let b = numeric_arg(name, &args[1])?;
            Ok(Value::Float(a.powf(b)))
        }
        "SUBSTR" | "SUBSTRING" => {
            // SUBSTR(s, start_1_based[, len])
            if args.len() != 2 && args.len() != 3 {
                return Err(QueryError::BadFunction(format!("{name} expects 2 or 3 args")));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let s = args[0]
                .as_str()
                .ok_or_else(|| QueryError::Type("SUBSTR expects a string".into()))?;
            let start = args[1]
                .as_i64()
                .ok_or_else(|| QueryError::Type("SUBSTR start must be integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            let begin = (start.max(1) as usize - 1).min(chars.len());
            let end = match args.get(2) {
                Some(l) => {
                    let len = l
                        .as_i64()
                        .ok_or_else(|| QueryError::Type("SUBSTR length must be integer".into()))?
                        .max(0) as usize;
                    (begin + len).min(chars.len())
                }
                None => chars.len(),
            };
            Ok(Value::Str(chars[begin..end].iter().collect()))
        }
        "REPLACE" => {
            expect_arity(name, args, 3)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            match (&args[0], &args[1], &args[2]) {
                (Value::Str(s), Value::Str(from), Value::Str(to)) => {
                    Ok(Value::Str(s.replace(from.as_str(), to)))
                }
                _ => Err(QueryError::Type("REPLACE expects three strings".into())),
            }
        }
        "HOSTGROUP" => {
            // The UDF from Appendix C: hostgroup('web-12') == 'web'.
            expect_arity(name, args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => {
                    Ok(Value::Str(s.split('-').next().unwrap_or_default().to_string()))
                }
                _ => Err(QueryError::Type("HOSTGROUP expects a string".into())),
            }
        }
        "IF" => {
            expect_arity(name, args, 3)?;
            Ok(if args[0].is_true() { args[1].clone() } else { args[2].clone() })
        }
        "NULLIF" => {
            expect_arity(name, args, 2)?;
            if args[0].sql_cmp(&args[1]) == Some(std::cmp::Ordering::Equal) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        other => Err(QueryError::BadFunction(format!("unknown function {other}"))),
    }
}

/// Evaluates an aggregate function over a group's argument values.
///
/// `args_per_row` holds, for each row in the group, the evaluated argument
/// list. NULL first-arguments are skipped (SQL semantics) except by COUNT
/// whose argument convention here is `COUNT(*)` ≙ `COUNT(1)`.
pub fn eval_aggregate(name: &str, args_per_row: &[Vec<Value>]) -> Result<Value> {
    let first_args: Vec<&Value> =
        args_per_row.iter().map(|a| a.first().unwrap_or(&Value::Null)).collect();
    let numeric: Vec<f64> = first_args.iter().filter_map(|v| v.as_f64()).collect();
    match name {
        "COUNT" => Ok(Value::Int(first_args.iter().filter(|v| !v.is_null()).count() as i64)),
        "SUM" => {
            if numeric.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(numeric.iter().sum()))
            }
        }
        "AVG" => {
            if numeric.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(numeric.iter().sum::<f64>() / numeric.len() as f64))
            }
        }
        "MIN" => min_max(&first_args, true),
        "MAX" => min_max(&first_args, false),
        "STDDEV" | "VARIANCE" => {
            if numeric.len() < 2 {
                return Ok(Value::Null);
            }
            let mean = numeric.iter().sum::<f64>() / numeric.len() as f64;
            let var =
                numeric.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / numeric.len() as f64;
            Ok(Value::Float(if name == "STDDEV" { var.sqrt() } else { var }))
        }
        "PERCENTILE" => {
            // PERCENTILE(expr, p) with p in [0, 1]; p must be constant per
            // group (we read it from the first row).
            let p = args_per_row
                .iter()
                .find_map(|a| a.get(1).and_then(Value::as_f64))
                .ok_or_else(|| QueryError::BadFunction("PERCENTILE needs a p argument".into()))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(QueryError::BadFunction("PERCENTILE p must be in [0,1]".into()));
            }
            if numeric.is_empty() {
                return Ok(Value::Null);
            }
            let mut sorted = numeric;
            sorted.sort_by(f64::total_cmp);
            // Linear interpolation between closest ranks.
            let idx = p * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            Ok(Value::Float(sorted[lo] * (1.0 - frac) + sorted[hi] * frac))
        }
        other => Err(QueryError::BadFunction(format!("unknown aggregate {other}"))),
    }
}

fn min_max(values: &[&Value], want_min: bool) -> Result<Value> {
    let mut best: Option<&Value> = None;
    for v in values {
        if v.is_null() {
            continue;
        }
        best = Some(match best {
            None => v,
            Some(b) => {
                let take_new = match v.sql_cmp(b) {
                    Some(std::cmp::Ordering::Less) => want_min,
                    Some(std::cmp::Ordering::Greater) => !want_min,
                    _ => false,
                };
                if take_new {
                    v
                } else {
                    b
                }
            }
        });
    }
    Ok(best.cloned().unwrap_or(Value::Null))
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(QueryError::BadFunction(format!("{name} expects {n} argument(s), got {}", args.len())))
    }
}

fn numeric_arg(name: &str, v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| QueryError::Type(format!("{name} expects a numeric argument, got {v}")))
}

fn unary_numeric(name: &str, args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value> {
    expect_arity(name, args, 1)?;
    if args[0].is_null() {
        return Ok(Value::Null);
    }
    Ok(Value::Float(f(numeric_arg(name, &args[0])?)))
}

fn unary_string(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    expect_arity(name, args, 1)?;
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(f(s))),
        _ => Err(QueryError::Type(format!("{name} expects a string"))),
    }
}

fn fold_numeric(name: &str, args: &[Value], f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    if args.is_empty() {
        return Err(QueryError::BadFunction(format!("{name} needs arguments")));
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let mut acc = numeric_arg(name, &args[0])?;
    for a in &args[1..] {
        acc = f(acc, numeric_arg(name, a)?);
    }
    Ok(Value::Float(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_renders_and_skips_nulls() {
        let v = eval_scalar(
            "CONCAT",
            &[Value::str("web"), Value::Int(1), Value::Null, Value::str("x")],
        )
        .unwrap();
        assert_eq!(v, Value::str("web1x"));
    }

    #[test]
    fn split_and_index_style_usage() {
        let v = eval_scalar("SPLIT", &[Value::str("web-1-a"), Value::str("-")]).unwrap();
        match v {
            Value::List(parts) => {
                assert_eq!(parts, vec![Value::str("web"), Value::str("1"), Value::str("a")]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(eval_scalar("SPLIT", &[Value::Null, Value::str("-")]).unwrap(), Value::Null);
        assert!(eval_scalar("SPLIT", &[Value::str("x"), Value::str("")]).is_err());
    }

    #[test]
    fn greatest_least_with_papers_usage() {
        // GREATEST(write_b - cancelled_write_b, 0)
        let v = eval_scalar("GREATEST", &[Value::Float(-3.0), Value::Int(0)]).unwrap();
        assert_eq!(v, Value::Float(0.0));
        let v = eval_scalar("LEAST", &[Value::Float(5.0), Value::Int(2)]).unwrap();
        assert_eq!(v, Value::Float(2.0));
        assert_eq!(eval_scalar("GREATEST", &[Value::Null, Value::Int(1)]).unwrap(), Value::Null);
    }

    #[test]
    fn hostgroup_udf() {
        assert_eq!(eval_scalar("HOSTGROUP", &[Value::str("web-12")]).unwrap(), Value::str("web"));
        assert_eq!(
            eval_scalar("HOSTGROUP", &[Value::str("standalone")]).unwrap(),
            Value::str("standalone")
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let v = eval_scalar("COALESCE", &[Value::Null, Value::Null, Value::Int(3)]).unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(eval_scalar("COALESCE", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn string_helpers() {
        assert_eq!(eval_scalar("UPPER", &[Value::str("ab")]).unwrap(), Value::str("AB"));
        assert_eq!(eval_scalar("LOWER", &[Value::str("AB")]).unwrap(), Value::str("ab"));
        assert_eq!(eval_scalar("TRIM", &[Value::str(" x ")]).unwrap(), Value::str("x"));
        assert_eq!(eval_scalar("LENGTH", &[Value::str("abc")]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_scalar("SUBSTR", &[Value::str("hello"), Value::Int(2), Value::Int(3)]).unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            eval_scalar("REPLACE", &[Value::str("a-b"), Value::str("-"), Value::str("_")]).unwrap(),
            Value::str("a_b")
        );
    }

    #[test]
    fn math_helpers() {
        assert_eq!(eval_scalar("ABS", &[Value::Float(-2.5)]).unwrap(), Value::Float(2.5));
        assert_eq!(eval_scalar("SQRT", &[Value::Int(9)]).unwrap(), Value::Float(3.0));
        assert_eq!(
            eval_scalar("ROUND", &[Value::Float(2.345), Value::Int(2)]).unwrap(),
            Value::Float(2.35)
        );
        assert_eq!(
            eval_scalar("POW", &[Value::Int(2), Value::Int(10)]).unwrap(),
            Value::Float(1024.0)
        );
    }

    #[test]
    fn aggregate_avg_sum_count() {
        let rows = vec![vec![Value::Float(1.0)], vec![Value::Float(3.0)], vec![Value::Null]];
        assert_eq!(eval_aggregate("AVG", &rows).unwrap(), Value::Float(2.0));
        assert_eq!(eval_aggregate("SUM", &rows).unwrap(), Value::Float(4.0));
        assert_eq!(eval_aggregate("COUNT", &rows).unwrap(), Value::Int(2));
    }

    #[test]
    fn aggregate_min_max_strings() {
        let rows = vec![vec![Value::str("b")], vec![Value::str("a")], vec![Value::str("c")]];
        assert_eq!(eval_aggregate("MIN", &rows).unwrap(), Value::str("a"));
        assert_eq!(eval_aggregate("MAX", &rows).unwrap(), Value::str("c"));
    }

    #[test]
    fn aggregate_empty_group() {
        let rows: Vec<Vec<Value>> = vec![];
        assert_eq!(eval_aggregate("AVG", &rows).unwrap(), Value::Null);
        assert_eq!(eval_aggregate("COUNT", &rows).unwrap(), Value::Int(0));
        assert_eq!(eval_aggregate("MIN", &rows).unwrap(), Value::Null);
    }

    #[test]
    fn aggregate_stddev() {
        let rows: Vec<Vec<Value>> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&v| vec![Value::Float(v)])
            .collect();
        assert_eq!(eval_aggregate("STDDEV", &rows).unwrap(), Value::Float(2.0));
        assert_eq!(eval_aggregate("VARIANCE", &rows).unwrap(), Value::Float(4.0));
    }

    #[test]
    fn percentile_interpolates() {
        let rows: Vec<Vec<Value>> =
            (1..=5).map(|v| vec![Value::Float(v as f64), Value::Float(0.5)]).collect();
        assert_eq!(eval_aggregate("PERCENTILE", &rows).unwrap(), Value::Float(3.0));
        let rows99: Vec<Vec<Value>> =
            (0..101).map(|v| vec![Value::Float(v as f64), Value::Float(0.99)]).collect();
        assert_eq!(eval_aggregate("PERCENTILE", &rows99).unwrap(), Value::Float(99.0));
        let bad: Vec<Vec<Value>> = vec![vec![Value::Float(1.0), Value::Float(2.0)]];
        assert!(eval_aggregate("PERCENTILE", &bad).is_err());
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval_scalar("NOPE", &[]), Err(QueryError::BadFunction(_))));
        assert!(eval_aggregate("NOPE", &[]).is_err());
    }

    #[test]
    fn classification_helpers() {
        assert!(is_aggregate("AVG") && is_aggregate("PERCENTILE"));
        assert!(!is_aggregate("CONCAT"));
        assert!(is_window("LAG") && is_window("LEAD"));
        assert!(!is_window("AVG"));
    }
}
