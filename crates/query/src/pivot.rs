//! Pivoting query results into feature families.
//!
//! The second stage of the paper's pipeline (Figure 4) turns stage-one query
//! output into the Feature Family Table: one entry per `(timestamp, family)`
//! holding a map of feature values. Two layouts are supported:
//!
//! * **wide** — `(ts, family, v1, v2, ...)`: each numeric column is a
//!   feature of the family (the paper's network-features query produces 6
//!   features per `(src, port)` family);
//! * **long** — `(ts, family, feature, value)`: each distinct feature string
//!   becomes a column (grouping all of `disk{host=...}` under family
//!   `disk`).
//!
//! Missing `(ts, feature)` cells follow the paper's policy: interpolated to
//! the closest non-null observation of that feature.

use std::collections::HashMap;

use crate::column::Column;
use crate::table::Table;
use crate::value::Value;
use crate::{QueryError, Result};

/// Column accessors that read typed column vectors directly, falling back
/// to per-entry [`Value`] extraction for generic columns. This keeps the
/// pivot on the columnar fast path — no row materialization, and no `Value`
/// boxing for dense `Int`/`Float`/`Str` columns.
struct ColReader<'t> {
    col: &'t Column,
}

impl<'t> ColReader<'t> {
    fn new(table: &'t Table, idx: usize) -> Self {
        ColReader { col: table.column_at(idx) }
    }

    /// Timestamp view: `None` for non-integer cells (row skipped upstream).
    fn ts(&self, i: usize) -> Option<i64> {
        match self.col {
            Column::Int(v) => Some(v[i]),
            other => other.get(i).as_i64(),
        }
    }

    /// Numeric view: NaN marks a gap.
    fn num(&self, i: usize) -> f64 {
        match self.col {
            Column::Float(v) => v[i],
            Column::Int(v) => v[i] as f64,
            other => other.get(i).as_f64().unwrap_or(f64::NAN),
        }
    }

    /// Label view (family / feature names).
    fn label(&self, i: usize) -> String {
        match self.col {
            Column::Str(v) => v[i].clone(),
            other => render_family(&other.get(i)),
        }
    }
}

/// A dense per-family frame: shared timestamps × named feature columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyFrame {
    /// Family name (the paper's grouping key, e.g. metric name).
    pub name: String,
    /// Sorted shared timestamps.
    pub timestamps: Vec<i64>,
    /// Feature column names.
    pub feature_names: Vec<String>,
    /// One dense column per feature (parallel to `feature_names`, each of
    /// `timestamps.len()` values).
    pub columns: Vec<Vec<f64>>,
}

impl FamilyFrame {
    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

/// Pivots a wide table: `ts_col` and `family_col` identify the row, every
/// *other* column is a feature (non-numeric cells become gaps, then get
/// nearest-filled).
pub fn pivot_wide(table: &Table, ts_col: &str, family_col: &str) -> Result<Vec<FamilyFrame>> {
    let ts_idx = table.schema().resolve(ts_col)?;
    let fam_idx = table.schema().resolve(family_col)?;
    let feature_idx: Vec<usize> =
        (0..table.schema().len()).filter(|&i| i != ts_idx && i != fam_idx).collect();
    if feature_idx.is_empty() {
        return Err(QueryError::Plan("pivot_wide needs at least one feature column".into()));
    }
    let ts_col = ColReader::new(table, ts_idx);
    let fam_col = ColReader::new(table, fam_idx);
    let features: Vec<(String, ColReader)> = feature_idx
        .iter()
        .map(|&fi| (table.schema().columns()[fi].clone(), ColReader::new(table, fi)))
        .collect();
    let mut builder = PivotBuilder::new();
    for i in 0..table.len() {
        let Some(ts) = ts_col.ts(i) else { continue };
        let family = fam_col.label(i);
        for (feature, col) in &features {
            builder.add(family.clone(), ts, feature.clone(), col.num(i));
        }
    }
    Ok(builder.finish())
}

/// Pivots a wide table into a *single* family named `family_name`:
/// `ts_col` identifies the row, every other column is a feature. Used for
/// target/condition queries that aggregate to one series set per timestamp
/// and carry no family label column.
pub fn pivot_one(table: &Table, ts_col: &str, family_name: &str) -> Result<FamilyFrame> {
    let ts_idx = table.schema().resolve(ts_col)?;
    let feature_idx: Vec<usize> = (0..table.schema().len()).filter(|&i| i != ts_idx).collect();
    if feature_idx.is_empty() {
        return Err(QueryError::Plan("pivot_one needs at least one feature column".into()));
    }
    let ts_col = ColReader::new(table, ts_idx);
    let features: Vec<(String, ColReader)> = feature_idx
        .iter()
        .map(|&fi| (table.schema().columns()[fi].clone(), ColReader::new(table, fi)))
        .collect();
    let mut builder = PivotBuilder::new();
    for i in 0..table.len() {
        let Some(ts) = ts_col.ts(i) else { continue };
        for (feature, col) in &features {
            builder.add(family_name.to_string(), ts, feature.clone(), col.num(i));
        }
    }
    let mut frames = builder.finish();
    if frames.is_empty() {
        // No usable rows: an empty frame under the requested name.
        return Ok(FamilyFrame {
            name: family_name.to_string(),
            timestamps: Vec::new(),
            feature_names: features.into_iter().map(|(n, _)| n).collect(),
            columns: vec![Vec::new(); feature_idx.len()],
        });
    }
    Ok(frames.remove(0))
}

/// Pivots a long table: each row is `(ts, family, feature, value)`.
pub fn pivot_long(
    table: &Table,
    ts_col: &str,
    family_col: &str,
    feature_col: &str,
    value_col: &str,
) -> Result<Vec<FamilyFrame>> {
    let ts_idx = table.schema().resolve(ts_col)?;
    let fam_idx = table.schema().resolve(family_col)?;
    let feat_idx = table.schema().resolve(feature_col)?;
    let val_idx = table.schema().resolve(value_col)?;
    let ts = ColReader::new(table, ts_idx);
    let fam = ColReader::new(table, fam_idx);
    let feat = ColReader::new(table, feat_idx);
    let val = ColReader::new(table, val_idx);
    let mut builder = PivotBuilder::new();
    for i in 0..table.len() {
        let Some(t) = ts.ts(i) else { continue };
        builder.add(fam.label(i), t, feat.label(i), val.num(i));
    }
    Ok(builder.finish())
}

fn render_family(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        other => other.render(),
    }
}

/// Accumulates sparse (family, ts, feature) → value cells and densifies.
struct PivotBuilder {
    /// family -> (feature -> (ts -> value)); insertion order preserved.
    families: Vec<(String, FamilyAcc)>,
    index: HashMap<String, usize>,
}

/// Sparse per-feature cells: timestamp -> value.
type FeatureCells = HashMap<i64, f64>;

struct FamilyAcc {
    features: Vec<(String, FeatureCells)>,
    feature_index: HashMap<String, usize>,
    timestamps: Vec<i64>,
    seen_ts: HashMap<i64, ()>,
}

impl PivotBuilder {
    fn new() -> Self {
        PivotBuilder { families: Vec::new(), index: HashMap::new() }
    }

    fn add(&mut self, family: String, ts: i64, feature: String, value: f64) {
        let fi = match self.index.get(&family) {
            Some(&i) => i,
            None => {
                let i = self.families.len();
                self.index.insert(family.clone(), i);
                self.families.push((
                    family,
                    FamilyAcc {
                        features: Vec::new(),
                        feature_index: HashMap::new(),
                        timestamps: Vec::new(),
                        seen_ts: HashMap::new(),
                    },
                ));
                i
            }
        };
        let acc = &mut self.families[fi].1;
        if acc.seen_ts.insert(ts, ()).is_none() {
            acc.timestamps.push(ts);
        }
        let col = match acc.feature_index.get(&feature) {
            Some(&i) => i,
            None => {
                let i = acc.features.len();
                acc.feature_index.insert(feature.clone(), i);
                acc.features.push((feature, HashMap::new()));
                i
            }
        };
        // Last write wins for duplicate cells (mirrors overwrite semantics
        // in the TSDB).
        if value.is_finite() {
            acc.features[col].1.insert(ts, value);
        }
    }

    fn finish(self) -> Vec<FamilyFrame> {
        self.families
            .into_iter()
            .map(|(name, mut acc)| {
                acc.timestamps.sort_unstable();
                let timestamps = acc.timestamps;
                let mut feature_names = Vec::with_capacity(acc.features.len());
                let mut columns = Vec::with_capacity(acc.features.len());
                for (fname, cells) in acc.features {
                    let mut col: Vec<f64> = timestamps
                        .iter()
                        .map(|t| cells.get(t).copied().unwrap_or(f64::NAN))
                        .collect();
                    nearest_fill(&timestamps, &mut col);
                    feature_names.push(fname);
                    columns.push(col);
                }
                FamilyFrame { name, timestamps, feature_names, columns }
            })
            .collect()
    }
}

/// Replaces NaN gaps with the value of the nearest (in time) non-NaN
/// observation; all-NaN columns become all-zero (a constant feature the
/// scorers already treat as signal-free).
fn nearest_fill(timestamps: &[i64], col: &mut [f64]) {
    let known: Vec<(i64, f64)> = timestamps
        .iter()
        .zip(col.iter())
        .filter(|(_, v)| v.is_finite())
        .map(|(&t, &v)| (t, v))
        .collect();
    if known.is_empty() {
        for v in col.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    for (i, v) in col.iter_mut().enumerate() {
        if v.is_finite() {
            continue;
        }
        let t = timestamps[i];
        // Binary search over known timestamps.
        let pos = known.partition_point(|&(kt, _)| kt < t);
        let candidate = if pos == 0 {
            known[0]
        } else if pos == known.len() {
            known[known.len() - 1]
        } else {
            let before = known[pos - 1];
            let after = known[pos];
            if (t - before.0) <= (after.0 - t) {
                before
            } else {
                after
            }
        };
        *v = candidate.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_table() -> Table {
        Table::from_rows(
            &["ts", "name", "cpu", "mem"],
            vec![
                vec![Value::Int(0), Value::str("web"), Value::Float(1.0), Value::Float(10.0)],
                vec![Value::Int(60), Value::str("web"), Value::Float(2.0), Value::Float(20.0)],
                vec![Value::Int(0), Value::str("db"), Value::Float(5.0), Value::Float(50.0)],
            ],
        )
    }

    #[test]
    fn wide_pivot_produces_one_frame_per_family() {
        let frames = pivot_wide(&wide_table(), "ts", "name").unwrap();
        assert_eq!(frames.len(), 2);
        let web = frames.iter().find(|f| f.name == "web").unwrap();
        assert_eq!(web.timestamps, vec![0, 60]);
        assert_eq!(web.feature_names, vec!["cpu", "mem"]);
        assert_eq!(web.columns[0], vec![1.0, 2.0]);
        assert_eq!(web.columns[1], vec![10.0, 20.0]);
        let db = frames.iter().find(|f| f.name == "db").unwrap();
        assert_eq!(db.timestamps, vec![0]);
    }

    #[test]
    fn pivot_one_collapses_to_a_named_family() {
        let t = Table::from_rows(
            &["ts", "runtime_sec", "input_gb"],
            vec![
                vec![Value::Int(60), Value::Float(2.0), Value::Float(20.0)],
                vec![Value::Int(0), Value::Float(1.0), Value::Float(10.0)],
            ],
        );
        let f = pivot_one(&t, "ts", "pipeline_runtime").unwrap();
        assert_eq!(f.name, "pipeline_runtime");
        assert_eq!(f.timestamps, vec![0, 60]);
        assert_eq!(f.feature_names, vec!["runtime_sec", "input_gb"]);
        assert_eq!(f.columns[0], vec![1.0, 2.0]);
        assert_eq!(f.columns[1], vec![10.0, 20.0]);
    }

    #[test]
    fn pivot_one_empty_input_keeps_schema() {
        let t = Table::empty(&["ts", "v"]);
        let f = pivot_one(&t, "ts", "empty").unwrap();
        assert!(f.is_empty());
        assert_eq!(f.feature_names, vec!["v"]);
        assert!(pivot_one(&Table::empty(&["ts"]), "ts", "x").is_err());
    }

    #[test]
    fn long_pivot_spreads_features() {
        let t = Table::from_rows(
            &["ts", "fam", "feat", "v"],
            vec![
                vec![Value::Int(0), Value::str("disk"), Value::str("h1.read"), Value::Float(1.0)],
                vec![Value::Int(0), Value::str("disk"), Value::str("h2.read"), Value::Float(2.0)],
                vec![Value::Int(60), Value::str("disk"), Value::str("h1.read"), Value::Float(3.0)],
                vec![Value::Int(60), Value::str("disk"), Value::str("h2.read"), Value::Float(4.0)],
            ],
        );
        let frames = pivot_long(&t, "ts", "fam", "feat", "v").unwrap();
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!(f.width(), 2);
        assert_eq!(f.columns[0], vec![1.0, 3.0]);
        assert_eq!(f.columns[1], vec![2.0, 4.0]);
    }

    #[test]
    fn missing_cells_nearest_filled() {
        let t = Table::from_rows(
            &["ts", "fam", "feat", "v"],
            vec![
                vec![Value::Int(0), Value::str("f"), Value::str("a"), Value::Float(1.0)],
                vec![Value::Int(60), Value::str("f"), Value::str("b"), Value::Float(9.0)],
                vec![Value::Int(120), Value::str("f"), Value::str("a"), Value::Float(5.0)],
            ],
        );
        let frames = pivot_long(&t, "ts", "fam", "feat", "v").unwrap();
        let f = &frames[0];
        // Feature a is missing at ts=60: equidistant to 0 and 120, prefers
        // the earlier (1.0).
        let a = &f.columns[f.feature_names.iter().position(|n| n == "a").unwrap()];
        assert_eq!(a, &vec![1.0, 1.0, 5.0]);
        // Feature b only exists at 60: clamps outward.
        let b = &f.columns[f.feature_names.iter().position(|n| n == "b").unwrap()];
        assert_eq!(b, &vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn non_numeric_values_are_gaps() {
        let t = Table::from_rows(
            &["ts", "fam", "x"],
            vec![
                vec![Value::Int(0), Value::str("f"), Value::str("oops")],
                vec![Value::Int(60), Value::str("f"), Value::Float(2.0)],
            ],
        );
        let frames = pivot_wide(&t, "ts", "fam").unwrap();
        assert_eq!(frames[0].columns[0], vec![2.0, 2.0]);
    }

    #[test]
    fn all_gap_feature_becomes_zero() {
        let t = Table::from_rows(
            &["ts", "fam", "x"],
            vec![vec![Value::Int(0), Value::str("f"), Value::Null]],
        );
        let frames = pivot_wide(&t, "ts", "fam").unwrap();
        assert_eq!(frames[0].columns[0], vec![0.0]);
    }

    #[test]
    fn null_family_becomes_null_string() {
        let t = Table::from_rows(
            &["ts", "fam", "x"],
            vec![vec![Value::Int(0), Value::Null, Value::Float(1.0)]],
        );
        let frames = pivot_wide(&t, "ts", "fam").unwrap();
        assert_eq!(frames[0].name, "NULL");
    }

    #[test]
    fn no_feature_columns_errors() {
        let t = Table::from_rows(&["ts", "fam"], vec![vec![Value::Int(0), Value::str("f")]]);
        assert!(pivot_wide(&t, "ts", "fam").is_err());
    }

    #[test]
    fn unsorted_input_timestamps_sorted() {
        let t = Table::from_rows(
            &["ts", "fam", "x"],
            vec![
                vec![Value::Int(120), Value::str("f"), Value::Float(3.0)],
                vec![Value::Int(0), Value::str("f"), Value::Float(1.0)],
                vec![Value::Int(60), Value::str("f"), Value::Float(2.0)],
            ],
        );
        let frames = pivot_wide(&t, "ts", "fam").unwrap();
        assert_eq!(frames[0].timestamps, vec![0, 60, 120]);
        assert_eq!(frames[0].columns[0], vec![1.0, 2.0, 3.0]);
    }
}
