//! Optimizer invariant verifier: structural checks that run after *each*
//! rewrite rule of [`crate::optimize`].
//!
//! Every rule in the optimizer is result-preserving by design, but that
//! contract lives in comments and in the differential suite — neither of
//! which points at the *rule* that broke it when a rewrite regresses. This
//! module closes that gap: [`check_after`] re-derives the eligibility
//! analysis each shape-changing rule relied on and fails fast, naming the
//! rule, when the rewritten tree no longer satisfies it.
//!
//! The verifier runs:
//!
//! * always under `debug_assertions` (so `cargo test` exercises it across
//!   the whole differential and plan-shape corpus),
//! * in release builds when [`crate::optimize::OptimizeOptions::verify`]
//!   is set or the `EXPLAINIT_VERIFY_PLANS` environment variable is
//!   non-`0` (the CI release-mode differential job sets it).
//!
//! Checks, in tree order:
//!
//! 1. **Schema preservation** — the optimized root must expose exactly the
//!    column names the planned root did. Skipped when either schema cannot
//!    be resolved (unit tests optimize plans over detached catalogs).
//! 2. **ScanAggregate re-eligibility** — every [`LogicalPlan::ScanAggregate`]
//!    is expanded back into the `Aggregate → Filter* → TsdbScan` chain it
//!    came from and re-run through the rule-6 eligibility analysis
//!    ([`crate::optimize::scan_aggregate_eligible`]): mergeable aggregates
//!    only, dictionary/timestamp group keys, the NaN `MIN`/`MAX` ordering
//!    rule, vectorizable filters.
//! 3. **Exchange mergeability** — an [`LogicalPlan::Exchange`] may only
//!    wrap a two-phase-mergeable `Aggregate` or a TSDB-rooted vectorizable
//!    `Project` (rule 5's eligibility, re-checked).
//! 4. **Residual filter chains** — a `Filter` chain left directly above a
//!    `TsdbScan` must reference only columns the (possibly pruned) scan
//!    still produces, and must keep rule 3's cost classes sorted:
//!    per-series dictionary predicates innermost, kernel-refinable point
//!    predicates next, general expressions outermost. (Only enforced once
//!    `pushdown` has run — the planner's raw WHERE chain predates the
//!    ordering.)
//! 5. **Sort key bounds** — every sort key indexes a real column of the
//!    extended (visible + hidden) child output, and the visible width
//!    never exceeds the extended width.
//! 6. **Union shape** — a `Union` node keeps at least one branch.
//!
//! Violations surface as [`QueryError::Plan`] with the message prefix
//! `optimizer invariant violated after <rule>:`.

use explainit_sync::{LockClass, OnceLock};

use crate::ast::Expr;
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::optimize::{
    aggregate_exchange_eligible, collect_columns, project_exchange_eligible,
    scan_aggregate_eligible,
};
use crate::plan::{LogicalPlan, TSDB_COLUMNS};
use crate::table::Schema;
use crate::veval;
use crate::Result;

/// True when `EXPLAINIT_VERIFY_PLANS` forces verification on (cached — the
/// environment is read once per process).
pub(crate) fn env_forced() -> bool {
    static FORCED_CLASS: LockClass = LockClass::new("query.verify.forced", 15);
    static FORCED: OnceLock<bool> = OnceLock::new(&FORCED_CLASS);
    *FORCED.get_or_init(|| std::env::var_os("EXPLAINIT_VERIFY_PLANS").is_some_and(|v| v != "0"))
}

/// Verifies every invariant on an optimized plan, independent of any
/// particular rule. Public entry point for tests and tools; the optimizer
/// itself calls [`check_after`] with the rule name.
pub fn verify_plan(plan: &LogicalPlan, catalog: &Catalog) -> Result<()> {
    check_after("manual check", plan, None, catalog)
}

/// Runs all structural checks against the tree `rule` just produced.
/// `planned` is the root schema before any rewrite ran (`None` skips the
/// preservation check).
pub(crate) fn check_after(
    rule: &'static str,
    plan: &LogicalPlan,
    planned: Option<&Schema>,
    catalog: &Catalog,
) -> Result<()> {
    if let (Some(before), Ok(after)) = (planned, plan.schema(catalog)) {
        if before.columns() != after.columns() {
            return violation(
                rule,
                format!(
                    "root schema changed from [{}] to [{}]",
                    before.columns().join(", "),
                    after.columns().join(", ")
                ),
            );
        }
    }
    // The planner's raw WHERE chain predates rule 3's cost ordering.
    let ordered = !matches!(rule, "fold_constants" | "convert_tsdb_scans");
    walk(plan, rule, ordered, false, catalog)
}

fn violation(rule: &str, message: String) -> Result<()> {
    Err(QueryError::Plan(format!("optimizer invariant violated after {rule}: {message}")))
}

fn walk(
    plan: &LogicalPlan,
    rule: &'static str,
    ordered: bool,
    under_filter: bool,
    catalog: &Catalog,
) -> Result<()> {
    match plan {
        LogicalPlan::ScanAggregate {
            table,
            name,
            tags,
            start,
            end,
            filters,
            group_by,
            items,
            hidden,
        } => {
            // Expand the node back into the chain rule 6 collapsed and
            // re-run the eligibility analysis it must have passed.
            let mut synth = LogicalPlan::TsdbScan {
                table: table.clone(),
                name: name.clone(),
                tags: tags.clone(),
                start: *start,
                end: *end,
                columns: None,
            };
            for predicate in filters.iter().rev() {
                synth =
                    LogicalPlan::Filter { input: Box::new(synth), predicate: predicate.clone() };
            }
            if !scan_aggregate_eligible(&synth, group_by, items, hidden) {
                return violation(
                    rule,
                    format!("ScanAggregate over {table} fails re-run of rule-6 eligibility"),
                );
            }
            check_filter_classes(filters.iter().collect(), rule, ordered)
        }
        LogicalPlan::Exchange { input } => {
            match input.as_ref() {
                LogicalPlan::Aggregate { input, group_by, items, hidden } => {
                    if !aggregate_exchange_eligible(input, group_by, items, hidden) {
                        return violation(
                            rule,
                            "Exchange wraps an aggregate whose partials do not merge".to_string(),
                        );
                    }
                }
                LogicalPlan::Project { input, items, hidden } => {
                    if !project_exchange_eligible(input, items, hidden) {
                        return violation(
                            rule,
                            "Exchange wraps a non-vectorizable projection".to_string(),
                        );
                    }
                }
                other => {
                    return violation(
                        rule,
                        format!("Exchange wraps a non-pipeline node ({})", node_name(other)),
                    );
                }
            }
            walk(input, rule, ordered, false, catalog)
        }
        LogicalPlan::Filter { .. } => {
            // Check each maximal chain once, from its outermost node.
            let (filters, source) = peel(plan);
            if !under_filter && matches!(source, LogicalPlan::TsdbScan { .. }) {
                let Ok(scan_schema) = source.schema(catalog) else {
                    return Ok(());
                };
                for predicate in &filters {
                    let mut cols = Vec::new();
                    collect_columns(predicate, &mut cols);
                    for col in cols {
                        if scan_schema.resolve(&col).is_err() {
                            return violation(
                                rule,
                                format!("residual predicate references `{col}`, which the pruned scan no longer produces"),
                            );
                        }
                    }
                }
                check_filter_classes(filters, rule, ordered)?;
            }
            let LogicalPlan::Filter { input, .. } = plan else { unreachable!() };
            walk(input, rule, ordered, true, catalog)
        }
        LogicalPlan::Sort { input, keys, output_width } => {
            // Peel a parallelization marker: Sort reads the pipeline output.
            let mut child = input.as_ref();
            if let LogicalPlan::Exchange { input } = child {
                child = input;
            }
            let extended = match child {
                LogicalPlan::Project { items, hidden, .. }
                | LogicalPlan::Aggregate { items, hidden, .. }
                | LogicalPlan::ScanAggregate { items, hidden, .. } => {
                    Some(items.len() + hidden.len())
                }
                _ => None,
            };
            if let Some(width) = extended {
                if let Some(&(key, _)) = keys.iter().find(|(k, _)| *k >= width) {
                    return violation(
                        rule,
                        format!("sort key #{key} out of bounds for extended width {width}"),
                    );
                }
                if *output_width > width {
                    return violation(
                        rule,
                        format!("sort output width {output_width} exceeds extended width {width}"),
                    );
                }
            }
            walk(input, rule, ordered, false, catalog)
        }
        LogicalPlan::Union { inputs } => {
            if inputs.is_empty() {
                return violation(rule, "Union lost all of its branches".to_string());
            }
            for branch in inputs {
                walk(branch, rule, ordered, false, catalog)?;
            }
            Ok(())
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Alias { input, .. }
        | LogicalPlan::Limit { input, .. } => walk(input, rule, ordered, false, catalog),
        LogicalPlan::Join { left, right, .. } => {
            walk(left, rule, ordered, false, catalog)?;
            walk(right, rule, ordered, false, catalog)
        }
        LogicalPlan::Scan { .. } | LogicalPlan::TsdbScan { .. } | LogicalPlan::Unit => Ok(()),
    }
}

/// Splits a `Filter` chain (outermost first) off a plan.
fn peel(mut plan: &LogicalPlan) -> (Vec<&Expr>, &LogicalPlan) {
    let mut filters = Vec::new();
    loop {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                filters.push(predicate);
                plan = input;
            }
            other => return (filters, other),
        }
    }
}

/// Rule 3's cost class of one residual conjunct: 0 = per-series dictionary
/// predicate, 1 = kernel-refinable point predicate, 2 = general expression.
fn filter_class(predicate: &Expr, schema: &Schema) -> usize {
    let dict_only = {
        let mut cols = Vec::new();
        collect_columns(predicate, &mut cols);
        cols.iter().all(|c| schema.resolve(c).is_ok_and(|i| i == 1 || i == 2))
    };
    if dict_only {
        0
    } else if veval::span_refinable(predicate, schema) {
        1
    } else {
        2
    }
}

/// Checks a residual chain (outermost first) keeps rule 3's non-increasing
/// cost-class order — equivalently: cheapest class innermost.
fn check_filter_classes(filters: Vec<&Expr>, rule: &str, ordered: bool) -> Result<()> {
    if !ordered || filters.len() < 2 {
        return Ok(());
    }
    let schema = Schema::new(TSDB_COLUMNS.iter().map(|s| s.to_string()).collect());
    let classes: Vec<usize> = filters.iter().map(|p| filter_class(p, &schema)).collect();
    if classes.windows(2).any(|w| w[0] < w[1]) {
        return violation(
            rule,
            format!(
                "residual filter chain out of cost order (outermost-first classes {classes:?})"
            ),
        );
    }
    Ok(())
}

fn node_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::TsdbScan { .. } => "TsdbScan",
        LogicalPlan::Unit => "Unit",
        LogicalPlan::Alias { .. } => "Alias",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Union { .. } => "Union",
        LogicalPlan::Exchange { .. } => "Exchange",
        LogicalPlan::ScanAggregate { .. } => "ScanAggregate",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinaryOp;
    use crate::value::Value;

    fn lit(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    fn cmp(left: Expr, right: Expr) -> Expr {
        Expr::Binary { op: BinaryOp::Gt, left: Box::new(left), right: Box::new(right) }
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::TsdbScan {
            table: "tsdb".to_string(),
            name: None,
            tags: Vec::new(),
            start: None,
            end: None,
            columns: None,
        }
    }

    fn filter(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter { input: Box::new(input), predicate }
    }

    #[test]
    fn well_formed_chain_passes() {
        let catalog = Catalog::new();
        // general outermost, dict innermost: the order rule 3 produces.
        let plan = filter(
            filter(
                scan(),
                Expr::Binary {
                    op: BinaryOp::Eq,
                    left: Box::new(col("metric_name")),
                    right: Box::new(Expr::Literal(Value::str("cpu"))),
                },
            ),
            Expr::Function { name: "ABS".to_string(), args: vec![col("value")] },
        );
        assert!(verify_plan(&plan, &catalog).is_ok());
    }

    #[test]
    fn inverted_chain_is_flagged() {
        let catalog = Catalog::new();
        // dict predicate outermost, general innermost: inverted cost order.
        let plan = filter(
            filter(scan(), Expr::Function { name: "ABS".to_string(), args: vec![col("value")] }),
            Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(col("metric_name")),
                right: Box::new(Expr::Literal(Value::str("cpu"))),
            },
        );
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("cost order")), "{err}");
    }

    #[test]
    fn pruned_away_filter_column_is_flagged() {
        let catalog = Catalog::new();
        let pruned = LogicalPlan::TsdbScan {
            table: "tsdb".to_string(),
            name: None,
            tags: Vec::new(),
            start: None,
            end: None,
            columns: Some(vec![0]),
        };
        let plan = filter(pruned, cmp(col("value"), lit(1)));
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("no longer produces")), "{err}");
    }

    #[test]
    fn exchange_over_scan_is_flagged() {
        let catalog = Catalog::new();
        let plan = LogicalPlan::Exchange { input: Box::new(scan()) };
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("non-pipeline")), "{err}");
    }

    #[test]
    fn exchange_over_window_projection_is_flagged() {
        let catalog = Catalog::new();
        let lag = Expr::Function { name: "LAG".to_string(), args: vec![col("value"), lit(1)] };
        let plan = LogicalPlan::Exchange {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan()),
                items: vec![(lag, "l".to_string())],
                hidden: Vec::new(),
            }),
        };
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("non-vectorizable")), "{err}");
    }

    #[test]
    fn ineligible_scan_aggregate_is_flagged() {
        let catalog = Catalog::new();
        // MIN over the float value stream with no timestamp key: the NaN
        // ordering rule excludes it from rule 6.
        let min_v = Expr::Function { name: "MIN".to_string(), args: vec![col("value")] };
        let plan = LogicalPlan::ScanAggregate {
            table: "tsdb".to_string(),
            name: None,
            tags: Vec::new(),
            start: None,
            end: None,
            filters: Vec::new(),
            group_by: vec![col("metric_name")],
            items: vec![(col("metric_name"), "metric_name".to_string()), (min_v, "m".to_string())],
            hidden: Vec::new(),
        };
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("rule-6")), "{err}");
    }

    #[test]
    fn eligible_scan_aggregate_passes() {
        let catalog = Catalog::new();
        let avg_v = Expr::Function { name: "AVG".to_string(), args: vec![col("value")] };
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::ScanAggregate {
                table: "tsdb".to_string(),
                name: Some("cpu".to_string()),
                tags: Vec::new(),
                start: None,
                end: None,
                filters: vec![cmp(col("value"), lit(0))],
                group_by: vec![col("timestamp")],
                items: vec![
                    (col("timestamp"), "timestamp".to_string()),
                    (avg_v, "mean_v".to_string()),
                ],
                hidden: Vec::new(),
            }),
            keys: vec![(0, true)],
            output_width: 2,
        };
        assert!(verify_plan(&plan, &catalog).is_ok());
    }

    #[test]
    fn sort_key_out_of_bounds_is_flagged() {
        let catalog = Catalog::new();
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan()),
                items: vec![(col("value"), "v".to_string())],
                hidden: Vec::new(),
            }),
            keys: vec![(3, true)],
            output_width: 1,
        };
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("out of bounds")), "{err}");
    }

    #[test]
    fn empty_union_is_flagged() {
        let catalog = Catalog::new();
        let plan = LogicalPlan::Union { inputs: Vec::new() };
        let err = verify_plan(&plan, &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("branches")), "{err}");
    }

    #[test]
    fn schema_drift_is_flagged() {
        let catalog = Catalog::new();
        let before = Schema::new(vec!["a".to_string(), "b".to_string()]);
        let after = LogicalPlan::Project {
            input: Box::new(scan()),
            items: vec![(col("value"), "a".to_string())],
            hidden: Vec::new(),
        };
        let err = check_after("prune", &after, Some(&before), &catalog).unwrap_err();
        assert!(matches!(&err, QueryError::Plan(m) if m.contains("after prune")), "{err}");
    }

    #[test]
    fn raw_where_chain_skips_order_check_before_pushdown() {
        let catalog = Catalog::new();
        // Inverted order is fine right after constant folding — the chain
        // is still the planner's, not rule 3's.
        let plan = filter(
            filter(scan(), Expr::Function { name: "ABS".to_string(), args: vec![col("value")] }),
            Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(col("metric_name")),
                right: Box::new(Expr::Literal(Value::str("cpu"))),
            },
        );
        assert!(check_after("fold_constants", &plan, None, &catalog).is_ok());
        assert!(check_after("pushdown", &plan, None, &catalog).is_err());
    }
}
