//! A declarative SQL-subset engine over the time series store.
//!
//! The paper's thesis is that *databases are in a unique position to enable
//! exploratory causal analysis*: users enumerate hypotheses with SQL
//! (Appendix C lists the production queries). The production system used
//! Spark SQL; this crate implements the subset those queries need, from
//! scratch:
//!
//! * `SELECT` projections with aliases, arithmetic and scalar functions
//!   (`CONCAT`, `SPLIT(s, sep)[i]`, `GREATEST`, `COALESCE`, ...);
//! * `WHERE` with full boolean logic, `IN`, `BETWEEN`, `LIKE` (SQL
//!   wildcards), `IS [NOT] NULL`;
//! * `GROUP BY` with `AVG`/`SUM`/`MIN`/`MAX`/`COUNT`/`STDDEV`/
//!   `PERCENTILE(expr, p)`;
//! * the window function `LAG(expr, k)` over the current row order (§3.5
//!   footnote: lagged features for time series);
//! * `UNION ALL` of compatible queries (stage-one family queries are
//!   unioned, Figure 4);
//! * `INNER` / `LEFT` / `FULL OUTER JOIN ... ON` equality conditions (the
//!   hypothesis-generation join of Appendix C);
//! * `ORDER BY ... ASC|DESC`, `LIMIT`;
//! * map access `tag['host']` against the TSDB virtual table.
//!
//! The entry point is [`Catalog`]: register tables (or bind a
//! [`explainit_tsdb::Tsdb`] as the `tsdb` virtual table) and call
//! [`Catalog::execute`].
//!
//! ```
//! use explainit_query::{Catalog, Table, Value};
//!
//! let mut catalog = Catalog::new();
//! let table = Table::from_rows(
//!     &["ts", "host", "v"],
//!     vec![
//!         vec![Value::Int(0), Value::str("a"), Value::Float(1.0)],
//!         vec![Value::Int(0), Value::str("b"), Value::Float(3.0)],
//!     ],
//! );
//! catalog.register("m", table);
//! let out = catalog.execute("SELECT ts, AVG(v) AS mean_v FROM m GROUP BY ts").unwrap();
//! assert_eq!(out.rows()[0][1], Value::Float(2.0));
//! ```

mod ast;
mod catalog;
mod error;
mod eval;
mod exec;
mod functions;
mod lexer;
mod parser;
mod pivot;
mod table;
mod value;

pub use ast::{BinaryOp, Expr, JoinKind, OrderKey, Query, SelectItem, SelectStmt, TableRef, UnaryOp};
pub use catalog::Catalog;
pub use error::QueryError;
pub use lexer::{tokenize, Token};
pub use parser::parse_query;
pub use pivot::{pivot_long, pivot_wide, FamilyFrame};
pub use table::{Schema, Table};
pub use value::Value;

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;
