//! A declarative SQL-subset engine over the time series store, built as a
//! three-stage **plan → optimize → columnar-execute** pipeline.
//!
//! The paper's thesis is that *databases are in a unique position to enable
//! exploratory causal analysis*: users enumerate hypotheses with SQL
//! (Appendix C lists the production queries), so hypothesis-exploration
//! throughput is bounded by query throughput. The production system leaned
//! on Spark SQL's optimizer and columnar execution; this crate implements
//! the same staging from scratch:
//!
//! 1. **Plan** ([`plan`]) — the parsed AST is lowered to a logical operator
//!    tree (`Scan`/`Filter`/`Project`/`Aggregate`/`Join`/`Sort`/`Limit`/
//!    `Union`), with ORDER BY keys resolved to output columns or hidden
//!    input-scope key columns at plan time. A static type checker
//!    ([`types`], [`check_query`]) then runs before any rewrite: every
//!    statement guaranteed to fail at runtime — string arithmetic, wrong
//!    function arity, aggregates in row contexts, a non-constant or
//!    out-of-range `PERCENTILE` p — is rejected here with the source byte
//!    position of the offending expression, and unknown columns suggest
//!    near-miss names. In debug builds (and whenever
//!    `EXPLAINIT_VERIFY_PLANS` is set, or `OptimizeOptions::verify` is
//!    on) a plan verifier ([`verify`]) additionally re-checks structural
//!    invariants after every optimizer rule.
//! 2. **Optimize** ([`optimize`]) — rule-based rewrites: constant folding,
//!    predicate pushdown (through projections and aliases, into the
//!    matching side of joins, and through aggregate group keys), and —
//!    crucially — pushdown *into storage*: on a table bound with
//!    [`Catalog::register_tsdb`], `metric_name = '…'`, `tag['k'] = 'v'`,
//!    `tag['k'] IS [NOT] NULL` and `timestamp` range conjuncts become an
//!    inverted-tag-index scan ([`explainit_tsdb::Tsdb::scan`]) instead of a
//!    full-store materialization. Projection pruning then drops unused
//!    observation columns (skipping per-row tag-map clones entirely when
//!    `tag` is never read).
//! 3. **Execute** ([`exec`], internal) — physical operators over typed
//!    column vectors ([`Table`] is columnar with a row-compat shim):
//!    vectorized WHERE masks, hash joins and grouped aggregation gather
//!    column indices instead of materializing row vectors; window
//!    functions, CASE and scalar calls fall back to the row shim. TSDB
//!    scans emit *dictionary-encoded* `metric_name`/`tag` columns
//!    ([`Column::Dict`]: one shared `Arc` dictionary per binding plus a
//!    `u32` code per row), and predicates over them evaluate once per
//!    distinct entry. Pipelines the optimizer marked with
//!    `LogicalPlan::Exchange` run **partition-parallel**: the source is
//!    cut into row morsels, workers apply filters and build mergeable
//!    partial aggregate states, and a final exchange merges partials in
//!    morsel order — bit-identical to serial execution by construction
//!    (error-free float summation), with the partition count controlled
//!    via [`ExecOptions`] / [`Catalog::execute_query_with`]. The hottest
//!    shape of all — an aggregate whose group keys are `timestamp` and/or
//!    the dictionary-encoded scan columns, sitting directly on a TSDB
//!    scan — collapses further into a single `LogicalPlan::ScanAggregate`
//!    node: the executor pre-aggregates each series' sorted point vectors
//!    straight off the store (no row materialization, grouping on
//!    `(dict class, timestamp)` integer composite keys) and merges
//!    per-series partials deterministically. `ExecOptions::scan_aggregate`
//!    turns the rewrite off; the four-way differential suite runs every
//!    generated query both ways against the reference interpreter.
//!
//! ## Reading `EXPLAIN` output
//!
//! `EXPLAIN <query>` returns the optimized plan as a one-column table —
//! the fastest way to confirm a predicate reached the scan. For the
//! paper's Appendix-C family query the whole pipeline collapses into one
//! node (under the Sort):
//!
//! ```text
//! Sort [#0 ASC]
//!   ScanAggregate tsdb name=disk time=[0, 10000000] \
//!     group=[timestamp, tag[grp]] \
//!     items=[timestamp AS timestamp, tag[grp] AS tag[grp], AVG(value) AS mean_v]
//! ```
//!
//! A `where=[...]` attribute lists residual predicates the scan indexes
//! could not absorb (evaluated per series / per point before
//! aggregation). Their order tells you how each conjunct executes — the
//! optimizer sorts the chain into three classes, and within the span
//! loop the whole chain runs as a *fused* filter over one selection
//! vector (no intermediate column is materialized between conjuncts):
//!
//! 1. predicates over `metric_name`/`tag` dictionary columns first —
//!    evaluated once per series, not per point;
//! 2. kernel-refinable point predicates next — comparisons, `BETWEEN`,
//!    `IS NULL` and literal `IN` lists over `timestamp`/`value`, which
//!    refine the selection vector in place with typed branch-free
//!    loops ([`kernel`]);
//! 3. everything else last — general expressions that need the row
//!    gather + vectorized evaluator fallback.
//!
//! When residual predicates appear as explicit `Filter` nodes instead
//! (any non-`ScanAggregate` plan), each filter line over a scan carries
//! a `refine=dict|kernel|general` annotation naming the same class, so
//! the chain order above is visible directly: reading top-down you
//! should see `general` before `kernel` before `dict` (outermost runs
//! last). A filter over a registered (non-TSDB) table shows
//! `refine=kernel` only when the static types ([`types`]) prove every
//! referenced column is dense and numeric — the precondition for the
//! typed selection-vector loops.
//!
//! If you expected the pushdown and see an
//! `Exchange`/`Aggregate` over a `TsdbScan` instead, the pipeline was not
//! eligible: a group key that is not `timestamp` or a dictionary column
//! (`metric_name`, `tag`, `tag['k']`), an output that is not a plain
//! aggregate call, a join/UNION context, `MIN`/`MAX` over the raw `tag`
//! map, or — without a `timestamp` group key — `MIN`/`MAX` over a float
//! stream (NaN is incomparable, so that fold is accumulation-order
//! dependent) all fall back to the ordinary engines.
//!
//! The pre-pipeline tree-walking interpreter is retained verbatim in
//! [`reference`] as a differential-testing oracle (see
//! `tests/differential.rs`) and as the baseline the `query_exec` bench
//! measures the pipeline against.
//!
//! Supported SQL surface:
//!
//! * `SELECT` projections with aliases, arithmetic and scalar functions
//!   (`CONCAT`, `SPLIT(s, sep)[i]`, `GREATEST`, `COALESCE`, ...);
//! * `WHERE` with full boolean logic, `IN`, `BETWEEN`, `LIKE` (SQL
//!   wildcards), `GLOB` (shell wildcards — pushable to the TSDB name/tag
//!   indexes, with a literal-prefix range scan of the name index),
//!   `IS [NOT] NULL`;
//! * `GROUP BY` with `AVG`/`SUM`/`MIN`/`MAX`/`COUNT`/`STDDEV`/`VARIANCE`/
//!   `PERCENTILE(expr, p)` — `SUM` keeps Int typing over all-Int input
//!   (promoting to Float on i64 overflow), `STDDEV`/`VARIANCE` are the
//!   *sample* (n−1) statistics, and `PERCENTILE` requires `p` to be
//!   constant within each group;
//! * the window function `LAG(expr, k)` over the current row order (§3.5
//!   footnote: lagged features for time series);
//! * `UNION ALL` of compatible queries (stage-one family queries are
//!   unioned, Figure 4) with Int/Float column coercion;
//! * `INNER` / `LEFT` / `FULL OUTER JOIN ... ON` equality conditions (the
//!   hypothesis-generation join of Appendix C);
//! * `ORDER BY ... ASC|DESC`, `LIMIT`;
//! * map access `tag['host']` against the TSDB virtual table;
//! * `EXPLAIN <query>`.
//!
//! **Statements and scripts** ([`parse_statement`] / [`parse_script`]):
//! beyond plain queries, the parser understands the paper's declarative
//! RCA statements, separated by `;` in scripts:
//!
//! * `CREATE FAMILY <name> [WITH (layout = 'wide'|'long', ts = ..,
//!   family = .., feature = .., value = ..)] AS <query>` — stage one +
//!   pivot into the Feature Family Table;
//! * `EXPLAIN FOR <target> [GIVEN <fam>, ...] [USING SCORER <name>]
//!   [TOP <k>]` — hypothesis ranking (distinct from the `EXPLAIN <query>`
//!   plan dump via one token of lookahead);
//! * `SHOW FAMILIES`, `SHOW TABLES`, `DROP FAMILY <name>`.
//!
//! The statement keywords are recognised positionally, never reserved:
//! `family`, `top`, `scorer`, `create`, ... all remain valid identifiers
//! and aliases inside ordinary queries. This crate only *parses* the RCA
//! statements (and executes plain queries); the stateful executor that
//! pairs them with the ranking engine is the facade crate's `Session`.
//!
//! The query entry point is [`Catalog`]: register tables (or bind a
//! [`explainit_tsdb::Tsdb`] as the `tsdb` virtual table — or a
//! [`explainit_tsdb::SharedTsdb`] via [`Catalog::register_tsdb_shared`]
//! for a live binding that tracks ingests through its generation counter)
//! and call [`Catalog::execute`].
//!
//! ```
//! use explainit_query::{Catalog, Table, Value};
//!
//! let mut catalog = Catalog::new();
//! let table = Table::from_rows(
//!     &["ts", "host", "v"],
//!     vec![
//!         vec![Value::Int(0), Value::str("a"), Value::Float(1.0)],
//!         vec![Value::Int(0), Value::str("b"), Value::Float(3.0)],
//!     ],
//! );
//! catalog.register("m", table);
//! let out = catalog.execute("SELECT ts, AVG(v) AS mean_v FROM m GROUP BY ts").unwrap();
//! assert_eq!(out.rows()[0][1], Value::Float(2.0));
//! ```

#![forbid(unsafe_code)]

mod ast;
mod catalog;
mod column;
mod error;
mod eval;
mod exec;
mod functions;
pub mod kernel;
mod lexer;
pub mod optimize;
mod parser;
mod pivot;
pub mod plan;
pub mod reference;
mod table;
pub mod types;
mod value;
pub mod verify;
mod veval;

pub use ast::{
    BinaryOp, CreateFamily, ExplainFor, Expr, JoinKind, OrderKey, Query, SelectItem, SelectStmt,
    Statement, TableRef, UnaryOp,
};
pub use catalog::Catalog;
pub use column::Column;
pub use error::QueryError;
pub use exec::ExecOptions;
pub use functions::AggAcc;
pub use lexer::{tokenize, Token};
pub use parser::{parse_query, parse_script, parse_statement};
pub use pivot::{pivot_long, pivot_one, pivot_wide, FamilyFrame};
pub use plan::LogicalPlan;
pub use table::{Schema, Table};
pub use types::{check_query, infer_expr, ColInfo, ColType, TypedSchema};
pub use value::Value;

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;
