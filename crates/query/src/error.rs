use std::fmt;

/// Errors produced while lexing, parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexer rejected the input.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Explanation.
        message: String,
    },
    /// Parser rejected the token stream.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist (includes candidates when
    /// ambiguous).
    UnknownColumn(String),
    /// A function name is not recognised or was called with a bad arity.
    BadFunction(String),
    /// A type error (e.g. adding a string to a map). The static checker
    /// ([`crate::types`]) reports these at plan time with an `at byte N`
    /// source position in the message; runtime detection remains for
    /// value-dependent cases the checker cannot decide.
    Type(String),
    /// Structural error: mismatched UNION schemas, aggregates mixed wrongly,
    /// a violated optimizer invariant (see [`crate::optimize`]), etc.
    Plan(String),
}

impl QueryError {
    /// Tags the error's message with a source byte offset (`at byte N`),
    /// used by the plan-time checker to point diagnostics into the SQL
    /// text. `Lex` already carries a position and passes through untouched.
    pub(crate) fn at_byte(self, position: usize) -> QueryError {
        let tag = |m: String| format!("{m} (at byte {position})");
        match self {
            QueryError::Lex { .. } => self,
            QueryError::Parse(m) => QueryError::Parse(tag(m)),
            QueryError::UnknownTable(t) => QueryError::UnknownTable(tag(t)),
            QueryError::UnknownColumn(c) => QueryError::UnknownColumn(tag(c)),
            QueryError::BadFunction(m) => QueryError::BadFunction(tag(m)),
            QueryError::Type(m) => QueryError::Type(tag(m)),
            QueryError::Plan(m) => QueryError::Plan(tag(m)),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::BadFunction(m) => write!(f, "bad function: {m}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Plan(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}
