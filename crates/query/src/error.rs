use std::fmt;

/// Errors produced while lexing, parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexer rejected the input.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Explanation.
        message: String,
    },
    /// Parser rejected the token stream.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist (includes candidates when
    /// ambiguous).
    UnknownColumn(String),
    /// A function name is not recognised or was called with a bad arity.
    BadFunction(String),
    /// A runtime type error (e.g. adding a string to a map).
    Type(String),
    /// Structural error: mismatched UNION schemas, aggregates mixed wrongly,
    /// etc.
    Plan(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::BadFunction(m) => write!(f, "bad function: {m}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Plan(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}
