//! Vectorized expression evaluation over columns.
//!
//! The columnar executor evaluates WHERE predicates, projection items,
//! group keys and join keys directly against [`Column`]s — no intermediate
//! `Vec<Vec<Value>>` rows. Dense fast paths cover the hot comparisons
//! (typed column vs. literal) and boolean combinators; dictionary columns
//! ([`Column::Dict`]) evaluate predicates, map accesses and NULL checks
//! *once per distinct dictionary entry* and expand by code — so
//! `metric_name = 'cpu'` over a million-row scan does one string compare
//! per distinct metric, not per row. Everything else in the supported
//! subset falls back to per-entry [`Value`] evaluation, which still avoids
//! row materialization. Expressions outside the subset (scalar/window/
//! aggregate function calls, CASE) are reported by [`supported`] so the
//! executor can use the row shim instead.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::column::Column;
use crate::eval::{eval_and, eval_binary, eval_index, eval_or, eval_unary, sql_like};
use crate::table::Schema;
use crate::value::Value;
use crate::Result;

/// A vectorized evaluation result: a full column or an unexpanded constant.
pub enum VOut {
    /// Per-row values.
    Col(Column),
    /// The same value for every row.
    Const(Value),
}

impl VOut {
    /// The value at row `i`.
    fn get(&self, i: usize) -> Value {
        match self {
            VOut::Col(c) => c.get(i),
            VOut::Const(v) => v.clone(),
        }
    }

    /// Expands to a full column of `len` entries.
    pub fn into_column(self, len: usize) -> Column {
        match self {
            VOut::Col(c) => c,
            VOut::Const(v) => Column::from_values(vec![v; len]),
        }
    }
}

/// True when [`eval`] can handle the expression. Function calls (scalar,
/// aggregate, window) and CASE go through the row-oriented fallback.
pub fn supported(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Column(_) => true,
        Expr::Binary { left, right, .. } => supported(left) && supported(right),
        Expr::Unary { operand, .. } => supported(operand),
        Expr::Function { .. } | Expr::Case { .. } => false,
        Expr::Index { container, index } => supported(container) && supported(index),
        Expr::InList { expr, list, .. } => supported(expr) && list.iter().all(supported),
        Expr::Between { expr, low, high, .. } => {
            supported(expr) && supported(low) && supported(high)
        }
        Expr::IsNull { expr, .. } => supported(expr),
    }
}

/// Evaluates a supported expression against the columns of `(schema, cols)`
/// with `len` rows.
pub fn eval(expr: &Expr, schema: &Schema, cols: &[Column], len: usize) -> Result<VOut> {
    match expr {
        Expr::Literal(v) => Ok(VOut::Const(v.clone())),
        Expr::Column(name) => {
            let i = schema.resolve(name)?;
            Ok(VOut::Col(cols[i].clone()))
        }
        Expr::Unary { op, operand } => {
            let v = eval(operand, schema, cols, len)?;
            match v {
                VOut::Const(c) => Ok(VOut::Const(eval_unary(*op, c)?)),
                VOut::Col(col) => {
                    // Dense negation fast paths.
                    match (op, &col) {
                        (UnaryOp::Neg, Column::Int(v)) => {
                            Ok(VOut::Col(Column::Int(v.iter().map(|&x| -x).collect())))
                        }
                        (UnaryOp::Neg, Column::Float(v)) => {
                            Ok(VOut::Col(Column::Float(v.iter().map(|&x| -x).collect())))
                        }
                        (UnaryOp::Not, Column::Bool(v)) => {
                            Ok(VOut::Col(Column::Bool(v.iter().map(|&b| !b).collect())))
                        }
                        _ => {
                            let mut out = Vec::with_capacity(len);
                            for i in 0..len {
                                out.push(eval_unary(*op, col.get(i))?);
                            }
                            Ok(VOut::Col(Column::from_values(out)))
                        }
                    }
                }
            }
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, schema, cols, len)?;
            let r = eval(right, schema, cols, len)?;
            eval_binary_vec(*op, l, r, len)
        }
        Expr::Index { container, index } => {
            let c = eval(container, schema, cols, len)?;
            let i = eval(index, schema, cols, len)?;
            match (c, i) {
                (VOut::Const(c), VOut::Const(i)) => Ok(VOut::Const(eval_index(c, i)?)),
                // Dictionary container, constant key: one lookup per
                // distinct entry — this is the `tag['host']` hot path.
                (VOut::Col(Column::Dict { values, codes }), VOut::Const(k)) => {
                    map_dict(&values, &codes, |v| eval_index(v.clone(), k.clone())).map(VOut::Col)
                }
                (c, i) => {
                    let mut out = Vec::with_capacity(len);
                    for row in 0..len {
                        out.push(eval_index(c.get(row), i.get(row))?);
                    }
                    Ok(VOut::Col(Column::from_values(out)))
                }
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, schema, cols, len)?;
            let items: Vec<VOut> =
                list.iter().map(|e| eval(e, schema, cols, len)).collect::<Result<_>>()?;
            let mut out = Vec::with_capacity(len);
            for row in 0..len {
                let x = v.get(row);
                if x.is_null() {
                    out.push(Value::Null);
                    continue;
                }
                let mut saw_null = false;
                let mut hit = false;
                for item in &items {
                    let iv = item.get(row);
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if x.sql_cmp(&iv) == Some(Ordering::Equal) {
                        hit = true;
                        break;
                    }
                }
                out.push(if hit {
                    Value::Bool(!negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                });
            }
            Ok(VOut::Col(Column::from_values(out)))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, schema, cols, len)?;
            let lo = eval(low, schema, cols, len)?;
            let hi = eval(high, schema, cols, len)?;
            // Dense fast path: Int column between constant ints.
            if let (
                VOut::Col(Column::Int(vs)),
                VOut::Const(Value::Int(a)),
                VOut::Const(Value::Int(b)),
            ) = (&v, &lo, &hi)
            {
                let (a, b) = (*a, *b);
                return Ok(VOut::Col(Column::Bool(
                    vs.iter().map(|&x| (x >= a && x <= b) != *negated).collect(),
                )));
            }
            let mut out = Vec::with_capacity(len);
            for row in 0..len {
                let x = v.get(row);
                let res = match (x.sql_cmp(&lo.get(row)), x.sql_cmp(&hi.get(row))) {
                    (Some(a), Some(b)) => {
                        let inside = a != Ordering::Less && b != Ordering::Greater;
                        Value::Bool(inside != *negated)
                    }
                    _ => Value::Null,
                };
                out.push(res);
            }
            Ok(VOut::Col(Column::from_values(out)))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, cols, len)?;
            match v {
                VOut::Const(c) => Ok(VOut::Const(Value::Bool(c.is_null() != *negated))),
                VOut::Col(Column::Values(vs)) => Ok(VOut::Col(Column::Bool(
                    vs.iter().map(|x| x.is_null() != *negated).collect(),
                ))),
                // Dictionary entries may be NULL (e.g. a missing tag key
                // after indexing): one null-check per entry.
                VOut::Col(Column::Dict { values, codes }) => {
                    let per: Vec<bool> = values.iter().map(|x| x.is_null() != *negated).collect();
                    Ok(VOut::Col(Column::Bool(codes.iter().map(|&c| per[c as usize]).collect())))
                }
                // Other typed columns never contain NULLs.
                VOut::Col(_) => Ok(VOut::Const(Value::Bool(*negated))),
            }
        }
        Expr::Function { .. } | Expr::Case { .. } => Err(crate::QueryError::Plan(
            "vectorized evaluation does not support this expression (executor bug)".into(),
        )),
    }
}

/// The kernel-level comparison op for a comparison `BinaryOp`.
pub(crate) fn cmp_op_of(op: BinaryOp) -> crate::kernel::CmpOp {
    match op {
        BinaryOp::Eq => crate::kernel::CmpOp::Eq,
        BinaryOp::NotEq => crate::kernel::CmpOp::Ne,
        BinaryOp::Lt => crate::kernel::CmpOp::Lt,
        BinaryOp::LtEq => crate::kernel::CmpOp::Le,
        BinaryOp::Gt => crate::kernel::CmpOp::Gt,
        BinaryOp::GtEq => crate::kernel::CmpOp::Ge,
        _ => unreachable!("comparison operator"),
    }
}

fn cmp_matches(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison operator"),
    }
}

/// Applies a scalar binary op (with AND/OR routed to the three-valued
/// helpers, matching the row evaluator exactly).
fn scalar_binary(op: BinaryOp, a: Value, b: Value) -> Result<Value> {
    match op {
        BinaryOp::And => eval_and(a, b),
        BinaryOp::Or => eval_or(a, b),
        _ => eval_binary(op, a, b),
    }
}

/// Evaluates `f` once per dictionary entry *referenced by a row* (lazily,
/// in first-reference order, so the error surface matches a per-row scan)
/// and expands the results by code into a new dictionary column.
fn map_dict(
    values: &[Value],
    codes: &[u32],
    f: impl Fn(&Value) -> Result<Value>,
) -> Result<Column> {
    let mut per: Vec<Option<Value>> = vec![None; values.len()];
    for &c in codes {
        let slot = &mut per[c as usize];
        if slot.is_none() {
            *slot = Some(f(&values[c as usize])?);
        }
    }
    let dict: Vec<Value> = per.into_iter().map(|v| v.unwrap_or(Value::Null)).collect();
    Ok(Column::dict(Arc::new(dict), codes.to_vec()))
}

fn eval_binary_vec(op: BinaryOp, l: VOut, r: VOut, len: usize) -> Result<VOut> {
    // Constant-constant folds to a constant.
    if let (VOut::Const(a), VOut::Const(b)) = (&l, &r) {
        let v = match op {
            BinaryOp::And => eval_and(a.clone(), b.clone())?,
            BinaryOp::Or => eval_or(a.clone(), b.clone())?,
            _ => eval_binary(op, a.clone(), b.clone())?,
        };
        return Ok(VOut::Const(v));
    }

    // Dictionary column against a constant (either side): evaluate the
    // scalar op once per distinct entry, expand by code. Covers
    // comparisons, LIKE/GLOB and arithmetic in one rule.
    if let (VOut::Col(Column::Dict { values, codes }), VOut::Const(k)) = (&l, &r) {
        return map_dict(values, codes, |v| scalar_binary(op, v.clone(), k.clone())).map(VOut::Col);
    }
    if let (VOut::Const(k), VOut::Col(Column::Dict { values, codes })) = (&l, &r) {
        return map_dict(values, codes, |v| scalar_binary(op, k.clone(), v.clone())).map(VOut::Col);
    }

    // Dense comparison fast paths: typed column vs. constant.
    if matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
    ) {
        // Normalize to column-on-the-left by flipping the comparison.
        let (col, konst, op) = match (&l, &r) {
            (VOut::Col(c), VOut::Const(k)) => (Some(c), k.clone(), op),
            (VOut::Const(k), VOut::Col(c)) => (
                Some(c),
                k.clone(),
                match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                },
            ),
            _ => (None, Value::Null, op),
        };
        if let Some(col) = col {
            match (col, &konst) {
                (Column::Int(vs), Value::Int(k)) => {
                    let k = *k;
                    return Ok(VOut::Col(Column::Bool(
                        vs.iter().map(|&x| cmp_matches(op, x.cmp(&k))).collect(),
                    )));
                }
                (Column::Int(vs), Value::Float(k)) => {
                    // NaN constant: unknown for every row (the only way a
                    // non-null Int vs Float comparison goes NULL).
                    if k.is_nan() {
                        return Ok(VOut::Col(Column::from_values(vec![Value::Null; vs.len()])));
                    }
                    // Exact: compile the float into an integer threshold
                    // test instead of rounding the column through `as f64`
                    // (lossy above 2^53) — matches scalar sql_cmp exactly.
                    let test = crate::kernel::compile_i64_cmp(cmp_op_of(op), *k);
                    let out: Vec<bool> = match test {
                        crate::kernel::I64Test::Never => vec![false; vs.len()],
                        crate::kernel::I64Test::Always => vec![true; vs.len()],
                        crate::kernel::I64Test::Lt(t) => vs.iter().map(|&x| x < t).collect(),
                        crate::kernel::I64Test::Le(t) => vs.iter().map(|&x| x <= t).collect(),
                        crate::kernel::I64Test::Gt(t) => vs.iter().map(|&x| x > t).collect(),
                        crate::kernel::I64Test::Ge(t) => vs.iter().map(|&x| x >= t).collect(),
                        crate::kernel::I64Test::Eq(t) => vs.iter().map(|&x| x == t).collect(),
                        crate::kernel::I64Test::Ne(t) => vs.iter().map(|&x| x != t).collect(),
                    };
                    return Ok(VOut::Col(Column::Bool(out)));
                }
                (Column::Float(vs), k) if k.as_f64().is_some() => {
                    // An Int constant that does not round-trip through f64
                    // (above 2^53) must compare exactly, not via `as f64`.
                    if let Value::Int(ki) = k {
                        let kf = *ki as f64; // lint: allow as f64 — exactness re-checked by the round-trip test below
                        if kf as i128 != i128::from(*ki) {
                            let ki = *ki;
                            return Ok(VOut::Col(Column::from_values(
                                vs.iter()
                                    .map(|&x| {
                                        match crate::value::cmp_i64_f64(ki, x)
                                            .map(Ordering::reverse)
                                        {
                                            Some(ord) => Value::Bool(cmp_matches(op, ord)),
                                            None => Value::Null,
                                        }
                                    })
                                    .collect(),
                            )));
                        }
                    }
                    let k = k.as_f64().expect("checked"); // invariant: literal class checked by the support analysis
                    return Ok(VOut::Col(Column::from_values(
                        vs.iter()
                            .map(|&x| match x.partial_cmp(&k) {
                                Some(ord) => Value::Bool(cmp_matches(op, ord)),
                                None => Value::Null,
                            })
                            .collect(),
                    )));
                }
                (Column::Str(vs), Value::Str(k)) => {
                    return Ok(VOut::Col(Column::Bool(
                        vs.iter().map(|x| cmp_matches(op, x.as_str().cmp(k.as_str()))).collect(),
                    )));
                }
                _ => {}
            }
        }
    }

    // LIKE/GLOB with a constant pattern over a dense string column.
    if matches!(op, BinaryOp::Like | BinaryOp::Glob) {
        if let (VOut::Col(Column::Str(vs)), VOut::Const(Value::Str(pat))) = (&l, &r) {
            let matcher: fn(&str, &str) -> bool =
                if op == BinaryOp::Like { sql_like } else { explainit_tsdb::glob_match };
            return Ok(VOut::Col(Column::Bool(vs.iter().map(|s| matcher(pat, s)).collect())));
        }
    }

    // Boolean combinators over dense masks.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        if let (VOut::Col(Column::Bool(a)), VOut::Col(Column::Bool(b))) = (&l, &r) {
            let out: Vec<bool> = match op {
                BinaryOp::And => a.iter().zip(b.iter()).map(|(&x, &y)| x && y).collect(),
                _ => a.iter().zip(b.iter()).map(|(&x, &y)| x || y).collect(),
            };
            return Ok(VOut::Col(Column::Bool(out)));
        }
    }

    // Dense arithmetic fast paths, lowered to the typed chunked kernels.
    if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul) {
        use crate::kernel::{self, ArithOp, IntArith};
        let kop = match op {
            BinaryOp::Add => ArithOp::Add,
            BinaryOp::Sub => ArithOp::Sub,
            _ => ArithOp::Mul,
        };
        let int_out = |res: IntArith| match res {
            IntArith::Ints(v) => VOut::Col(Column::Int(v)),
            IntArith::Mixed(v) => VOut::Col(Column::from_values(v)),
        };
        match (&l, &r) {
            // Float column × Float-viewed constant (Int constants above
            // 2^53 would round, so only exactly-representable ones apply;
            // the rest take the generic exact path below).
            (VOut::Col(Column::Float(a)), VOut::Const(k))
            | (VOut::Const(k), VOut::Col(Column::Float(a)))
                if k.as_f64().is_some_and(|f| match k {
                    Value::Int(i) => f as i128 == i128::from(*i),
                    _ => true,
                }) =>
            {
                let swapped = matches!(&l, VOut::Const(_));
                let k = k.as_f64().expect("checked"); // invariant: literal class checked by the support analysis
                return Ok(VOut::Col(Column::Float(kernel::f64_arith_const(kop, a, k, swapped))));
            }
            (VOut::Col(Column::Float(a)), VOut::Col(Column::Float(b))) => {
                return Ok(VOut::Col(Column::Float(kernel::f64_arith_cols(kop, a, b))));
            }
            // Int column × Int constant / column: exact checked arithmetic,
            // per-element overflow promotion (the scalar evaluator's rule).
            (VOut::Col(Column::Int(a)), VOut::Const(Value::Int(k))) => {
                return Ok(int_out(kernel::i64_arith_const(kop, a, *k, false)));
            }
            (VOut::Const(Value::Int(k)), VOut::Col(Column::Int(a))) => {
                return Ok(int_out(kernel::i64_arith_const(kop, a, *k, true)));
            }
            (VOut::Col(Column::Int(a)), VOut::Col(Column::Int(b))) => {
                return Ok(int_out(kernel::i64_arith_cols(kop, a, b)));
            }
            _ => {}
        }
    }

    // Generic per-entry path (short-circuiting AND/OR semantics preserved
    // by the scalar helpers).
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let a = l.get(i);
        let b = r.get(i);
        let v = match op {
            BinaryOp::And => eval_and(a, b)?,
            BinaryOp::Or => eval_or(a, b)?,
            _ => eval_binary(op, a, b)?,
        };
        out.push(v);
    }
    Ok(VOut::Col(Column::from_values(out)))
}

// ---------------------------------------------------------------------------
// GROUP BY keying
// ---------------------------------------------------------------------------

/// Per-row GROUP BY key strings. Dictionary columns render each
/// *referenced* entry's key fragment once (a selective filter may leave a
/// handful of codes over a store-wide dictionary) and splice by code;
/// other columns render per row. Byte-identical to the naive
/// `get(row).group_key()` loop, so every engine buckets rows the same way.
pub(crate) fn group_key_strings(key_cols: &[Column], len: usize) -> Vec<String> {
    enum Part<'c> {
        Dict { per: Vec<String>, codes: &'c [u32] },
        Plain(&'c Column),
    }
    let parts: Vec<Part> = key_cols
        .iter()
        .map(|c| match c {
            Column::Dict { values, codes } => {
                let mut per: Vec<String> = vec![String::new(); values.len()];
                let mut done = vec![false; values.len()];
                for &code in codes.iter() {
                    let i = code as usize;
                    if !done[i] {
                        per[i] = values[i].group_key();
                        done[i] = true;
                    }
                }
                Part::Dict { per, codes }
            }
            other => Part::Plain(other),
        })
        .collect();
    let mut keys = Vec::with_capacity(len);
    for row in 0..len {
        let mut key = String::new();
        for p in &parts {
            match p {
                Part::Dict { per, codes } => key.push_str(&per[codes[row] as usize]),
                Part::Plain(c) => key.push_str(&c.get(row).group_key()),
            }
            key.push('\u{1}');
        }
        keys.push(key);
    }
    keys
}

/// Groups rows **directly on dictionary codes** when every key column is
/// dictionary-encoded: per key column, dictionary entries are deduplicated
/// by their group-key fragment (rendered once *per entry*, never per row)
/// into dense canonical ids; each row's composite id is the mixed-radix
/// packing of its per-column canonical ids — so the per-row hot loop does
/// integer arithmetic only, no string rendering and no string hashing.
///
/// Distinct composite ids whose joined fragment strings nevertheless
/// collide (a fragment containing the `\u{1}` separator) are merged
/// afterwards, per distinct id, so bucketing stays *exactly* equal to
/// [`group_key_strings`]-based bucketing in every case.
///
/// Returns row-index buckets in first-seen order, or `None` when a key
/// column is not dictionary-encoded (or the packed id space overflows).
pub(crate) fn dict_group_rows(key_cols: &[Column], len: usize) -> Option<Vec<Vec<usize>>> {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;

    struct Key<'c> {
        codes: &'c [u32],
        /// Dictionary code → dense canonical id (fragment-deduplicated).
        canon: Vec<u128>,
        /// Canonical id → the entry's fragment (for collision merging).
        frags: Vec<String>,
        cardinality: u128,
    }
    let mut keys: Vec<Key> = Vec::with_capacity(key_cols.len());
    for c in key_cols {
        let Column::Dict { values, codes } = c else { return None };
        // Render fragments only for entries a row actually *references* —
        // a selective filter may leave a handful of codes over a
        // store-wide dictionary, and unreferenced entries must cost
        // nothing (no rendering, no hashing).
        const UNSEEN: u128 = u128::MAX;
        let mut ids: HashMap<String, u128> = HashMap::new();
        let mut canon = vec![UNSEEN; values.len()];
        let mut frags: Vec<String> = Vec::new();
        for &code in codes.iter() {
            let slot = &mut canon[code as usize];
            if *slot != UNSEEN {
                continue;
            }
            let frag = values[code as usize].group_key();
            let next = ids.len() as u128;
            let id = *ids.entry(frag.clone()).or_insert(next);
            if id == next {
                frags.push(frag);
            }
            *slot = id;
        }
        let cardinality = (frags.len() as u128).max(1);
        keys.push(Key { codes, canon, frags, cardinality });
    }
    // Mixed-radix packing must fit u128 (it always does in practice; a
    // pathological dictionary-cardinality product falls back to strings).
    keys.iter().try_fold(1u128, |acc, k| acc.checked_mul(k.cardinality))?;

    let mut order: Vec<u128> = Vec::new();
    let mut buckets: HashMap<u128, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for row in 0..len {
        let mut id = 0u128;
        for k in &keys {
            id = id * k.cardinality + k.canon[k.codes[row] as usize];
        }
        match buckets.entry(id) {
            Entry::Vacant(e) => {
                order.push(id);
                e.insert(groups.len());
                groups.push(vec![row]);
            }
            Entry::Occupied(e) => groups[*e.get()].push(row),
        }
    }

    // Collision pass, per distinct composite id: unpack the id back into
    // per-column canonical ids, join the fragments with the `\u{1}`
    // separator and merge buckets whose joined strings are equal. Merged
    // row lists interleave in ascending row order (both inputs are
    // ascending), which preserves the serial first-seen semantics.
    let mut by_joined: HashMap<String, usize> = HashMap::new();
    let mut final_groups: Vec<Vec<usize>> = Vec::new();
    for (slot, mut id) in order.iter().copied().enumerate() {
        let mut parts: Vec<&str> = Vec::with_capacity(keys.len());
        for k in keys.iter().rev() {
            let part = (id % k.cardinality) as usize;
            id /= k.cardinality;
            parts.push(&k.frags[part]);
        }
        let mut joined = String::new();
        for p in parts.iter().rev() {
            joined.push_str(p);
            joined.push('\u{1}');
        }
        let rows = std::mem::take(&mut groups[slot]);
        match by_joined.entry(joined) {
            Entry::Vacant(e) => {
                e.insert(final_groups.len());
                final_groups.push(rows);
            }
            Entry::Occupied(e) => {
                // Rare: fragments containing the separator. Sorted merge.
                let dst = &mut final_groups[*e.get()];
                let mut merged = Vec::with_capacity(dst.len() + rows.len());
                let (mut a, mut b) = (dst.iter().peekable(), rows.iter().peekable());
                loop {
                    match (a.peek(), b.peek()) {
                        (Some(&&x), Some(&&y)) => {
                            if x < y {
                                merged.push(x);
                                a.next();
                            } else {
                                merged.push(y);
                                b.next();
                            }
                        }
                        (Some(&&x), None) => {
                            merged.push(x);
                            a.next();
                        }
                        (None, Some(&&y)) => {
                            merged.push(y);
                            b.next();
                        }
                        (None, None) => break,
                    }
                }
                *dst = merged;
            }
        }
    }
    Some(final_groups)
}

/// Evaluates a predicate to a keep-mask (`is_true` semantics: NULL and
/// false drop the row).
pub fn eval_mask(expr: &Expr, schema: &Schema, cols: &[Column], len: usize) -> Result<Vec<bool>> {
    match eval(expr, schema, cols, len)? {
        VOut::Const(v) => Ok(vec![v.is_true(); len]),
        VOut::Col(Column::Bool(mask)) => Ok(mask),
        VOut::Col(Column::Dict { values, codes }) => {
            let per: Vec<bool> = values.iter().map(Value::is_true).collect();
            Ok(codes.iter().map(|&c| per[c as usize]).collect())
        }
        VOut::Col(col) => Ok((0..len).map(|i| col.get(i).is_true()).collect()),
    }
}

// ---------------------------------------------------------------------------
// Selection-vector refinement
// ---------------------------------------------------------------------------

/// Refines a selection vector in place by a predicate: `sel` keeps exactly
/// the row ids where the predicate `is_true` (NULL and false drop — the
/// WHERE rule). This is the fused-filter-conjunction engine: typed columns
/// against literals lower to the branch-free [`crate::kernel`] loops with
/// **no intermediate mask or column materialization**, `AND` refines left
/// then right over the survivors only, and anything else gathers just the
/// surviving rows and reuses [`eval_mask`] — so the per-predicate work (and
/// the error surface) matches the old filter-then-rematerialize chain,
/// which also only ever evaluated predicate *i* over the survivors of
/// predicates *< i*.
pub(crate) fn refine(
    expr: &Expr,
    schema: &Schema,
    cols: &[Column],
    sel: &mut Vec<u32>,
) -> Result<()> {
    use crate::kernel;
    if sel.is_empty() {
        return Ok(());
    }
    match expr {
        Expr::Literal(v) => {
            if !v.is_true() {
                sel.clear();
            }
            return Ok(());
        }
        // Fused conjunction: the right side only ever sees left-survivors.
        Expr::Binary { op: BinaryOp::And, left, right } => {
            refine(left, schema, cols, sel)?;
            return refine(right, schema, cols, sel);
        }
        Expr::Binary { op, left, right }
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Lt
                    | BinaryOp::LtEq
                    | BinaryOp::Gt
                    | BinaryOp::GtEq
            ) =>
        {
            // Comparison of a direct column against a literal (either
            // orientation, flipping the operator): comparisons never
            // error, so every column representation refines directly.
            let (col_expr, lit, op) = match (&**left, &**right) {
                (Expr::Column(name), Expr::Literal(k)) => (Some(name), k, *op),
                (Expr::Literal(k), Expr::Column(name)) => (
                    Some(name),
                    k,
                    match op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        other => *other,
                    },
                ),
                _ => (None, &Value::Null, *op),
            };
            if let Some(name) = col_expr {
                let col = &cols[schema.resolve(name)?];
                if lit.is_null() {
                    sel.clear(); // unknown for every row
                    return Ok(());
                }
                match (col, lit) {
                    (Column::Int(vs), Value::Int(k)) => {
                        let test = kernel::compile_i64_cmp_int(cmp_op_of(op), *k);
                        kernel::refine_i64_test(test, vs, None, sel);
                        return Ok(());
                    }
                    (Column::Int(vs), Value::Float(k)) => {
                        let test = kernel::compile_i64_cmp(cmp_op_of(op), *k);
                        kernel::refine_i64_test(test, vs, None, sel);
                        return Ok(());
                    }
                    (Column::Float(vs), k) if k.as_f64().is_some() => {
                        // Exactly like the dense eval path: an Int constant
                        // that does not round-trip compares exactly per row.
                        if let Value::Int(ki) = k {
                            let kf = *ki as f64; // lint: allow as f64 — exactness re-checked by the round-trip test below
                            if kf as i128 != i128::from(*ki) {
                                let ki = *ki;
                                let mut n = 0usize;
                                for j in 0..sel.len() {
                                    let i = sel[j];
                                    sel[n] = i;
                                    let keep = crate::value::cmp_i64_f64(ki, vs[i as usize])
                                        .map(Ordering::reverse)
                                        .is_some_and(|ord| cmp_matches(op, ord));
                                    n += usize::from(keep);
                                }
                                sel.truncate(n);
                                return Ok(());
                            }
                        }
                        let k = k.as_f64().expect("checked"); // invariant: literal class checked by the support analysis
                        kernel::refine_f64_cmp(cmp_op_of(op), vs, None, k, sel);
                        return Ok(());
                    }
                    (Column::Dict { values, codes }, k) => {
                        // One sql_cmp per referenced dictionary entry,
                        // memoized; entries are only visited for selected
                        // rows (comparisons cannot error).
                        let mut per: Vec<Option<bool>> = vec![None; values.len()];
                        let mut n = 0usize;
                        for j in 0..sel.len() {
                            let i = sel[j];
                            sel[n] = i;
                            let c = codes[i as usize] as usize;
                            let keep = *per[c].get_or_insert_with(|| {
                                values[c].sql_cmp(k).is_some_and(|ord| cmp_matches(op, ord))
                            });
                            n += usize::from(keep);
                        }
                        sel.truncate(n);
                        return Ok(());
                    }
                    _ => {
                        // Str/Bool/Values columns (or type mismatches that
                        // compare unknown): per-row sql_cmp, still no
                        // materialization and never an error.
                        let mut n = 0usize;
                        for j in 0..sel.len() {
                            let i = sel[j];
                            sel[n] = i;
                            let keep = col
                                .get(i as usize)
                                .sql_cmp(lit)
                                .is_some_and(|ord| cmp_matches(op, ord));
                            n += usize::from(keep);
                        }
                        sel.truncate(n);
                        return Ok(());
                    }
                }
            }
        }
        Expr::Between { expr: e, low, high, negated } => {
            if let (Expr::Column(name), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**e, &**low, &**high)
            {
                let col = &cols[schema.resolve(name)?];
                match col {
                    Column::Int(vs)
                        if matches!(lo, Value::Int(_) | Value::Float(_))
                            && matches!(hi, Value::Int(_) | Value::Float(_)) =>
                    {
                        kernel::refine_i64_between(vs, None, lo, hi, *negated, sel);
                        return Ok(());
                    }
                    Column::Float(vs)
                        if matches!(lo, Value::Float(_)) && matches!(hi, Value::Float(_)) =>
                    {
                        let (Value::Float(lo), Value::Float(hi)) = (lo, hi) else { unreachable!() };
                        kernel::refine_f64_between(vs, None, *lo, *hi, *negated, sel);
                        return Ok(());
                    }
                    _ => {
                        // Exact generic BETWEEN over the selection (sql_cmp
                        // never errors; unknown drops negated or not).
                        let mut n = 0usize;
                        for j in 0..sel.len() {
                            let i = sel[j];
                            sel[n] = i;
                            let x = col.get(i as usize);
                            let keep = match (x.sql_cmp(lo), x.sql_cmp(hi)) {
                                (Some(a), Some(b)) => {
                                    (a != Ordering::Less && b != Ordering::Greater) != *negated
                                }
                                _ => false,
                            };
                            n += usize::from(keep);
                        }
                        sel.truncate(n);
                        return Ok(());
                    }
                }
            }
        }
        Expr::IsNull { expr: e, negated } => {
            if let Expr::Column(name) = &**e {
                let col = &cols[schema.resolve(name)?];
                match col {
                    Column::Values(vs) => {
                        let mut n = 0usize;
                        for j in 0..sel.len() {
                            let i = sel[j];
                            sel[n] = i;
                            n += usize::from(vs[i as usize].is_null() != *negated);
                        }
                        sel.truncate(n);
                    }
                    Column::Dict { values, codes } => {
                        let per: Vec<bool> =
                            values.iter().map(|x| x.is_null() != *negated).collect();
                        let mut n = 0usize;
                        for j in 0..sel.len() {
                            let i = sel[j];
                            sel[n] = i;
                            n += usize::from(per[codes[i as usize] as usize]);
                        }
                        sel.truncate(n);
                    }
                    // Other typed columns never contain NULLs.
                    _ => kernel::refine_is_null(None, *negated, sel),
                }
                return Ok(());
            }
        }
        Expr::InList { expr: e, list, negated } => {
            if let Expr::Column(name) = &**e {
                if list.iter().all(|item| matches!(item, Expr::Literal(_))) {
                    let col = &cols[schema.resolve(name)?];
                    let items: Vec<&Value> = list
                        .iter()
                        .map(|item| match item {
                            Expr::Literal(v) => v,
                            _ => unreachable!("checked literal"),
                        })
                        .collect();
                    let mut n = 0usize;
                    for j in 0..sel.len() {
                        let i = sel[j];
                        sel[n] = i;
                        let x = col.get(i as usize);
                        // Same three-valued IN as the dense evaluator: a
                        // hit keeps (unless negated); NULLs anywhere make
                        // a miss unknown, and unknown drops either way.
                        let keep = if x.is_null() {
                            false
                        } else {
                            let hit = items.iter().any(|iv| x.sql_cmp(iv) == Some(Ordering::Equal));
                            if hit {
                                !*negated
                            } else if items.iter().any(|iv| iv.is_null()) {
                                false
                            } else {
                                *negated
                            }
                        };
                        n += usize::from(keep);
                    }
                    sel.truncate(n);
                    return Ok(());
                }
            }
        }
        _ => {}
    }
    // Fallback: gather the surviving rows once and reuse the vectorized
    // mask evaluator over just those rows (same cost and error surface as
    // the old filter-then-rematerialize step for this predicate).
    let gathered: Vec<Column> = cols.iter().map(|c| c.gather_u32(sel)).collect();
    let mask = eval_mask(expr, schema, &gathered, sel.len())?;
    let mut n = 0usize;
    for j in 0..sel.len() {
        let i = sel[j];
        sel[n] = i;
        n += usize::from(mask[j]);
    }
    sel.truncate(n);
    Ok(())
}

// ---------------------------------------------------------------------------
// Scan-aggregate span refinement
// ---------------------------------------------------------------------------

/// One of the two raw point columns a scan-aggregate span exposes: the
/// series' sorted timestamps or its values. Never contains NULLs.
#[derive(Clone, Copy)]
enum SpanCol<'a> {
    I64(&'a [i64]),
    F64(&'a [f64]),
}

impl SpanCol<'_> {
    fn get(self, i: usize) -> Value {
        match self {
            SpanCol::I64(vs) => Value::Int(vs[i]),
            SpanCol::F64(vs) => Value::Float(vs[i]),
        }
    }
}

fn is_span_col(e: &Expr, obs: &Schema) -> bool {
    matches!(e, Expr::Column(name) if obs.resolve(name).is_ok_and(|i| i == 0 || i == 3))
}

fn span_col<'a>(e: &Expr, obs: &Schema, ts: &'a [i64], vals: &'a [f64]) -> Option<SpanCol<'a>> {
    if let Expr::Column(name) = e {
        match obs.resolve(name) {
            Ok(0) => return Some(SpanCol::I64(ts)),
            Ok(3) => return Some(SpanCol::F64(vals)),
            _ => {}
        }
    }
    None
}

/// Returns true when [`refine_span`] can evaluate this residual predicate
/// entirely from a scan-aggregate span's raw `(timestamp, value)` slices —
/// conjunctions of comparisons / BETWEEN / IS NULL / IN of a point column
/// against literals. The check is all-or-nothing so a partially-refined
/// `AND` can never be double-applied by the caller's fallback.
pub(crate) fn span_refinable(expr: &Expr, obs: &Schema) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Binary { op: BinaryOp::And, left, right } => {
            span_refinable(left, obs) && span_refinable(right, obs)
        }
        Expr::Binary {
            op:
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq,
            left,
            right,
        } => {
            (is_span_col(left, obs) && matches!(&**right, Expr::Literal(_)))
                || (matches!(&**left, Expr::Literal(_)) && is_span_col(right, obs))
        }
        Expr::Between { expr: e, low, high, .. } => {
            is_span_col(e, obs)
                && matches!(&**low, Expr::Literal(_))
                && matches!(&**high, Expr::Literal(_))
        }
        Expr::IsNull { expr: e, .. } => is_span_col(e, obs),
        Expr::InList { expr: e, list, .. } => {
            is_span_col(e, obs) && list.iter().all(|item| matches!(item, Expr::Literal(_)))
        }
        _ => false,
    }
}

/// Refines a scan-aggregate span selection in place, straight off the raw
/// point slices — no intermediate `Column` is ever materialized. Semantics
/// are exactly [`refine`] (and therefore [`eval_mask`]) over the
/// equivalent `Int`/`Float` columns; the predicate must have passed
/// [`span_refinable`]. Point columns are NULL-free, so nothing here can
/// error.
pub(crate) fn refine_span(expr: &Expr, obs: &Schema, ts: &[i64], vals: &[f64], sel: &mut Vec<u32>) {
    use crate::kernel;
    if sel.is_empty() {
        return;
    }
    match expr {
        Expr::Literal(v) => {
            if !v.is_true() {
                sel.clear();
            }
        }
        Expr::Binary { op: BinaryOp::And, left, right } => {
            refine_span(left, obs, ts, vals, sel);
            refine_span(right, obs, ts, vals, sel);
        }
        Expr::Binary { op, left, right } => {
            let (col, lit, op) = if let (Some(c), Expr::Literal(k)) =
                (span_col(left, obs, ts, vals), &**right)
            {
                (c, k, *op)
            } else if let (Expr::Literal(k), Some(c)) = (&**left, span_col(right, obs, ts, vals)) {
                let op = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => *other,
                };
                (c, k, op)
            } else {
                unreachable!("span_refinable checked the comparison shape")
            };
            if lit.is_null() {
                sel.clear();
                return;
            }
            match (col, lit) {
                (SpanCol::I64(vs), Value::Int(k)) => {
                    let test = kernel::compile_i64_cmp_int(cmp_op_of(op), *k);
                    kernel::refine_i64_test(test, vs, None, sel);
                }
                (SpanCol::I64(vs), Value::Float(k)) => {
                    let test = kernel::compile_i64_cmp(cmp_op_of(op), *k);
                    kernel::refine_i64_test(test, vs, None, sel);
                }
                (SpanCol::F64(vs), k) if k.as_f64().is_some() => {
                    // Same exactness rule as the dense path: a non-round-
                    // trippable Int constant compares exactly per row.
                    if let Value::Int(ki) = k {
                        let kf = *ki as f64; // lint: allow as f64 — exactness re-checked by the round-trip test below
                        if kf as i128 != i128::from(*ki) {
                            let ki = *ki;
                            let mut n = 0usize;
                            for j in 0..sel.len() {
                                let i = sel[j];
                                sel[n] = i;
                                let keep = crate::value::cmp_i64_f64(ki, vs[i as usize])
                                    .map(Ordering::reverse)
                                    .is_some_and(|ord| cmp_matches(op, ord));
                                n += usize::from(keep);
                            }
                            sel.truncate(n);
                            return;
                        }
                    }
                    let k = k.as_f64().expect("checked"); // invariant: literal class checked by the support analysis
                    kernel::refine_f64_cmp(cmp_op_of(op), vs, None, k, sel);
                }
                (col, lit) => {
                    // Bool/Str/Map literal against a point column: exact
                    // per-row sql_cmp (typically unknown → drop).
                    let mut n = 0usize;
                    for j in 0..sel.len() {
                        let i = sel[j];
                        sel[n] = i;
                        let keep = col
                            .get(i as usize)
                            .sql_cmp(lit)
                            .is_some_and(|ord| cmp_matches(op, ord));
                        n += usize::from(keep);
                    }
                    sel.truncate(n);
                }
            }
        }
        Expr::Between { expr: e, low, high, negated } => {
            let col = span_col(e, obs, ts, vals).expect("span_refinable checked"); // invariant: span_refinable admitted this expression
            let (Expr::Literal(lo), Expr::Literal(hi)) = (&**low, &**high) else {
                unreachable!("span_refinable checked")
            };
            match col {
                SpanCol::I64(vs)
                    if matches!(lo, Value::Int(_) | Value::Float(_))
                        && matches!(hi, Value::Int(_) | Value::Float(_)) =>
                {
                    kernel::refine_i64_between(vs, None, lo, hi, *negated, sel);
                }
                SpanCol::F64(vs)
                    if matches!(lo, Value::Float(_)) && matches!(hi, Value::Float(_)) =>
                {
                    let (Value::Float(lo), Value::Float(hi)) = (lo, hi) else { unreachable!() };
                    kernel::refine_f64_between(vs, None, *lo, *hi, *negated, sel);
                }
                _ => {
                    let mut n = 0usize;
                    for j in 0..sel.len() {
                        let i = sel[j];
                        sel[n] = i;
                        let x = col.get(i as usize);
                        let keep = match (x.sql_cmp(lo), x.sql_cmp(hi)) {
                            (Some(a), Some(b)) => {
                                (a != Ordering::Less && b != Ordering::Greater) != *negated
                            }
                            _ => false,
                        };
                        n += usize::from(keep);
                    }
                    sel.truncate(n);
                }
            }
        }
        // Point columns never hold NULLs.
        Expr::IsNull { negated, .. } => kernel::refine_is_null(None, *negated, sel),
        Expr::InList { expr: e, list, negated } => {
            let col = span_col(e, obs, ts, vals).expect("span_refinable checked"); // invariant: span_refinable admitted this expression
            let items: Vec<&Value> = list
                .iter()
                .map(|item| match item {
                    Expr::Literal(v) => v,
                    _ => unreachable!("span_refinable checked"),
                })
                .collect();
            let any_null_item = items.iter().any(|iv| iv.is_null());
            let mut n = 0usize;
            for j in 0..sel.len() {
                let i = sel[j];
                sel[n] = i;
                let x = col.get(i as usize);
                let hit = items.iter().any(|iv| x.sql_cmp(iv) == Some(Ordering::Equal));
                let keep = if hit {
                    !*negated
                } else if any_null_item {
                    false
                } else {
                    *negated
                };
                n += usize::from(keep);
            }
            sel.truncate(n);
        }
        _ => unreachable!("span_refinable checked the predicate shape"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn schema() -> Schema {
        Schema::new(vec!["ts".into(), "v".into(), "host".into()])
    }

    fn cols() -> Vec<Column> {
        vec![
            Column::Int(vec![0, 1, 2, 3]),
            Column::Float(vec![1.0, 2.0, 3.0, 4.0]),
            Column::Str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
        ]
    }

    fn mask(e: &E) -> Vec<bool> {
        eval_mask(e, &schema(), &cols(), 4).unwrap()
    }

    #[test]
    fn dense_int_comparison() {
        let e = E::Binary {
            op: BinaryOp::Gt,
            left: Box::new(E::col("ts")),
            right: Box::new(E::lit(1i64)),
        };
        assert_eq!(mask(&e), vec![false, false, true, true]);
    }

    #[test]
    fn flipped_comparison_normalizes() {
        // 2 <= ts  ==  ts >= 2
        let e = E::Binary {
            op: BinaryOp::LtEq,
            left: Box::new(E::lit(2i64)),
            right: Box::new(E::col("ts")),
        };
        assert_eq!(mask(&e), vec![false, false, true, true]);
    }

    #[test]
    fn string_equality_and_and_combinator() {
        let host = E::Binary {
            op: BinaryOp::Eq,
            left: Box::new(E::col("host")),
            right: Box::new(E::lit("a")),
        };
        let v = E::Binary {
            op: BinaryOp::Gt,
            left: Box::new(E::col("v")),
            right: Box::new(E::lit(1.5)),
        };
        let both = E::Binary { op: BinaryOp::And, left: Box::new(host), right: Box::new(v) };
        assert_eq!(mask(&both), vec![false, false, true, false]);
    }

    #[test]
    fn between_fast_path() {
        let e = E::Between {
            expr: Box::new(E::col("ts")),
            low: Box::new(E::lit(1i64)),
            high: Box::new(E::lit(2i64)),
            negated: false,
        };
        assert_eq!(mask(&e), vec![false, true, true, false]);
    }

    #[test]
    fn in_list_on_strings() {
        let e = E::InList {
            expr: Box::new(E::col("host")),
            list: vec![E::lit("a"), E::lit("c")],
            negated: false,
        };
        assert_eq!(mask(&e), vec![true, false, true, true]);
    }

    #[test]
    fn is_null_on_dense_column_is_constant_false() {
        let e = E::IsNull { expr: Box::new(E::col("ts")), negated: false };
        assert_eq!(mask(&e), vec![false; 4]);
        let e = E::IsNull { expr: Box::new(E::col("ts")), negated: true };
        assert_eq!(mask(&e), vec![true; 4]);
    }

    #[test]
    fn unsupported_expressions_are_reported() {
        assert!(!supported(&E::Function { name: "AVG".into(), args: vec![] }));
        assert!(!supported(&E::Case { when_then: vec![], else_expr: None }));
        assert!(supported(&E::Binary {
            op: BinaryOp::Add,
            left: Box::new(E::col("v")),
            right: Box::new(E::lit(1i64)),
        }));
    }

    fn dict_cols() -> Vec<Column> {
        let names = Arc::new(vec![Value::str("cpu"), Value::str("disk")]);
        let tags = Arc::new(vec![
            Value::Map([("host".to_string(), "web-1".to_string())].into_iter().collect()),
            Value::Map(std::collections::BTreeMap::new()),
        ]);
        vec![
            Column::Int(vec![0, 1, 2, 3]),
            Column::dict(names, vec![0, 1, 0, 1]),
            Column::dict(tags, vec![0, 0, 1, 1]),
        ]
    }

    fn dict_schema() -> Schema {
        Schema::new(vec!["ts".into(), "metric_name".into(), "tag".into()])
    }

    #[test]
    fn dict_equality_evaluates_per_entry() {
        let e = E::Binary {
            op: BinaryOp::Eq,
            left: Box::new(E::col("metric_name")),
            right: Box::new(E::lit("cpu")),
        };
        let m = eval_mask(&e, &dict_schema(), &dict_cols(), 4).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
    }

    #[test]
    fn dict_glob_and_like() {
        for (op, pat, want) in [
            (BinaryOp::Glob, "c*", vec![true, false, true, false]),
            (BinaryOp::Like, "d%k", vec![false, true, false, true]),
        ] {
            let e = E::Binary {
                op,
                left: Box::new(E::col("metric_name")),
                right: Box::new(E::lit(pat)),
            };
            assert_eq!(eval_mask(&e, &dict_schema(), &dict_cols(), 4).unwrap(), want);
        }
    }

    #[test]
    fn dict_map_index_and_is_null() {
        // tag['host'] resolves per dictionary entry; the tagless entry
        // yields NULL, which IS NULL must see through the dictionary.
        let access =
            E::Index { container: Box::new(E::col("tag")), index: Box::new(E::lit("host")) };
        let out = eval(&access, &dict_schema(), &dict_cols(), 4).unwrap().into_column(4);
        assert_eq!(out.get(0), Value::str("web-1"));
        assert_eq!(out.get(2), Value::Null);
        let isnull = E::IsNull { expr: Box::new(access), negated: false };
        assert_eq!(
            eval_mask(&isnull, &dict_schema(), &dict_cols(), 4).unwrap(),
            vec![false, false, true, true]
        );
    }

    #[test]
    fn dict_errors_only_for_referenced_entries() {
        // Indexing into a Str dictionary entry is a type error — but only
        // entries actually referenced by a row may raise it.
        let names = Arc::new(vec![Value::str("cpu"), Value::Int(7)]);
        let cols = vec![Column::dict(names, vec![1, 1])];
        let schema = Schema::new(vec!["x".into()]);
        let e = E::Index { container: Box::new(E::col("x")), index: Box::new(E::lit("k")) };
        // Entry 0 ("cpu", unreferenced) would also error; entry 1 errors
        // first because rows reference it.
        assert!(eval(&e, &schema, &cols, 2).is_err());
    }

    #[test]
    fn arithmetic_matches_scalar_semantics() {
        // Int + Int stays Int via the generic path.
        let e = E::Binary {
            op: BinaryOp::Add,
            left: Box::new(E::col("ts")),
            right: Box::new(E::lit(10i64)),
        };
        let out = eval(&e, &schema(), &cols(), 4).unwrap().into_column(4);
        assert_eq!(out.get(2), Value::Int(12));
        // Float column uses the dense path.
        let e = E::Binary {
            op: BinaryOp::Mul,
            left: Box::new(E::col("v")),
            right: Box::new(E::lit(2.0)),
        };
        let out = eval(&e, &schema(), &cols(), 4).unwrap().into_column(4);
        assert_eq!(out.get(3), Value::Float(8.0));
    }
}
