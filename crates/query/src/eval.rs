//! Expression evaluation.
//!
//! Two contexts exist:
//! * **row context** — scalar evaluation against one row (WHERE, ON, GROUP
//!   BY keys), where aggregate and window calls are errors;
//! * **projection context** — evaluation with access to all input rows and
//!   the current row index, which makes `LAG`/`LEAD` work (§3.5's lagged
//!   features);
//! * **group context** — evaluation over a group of rows where aggregate
//!   calls consume the whole group and everything else is evaluated on the
//!   group's first row.

use std::cmp::Ordering;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::functions::{eval_aggregate, eval_scalar, is_aggregate, is_window};
use crate::table::Schema;
use crate::value::Value;
use crate::{QueryError, Result};

/// Evaluates an expression against a single row (no window/aggregate).
pub fn eval_row(expr: &Expr, schema: &Schema, row: &[Value]) -> Result<Value> {
    eval_with_rows(expr, schema, std::slice::from_ref(&row.to_vec()), 0)
}

/// Evaluates with full-input access (supports LAG/LEAD at the current
/// `idx`).
pub fn eval_with_rows(
    expr: &Expr,
    schema: &Schema,
    rows: &[Vec<Value>],
    idx: usize,
) -> Result<Value> {
    let row = &rows[idx];
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let i = schema.resolve(name)?;
            Ok(row[i].clone())
        }
        Expr::Unary { op, operand } => {
            let v = eval_with_rows(operand, schema, rows, idx)?;
            eval_unary(*op, v)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_with_rows(left, schema, rows, idx)?;
            // Short-circuit three-valued AND/OR.
            match op {
                BinaryOp::And => {
                    if matches!(l, Value::Bool(false)) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_with_rows(right, schema, rows, idx)?;
                    return eval_and(l, r);
                }
                BinaryOp::Or => {
                    if matches!(l, Value::Bool(true)) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_with_rows(right, schema, rows, idx)?;
                    return eval_or(l, r);
                }
                _ => {}
            }
            let r = eval_with_rows(right, schema, rows, idx)?;
            eval_binary(*op, l, r)
        }
        Expr::Function { name, args } => {
            if is_aggregate(name) {
                return Err(QueryError::Plan(format!(
                    "aggregate {name} used outside GROUP BY context"
                )));
            }
            if is_window(name) {
                return eval_window(name, args, schema, rows, idx);
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_with_rows(a, schema, rows, idx)?);
            }
            eval_scalar(name, &vals)
        }
        Expr::Index { container, index } => {
            let c = eval_with_rows(container, schema, rows, idx)?;
            let i = eval_with_rows(index, schema, rows, idx)?;
            eval_index(c, i)
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_with_rows(expr, schema, rows, idx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval_with_rows(item, schema, rows, idx)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_with_rows(expr, schema, rows, idx)?;
            let lo = eval_with_rows(low, schema, rows, idx)?;
            let hi = eval_with_rows(high, schema, rows, idx)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_with_rows(expr, schema, rows, idx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Case { when_then, else_expr } => {
            for (cond, result) in when_then {
                if eval_with_rows(cond, schema, rows, idx)?.is_true() {
                    return eval_with_rows(result, schema, rows, idx);
                }
            }
            match else_expr {
                Some(e) => eval_with_rows(e, schema, rows, idx),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluates an expression over a group of rows, computing aggregates over
/// the whole group and everything else on the group's first row.
pub fn eval_group(expr: &Expr, schema: &Schema, group: &[&Vec<Value>]) -> Result<Value> {
    match expr {
        Expr::Function { name, args } if is_aggregate(name) => {
            let mut per_row = Vec::with_capacity(group.len());
            for row in group {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval_row(a, schema, row)?);
                }
                per_row.push(vals);
            }
            eval_aggregate(name, &per_row)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_group(left, schema, group)?;
            let r = eval_group(right, schema, group)?;
            match op {
                BinaryOp::And => eval_and(l, r),
                BinaryOp::Or => eval_or(l, r),
                _ => eval_binary(*op, l, r),
            }
        }
        Expr::Unary { op, operand } => {
            let v = eval_group(operand, schema, group)?;
            eval_unary(*op, v)
        }
        Expr::Function { name, args } if !is_window(name) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_group(a, schema, group)?);
            }
            eval_scalar(name, &vals)
        }
        Expr::Index { container, index } => {
            let c = eval_group(container, schema, group)?;
            let i = eval_group(index, schema, group)?;
            eval_index(c, i)
        }
        Expr::Case { when_then, else_expr } => {
            for (cond, result) in when_then {
                if eval_group(cond, schema, group)?.is_true() {
                    return eval_group(result, schema, group);
                }
            }
            match else_expr {
                Some(e) => eval_group(e, schema, group),
                None => Ok(Value::Null),
            }
        }
        // Everything else (columns, literals, IN, BETWEEN, IS NULL) resolves
        // against the representative first row of the group.
        _ => {
            let first = group.first().ok_or_else(|| QueryError::Plan("empty group".into()))?;
            eval_row(expr, schema, first)
        }
    }
}

fn eval_window(
    name: &str,
    args: &[Expr],
    schema: &Schema,
    rows: &[Vec<Value>],
    idx: usize,
) -> Result<Value> {
    if args.is_empty() || args.len() > 3 {
        return Err(QueryError::BadFunction(format!("{name} expects 1-3 arguments")));
    }
    let offset = match args.get(1) {
        Some(e) => eval_with_rows(e, schema, rows, idx)?
            .as_i64()
            .ok_or_else(|| QueryError::Type(format!("{name} offset must be integer")))?,
        None => 1,
    };
    let target = if name == "LAG" { idx as i64 - offset } else { idx as i64 + offset };
    if target < 0 || target as usize >= rows.len() {
        // Default value argument, else NULL.
        return match args.get(2) {
            Some(e) => eval_with_rows(e, schema, rows, idx),
            None => Ok(Value::Null),
        };
    }
    eval_with_rows(&args[0], schema, rows, target as usize)
}

pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => {
            if v.is_null() {
                return Ok(Value::Null);
            }
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(QueryError::Type(format!("cannot negate {other}"))),
            }
        }
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Bool(!other.is_true())),
        },
    }
}

pub(crate) fn eval_and(l: Value, r: Value) -> Result<Value> {
    // Three-valued logic: false dominates, then NULL.
    match (l.is_null(), r.is_null()) {
        (false, false) => Ok(Value::Bool(l.is_true() && r.is_true())),
        (true, false) if !r.is_true() => Ok(Value::Bool(false)),
        (false, true) if !l.is_true() => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

pub(crate) fn eval_or(l: Value, r: Value) -> Result<Value> {
    match (l.is_null(), r.is_null()) {
        (false, false) => Ok(Value::Bool(l.is_true() || r.is_true())),
        (true, false) if r.is_true() => Ok(Value::Bool(true)),
        (false, true) if l.is_true() => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

pub(crate) fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    match op {
        BinaryOp::And | BinaryOp::Or => unreachable!("handled by caller"),
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => {
            let cmp = match l.sql_cmp(&r) {
                Some(c) => c,
                None => return Ok(Value::Null),
            };
            let b = match op {
                BinaryOp::Eq => cmp == Ordering::Equal,
                BinaryOp::NotEq => cmp != Ordering::Equal,
                BinaryOp::Lt => cmp == Ordering::Less,
                BinaryOp::LtEq => cmp != Ordering::Greater,
                BinaryOp::Gt => cmp == Ordering::Greater,
                BinaryOp::GtEq => cmp != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinaryOp::Like | BinaryOp::Glob => {
            let name = if op == BinaryOp::Like { "LIKE" } else { "GLOB" };
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let text = l
                .as_str()
                .ok_or_else(|| QueryError::Type(format!("{name} expects a string operand")))?;
            let pattern = r
                .as_str()
                .ok_or_else(|| QueryError::Type(format!("{name} expects a string pattern")))?;
            Ok(Value::Bool(if op == BinaryOp::Like {
                sql_like(pattern, text)
            } else {
                explainit_tsdb::glob_match(pattern, text)
            }))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation via `+` is a common convenience.
            if op == BinaryOp::Add {
                if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
                    return Ok(Value::Str(format!("{a}{b}")));
                }
            }
            // Int × Int stays in exact integer arithmetic; overflow
            // promotes to Float (same rule as AggAcc SUM) instead of
            // wrapping or rounding through f64. Division is always Float.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                let (a, b) = (*a, *b);
                let checked = |v: Option<i64>, exact: i128| match v {
                    Some(v) => Value::Int(v),
                    None => Value::Float(exact as f64),
                };
                return Ok(match op {
                    BinaryOp::Add => checked(a.checked_add(b), i128::from(a) + i128::from(b)),
                    BinaryOp::Sub => checked(a.checked_sub(b), i128::from(a) - i128::from(b)),
                    BinaryOp::Mul => checked(a.checked_mul(b), i128::from(a) * i128::from(b)),
                    BinaryOp::Div => {
                        if b == 0 {
                            Value::Null
                        } else {
                            Value::Float(a as f64 / b as f64)
                        }
                    }
                    BinaryOp::Mod => {
                        if b == 0 {
                            Value::Null
                        } else {
                            // i64::MIN % -1 is mathematically 0; wrapping_rem
                            // gives exactly that without the overflow panic.
                            Value::Int(a.wrapping_rem(b))
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let a = l
                .as_f64()
                .ok_or_else(|| QueryError::Type(format!("arithmetic on non-number {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| QueryError::Type(format!("arithmetic on non-number {r}")))?;
            let keep_int = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_));
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null); // SQL: division by zero -> NULL here
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            if keep_int && out.fract() == 0.0 && op != BinaryOp::Div {
                Ok(Value::Int(out as i64))
            } else {
                Ok(Value::Float(out))
            }
        }
    }
}

pub(crate) fn eval_index(container: Value, index: Value) -> Result<Value> {
    match container {
        Value::Null => Ok(Value::Null),
        Value::Map(m) => {
            let key = index
                .as_str()
                .ok_or_else(|| QueryError::Type("map index must be a string".into()))?;
            Ok(m.get(key).map(|v| Value::Str(v.clone())).unwrap_or(Value::Null))
        }
        Value::List(items) => {
            let i = index
                .as_i64()
                .ok_or_else(|| QueryError::Type("list index must be an integer".into()))?;
            if i < 0 || i as usize >= items.len() {
                Ok(Value::Null)
            } else {
                Ok(items[i as usize].clone())
            }
        }
        other => Err(QueryError::Type(format!("cannot index into {other}"))),
    }
}

/// SQL LIKE matching: `%` = any run, `_` = one char.
pub(crate) fn sql_like(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == '%')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;
    use std::collections::BTreeMap;

    fn schema() -> Schema {
        Schema::new(vec!["a".into(), "b".into(), "tag".into(), "s".into()])
    }

    fn row() -> Vec<Value> {
        let mut m = BTreeMap::new();
        m.insert("host".to_string(), "web-1".to_string());
        vec![Value::Int(3), Value::Float(1.5), Value::Map(m), Value::str("web-1")]
    }

    fn ev(expr: &E) -> Value {
        eval_row(expr, &schema(), &row()).unwrap()
    }

    #[test]
    fn arithmetic_and_types() {
        let e = E::Binary {
            op: BinaryOp::Add,
            left: Box::new(E::col("a")),
            right: Box::new(E::lit(2i64)),
        };
        assert_eq!(ev(&e), Value::Int(5));
        let e = E::Binary {
            op: BinaryOp::Mul,
            left: Box::new(E::col("a")),
            right: Box::new(E::col("b")),
        };
        assert_eq!(ev(&e), Value::Float(4.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = E::Binary {
            op: BinaryOp::Div,
            left: Box::new(E::lit(1i64)),
            right: Box::new(E::lit(0i64)),
        };
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn int_arithmetic_is_exact_and_promotes_on_overflow() {
        let bin = |op, l: i64, r: i64| eval_binary(op, Value::Int(l), Value::Int(r)).unwrap();
        // Exact above 2^53: the old f64 path would round this to 2^53.
        assert_eq!(bin(BinaryOp::Add, 1 << 53, 1), Value::Int((1 << 53) + 1));
        assert_eq!(bin(BinaryOp::Sub, i64::MAX, 1), Value::Int(i64::MAX - 1));
        // Overflow promotes to Float (AggAcc SUM's rule), never wraps.
        assert_eq!(
            bin(BinaryOp::Add, i64::MAX, 1),
            Value::Float((i128::from(i64::MAX) + 1) as f64)
        );
        assert_eq!(
            bin(BinaryOp::Sub, i64::MIN, 1),
            Value::Float((i128::from(i64::MIN) - 1) as f64)
        );
        assert_eq!(
            bin(BinaryOp::Mul, i64::MAX, i64::MAX),
            Value::Float((i128::from(i64::MAX) * i128::from(i64::MAX)) as f64)
        );
        assert_eq!(bin(BinaryOp::Mul, -1, i64::MIN), Value::Float(-(i64::MIN as f64)));
        // i64::MIN % -1 must not panic; the mathematical result is 0.
        assert_eq!(bin(BinaryOp::Mod, i64::MIN, -1), Value::Int(0));
        assert_eq!(bin(BinaryOp::Mod, 7, 3), Value::Int(1));
        assert_eq!(bin(BinaryOp::Mod, 7, 0), Value::Null);
        // Int / Int is always Float (or NULL on zero divisor).
        assert_eq!(bin(BinaryOp::Div, 7, 2), Value::Float(3.5));
        assert_eq!(bin(BinaryOp::Div, 4, 2), Value::Float(2.0));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = E::Binary {
            op: BinaryOp::Add,
            left: Box::new(E::Literal(Value::Null)),
            right: Box::new(E::lit(2i64)),
        };
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let null = E::Literal(Value::Null);
        let tru = E::lit(true);
        let fal = E::lit(false);
        let and = |l: &E, r: &E| E::Binary {
            op: BinaryOp::And,
            left: Box::new(l.clone()),
            right: Box::new(r.clone()),
        };
        let or = |l: &E, r: &E| E::Binary {
            op: BinaryOp::Or,
            left: Box::new(l.clone()),
            right: Box::new(r.clone()),
        };
        assert_eq!(ev(&and(&null, &fal)), Value::Bool(false));
        assert_eq!(ev(&and(&null, &tru)), Value::Null);
        assert_eq!(ev(&or(&null, &tru)), Value::Bool(true));
        assert_eq!(ev(&or(&null, &fal)), Value::Null);
    }

    #[test]
    fn map_index_and_missing_key() {
        let hit = E::Index { container: Box::new(E::col("tag")), index: Box::new(E::lit("host")) };
        assert_eq!(ev(&hit), Value::str("web-1"));
        let miss = E::Index { container: Box::new(E::col("tag")), index: Box::new(E::lit("nope")) };
        assert_eq!(ev(&miss), Value::Null);
    }

    #[test]
    fn split_then_index() {
        let e = E::Index {
            container: Box::new(E::Function {
                name: "SPLIT".into(),
                args: vec![E::col("s"), E::lit("-")],
            }),
            index: Box::new(E::lit(0i64)),
        };
        assert_eq!(ev(&e), Value::str("web"));
        let out_of_range = E::Index {
            container: Box::new(E::Function {
                name: "SPLIT".into(),
                args: vec![E::col("s"), E::lit("-")],
            }),
            index: Box::new(E::lit(9i64)),
        };
        assert_eq!(ev(&out_of_range), Value::Null);
    }

    #[test]
    fn in_list_with_null_semantics() {
        let e = E::InList {
            expr: Box::new(E::col("a")),
            list: vec![E::lit(1i64), E::lit(3i64)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = E::InList {
            expr: Box::new(E::col("a")),
            list: vec![E::lit(1i64), E::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Null); // unknown per SQL
    }

    #[test]
    fn between_inclusive() {
        let mk = |lo: i64, hi: i64, neg: bool| E::Between {
            expr: Box::new(E::col("a")),
            low: Box::new(E::lit(lo)),
            high: Box::new(E::lit(hi)),
            negated: neg,
        };
        assert_eq!(ev(&mk(3, 5, false)), Value::Bool(true));
        assert_eq!(ev(&mk(1, 3, false)), Value::Bool(true));
        assert_eq!(ev(&mk(4, 5, false)), Value::Bool(false));
        assert_eq!(ev(&mk(4, 5, true)), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(sql_like("web%", "web-12"));
        assert!(sql_like("%node%", "datanode-1"));
        assert!(sql_like("w_b", "web"));
        assert!(!sql_like("w_b", "wxyb"));
        assert!(sql_like("%", ""));
        assert!(!sql_like("a%", "b"));
    }

    #[test]
    fn case_expression() {
        let e = E::Case {
            when_then: vec![(
                E::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(E::col("a")),
                    right: Box::new(E::lit(2i64)),
                },
                E::lit("big"),
            )],
            else_expr: Some(Box::new(E::lit("small"))),
        };
        assert_eq!(ev(&e), Value::str("big"));
    }

    #[test]
    fn lag_and_lead() {
        let schema = Schema::new(vec!["v".into()]);
        let rows: Vec<Vec<Value>> = (0..4).map(|i| vec![Value::Int(i)]).collect();
        let lag = E::Function { name: "LAG".into(), args: vec![E::col("v")] };
        assert_eq!(eval_with_rows(&lag, &schema, &rows, 0).unwrap(), Value::Null);
        assert_eq!(eval_with_rows(&lag, &schema, &rows, 2).unwrap(), Value::Int(1));
        let lead2 = E::Function { name: "LEAD".into(), args: vec![E::col("v"), E::lit(2i64)] };
        assert_eq!(eval_with_rows(&lead2, &schema, &rows, 1).unwrap(), Value::Int(3));
        assert_eq!(eval_with_rows(&lead2, &schema, &rows, 3).unwrap(), Value::Null);
        let lag_default = E::Function {
            name: "LAG".into(),
            args: vec![E::col("v"), E::lit(1i64), E::lit(-1i64)],
        };
        assert_eq!(eval_with_rows(&lag_default, &schema, &rows, 0).unwrap(), Value::Int(-1));
    }

    #[test]
    fn aggregate_in_row_context_errors() {
        let agg = E::Function { name: "AVG".into(), args: vec![E::col("a")] };
        assert!(matches!(ev_err(&agg), QueryError::Plan(_)));
    }

    fn ev_err(expr: &E) -> QueryError {
        eval_row(expr, &schema(), &row()).unwrap_err()
    }

    #[test]
    fn group_evaluation() {
        let schema = Schema::new(vec!["k".into(), "v".into()]);
        let r1 = vec![Value::str("a"), Value::Float(1.0)];
        let r2 = vec![Value::str("a"), Value::Float(3.0)];
        let group: Vec<&Vec<Value>> = vec![&r1, &r2];
        let avg = E::Function { name: "AVG".into(), args: vec![E::col("v")] };
        assert_eq!(eval_group(&avg, &schema, &group).unwrap(), Value::Float(2.0));
        // Non-aggregate resolves on first row.
        assert_eq!(eval_group(&E::col("k"), &schema, &group).unwrap(), Value::str("a"));
        // Mixed expression: AVG(v) * 2.
        let mixed =
            E::Binary { op: BinaryOp::Mul, left: Box::new(avg), right: Box::new(E::lit(2i64)) };
        assert_eq!(eval_group(&mixed, &schema, &group).unwrap(), Value::Float(4.0));
    }

    #[test]
    fn string_plus_concatenates() {
        let e = E::Binary {
            op: BinaryOp::Add,
            left: Box::new(E::lit("a")),
            right: Box::new(E::lit("b")),
        };
        assert_eq!(ev(&e), Value::str("ab"));
    }
}
