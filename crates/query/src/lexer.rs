//! SQL tokenizer.

use crate::{QueryError, Result};

/// A lexical token. Keywords are uppercased identifiers matched at parse
/// time, so `select` and `SELECT` are both `Ident("SELECT")`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (normalised to uppercase for keywords; original
    /// case preserved in the payload for identifiers — comparison helpers on
    /// the parser side handle case-insensitivity).
    Ident(String),
    /// Single-quoted string literal (escaped quotes via doubling).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;` — statement separator in scripts.
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string, pairing every token with the byte offset it
/// starts at. The offsets survive parsing (see `SelectSpans`) so semantic
/// errors can point back into the source text.
pub fn tokenize_spanned(input: &str) -> Result<Vec<(Token, usize)>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        let tok = match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '(' => {
                i += 1;
                Token::LParen
            }
            ')' => {
                i += 1;
                Token::RParen
            }
            '[' => {
                i += 1;
                Token::LBracket
            }
            ']' => {
                i += 1;
                Token::RBracket
            }
            ',' => {
                i += 1;
                Token::Comma
            }
            ';' => {
                i += 1;
                Token::Semicolon
            }
            '.' => {
                i += 1;
                Token::Dot
            }
            '*' => {
                i += 1;
                Token::Star
            }
            '+' => {
                i += 1;
                Token::Plus
            }
            '-' => {
                i += 1;
                Token::Minus
            }
            '/' => {
                i += 1;
                Token::Slash
            }
            '%' => {
                i += 1;
                Token::Percent
            }
            '=' => {
                i += 1;
                Token::Eq
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    Token::NotEq
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    Token::LtEq
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    Token::NotEq
                } else {
                    i += 1;
                    Token::Lt
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    Token::GtEq
                } else {
                    i += 1;
                    Token::Gt
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(QueryError::Lex {
                            position: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[j] == b'\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                i = j;
                Token::StringLit(s)
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Scientific notation.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| QueryError::Lex {
                        position: start,
                        message: format!("bad float literal {text}: {e}"),
                    })?;
                    Token::FloatLit(v)
                } else {
                    let v = text.parse::<i64>().map_err(|e| QueryError::Lex {
                        position: start,
                        message: format!("bad int literal {text}: {e}"),
                    })?;
                    Token::IntLit(v)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                Token::Ident(input[start..i].to_string())
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        };
        tokens.push((tok, start));
    }
    Ok(tokens)
}

/// Tokenizes a SQL string (positions discarded).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x >= 1.5").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t.contains(&Token::Comma));
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::FloatLit(1.5)));
    }

    #[test]
    fn string_literal_with_escape() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::StringLit("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'abc"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn comparison_operators() {
        let t = tokenize("a != b <> c <= d >= e < f > g = h").unwrap();
        let ops: Vec<&Token> = t
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Token::NotEq | Token::LtEq | Token::GtEq | Token::Lt | Token::Gt | Token::Eq
                )
            })
            .collect();
        assert_eq!(ops.len(), 7);
        assert_eq!(*ops[0], Token::NotEq);
        assert_eq!(*ops[1], Token::NotEq);
    }

    #[test]
    fn map_access_tokens() {
        let t = tokenize("tag['host']").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("tag".into()),
                Token::LBracket,
                Token::StringLit("host".into()),
                Token::RBracket
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT a -- trailing comment\nFROM t").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn scientific_notation() {
        let t = tokenize("1e3 2.5e-2").unwrap();
        assert_eq!(t, vec![Token::FloatLit(1000.0), Token::FloatLit(0.025)]);
    }

    #[test]
    fn negative_numbers_are_minus_then_literal() {
        let t = tokenize("-5").unwrap();
        assert_eq!(t, vec![Token::Minus, Token::IntLit(5)]);
    }

    #[test]
    fn bad_character_errors() {
        assert!(matches!(tokenize("a @ b"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn semicolon_is_a_token() {
        let t = tokenize("SELECT 1; SELECT 2").unwrap();
        assert_eq!(t[2], Token::Semicolon);
    }

    #[test]
    fn keyword_detection_helper() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }

    #[test]
    fn spans_are_byte_offsets() {
        let t = tokenize_spanned("SELECT a, 'x' FROM t -- c\nWHERE a >= 1.5").unwrap();
        let offsets: Vec<usize> = t.iter().map(|&(_, p)| p).collect();
        assert_eq!(offsets, vec![0, 7, 8, 10, 14, 19, 26, 32, 34, 37]);
        assert_eq!(t[3].0, Token::StringLit("x".into()));
        assert_eq!(t[8].0, Token::GtEq);
    }

    #[test]
    fn explain_prefix_tokenizes_as_keyword() {
        let t = tokenize("EXPLAIN SELECT 1").unwrap();
        assert!(t[0].is_kw("EXPLAIN"));
        let t = tokenize("explain select 1").unwrap();
        assert!(t[0].is_kw("EXPLAIN"));
    }
}
