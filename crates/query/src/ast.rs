//! Abstract syntax tree for the SQL subset.

use crate::value::Value;

/// One statement of the declarative RCA surface (Figure 4 / Appendix C of
/// the paper as SQL): plain queries plus the session statements that drive
/// the root-cause engine. Produced by [`crate::parse_statement`] /
/// [`crate::parse_script`]; the session statements are executed by a
/// stateful session layer (the facade crate's `Session`), while
/// [`Statement::Query`] runs on a bare [`crate::Catalog`] too.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An ordinary query (optionally `EXPLAIN`-prefixed).
    Query(Query),
    /// `CREATE FAMILY <name> [WITH (...)] AS <query>` — stage one + pivot:
    /// run the query, pivot the result into feature-family frames, register
    /// them with the RCA engine.
    CreateFamily(CreateFamily),
    /// `EXPLAIN FOR <target> [GIVEN ...] [USING SCORER ...] [TOP k]` —
    /// hypothesis ranking, returned as an ordinary table.
    ExplainFor(ExplainFor),
    /// `SHOW FAMILIES` — the registered feature families.
    ShowFamilies,
    /// `SHOW TABLES` — the catalog's registered tables.
    ShowTables,
    /// `DROP FAMILY <name>` — remove a family (or a whole `CREATE FAMILY`
    /// group) from the engine.
    DropFamily {
        /// Family or group name.
        name: String,
    },
}

/// `CREATE FAMILY` payload: where the stage-one rows come from and how to
/// pivot them into the Feature Family Table.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateFamily {
    /// The statement name: the family name for single-frame pivots, and
    /// the *group* name when the pivot yields one frame per family label.
    pub name: String,
    /// `WITH (key = value, ...)` options (`layout`, `ts`, `family`,
    /// `feature`, `value`), validated by the session layer.
    pub options: Vec<(String, Value)>,
    /// The stage-one query producing the rows to pivot.
    pub query: Query,
}

/// `EXPLAIN FOR` payload: one Algorithm-1 ranking request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainFor {
    /// Target family (Y).
    pub target: String,
    /// Conditioning families (Z) from the `GIVEN` clause.
    pub given: Vec<String>,
    /// Scorer name from `USING SCORER` (`auto` when absent).
    pub scorer: Option<String>,
    /// `TOP k` result count (engine default when absent).
    pub top: Option<usize>,
}

/// A full query: one or more SELECTs combined with UNION ALL, optionally
/// prefixed with `EXPLAIN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The selects, unioned in order.
    pub selects: Vec<SelectStmt>,
    /// True for `EXPLAIN <query>`: return the optimized plan instead of
    /// executing it.
    pub explain: bool,
}

/// One SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause (None supports `SELECT 1`-style constant queries).
    pub from: Option<TableRef>,
    /// JOIN clauses applied left to right.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// Source byte offsets of the statement's components, recorded by the
    /// parser so plan-time diagnostics can point into the SQL text. A
    /// hand-built statement may leave this defaulted (offsets of 0).
    pub spans: SelectSpans,
}

/// Byte offsets (into the original SQL text) for the components of one
/// SELECT statement. Offsets are recorded at the first token of each
/// component; `Default` (all zeros / empty) is valid for synthetic ASTs and
/// simply makes diagnostics point at byte 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectSpans {
    /// Offset of the `SELECT` keyword itself.
    pub select: usize,
    /// One offset per projection item, in order.
    pub items: Vec<usize>,
    /// Offset of the FROM table reference.
    pub from: usize,
    /// One offset per JOIN's ON predicate, in order.
    pub join_ons: Vec<usize>,
    /// Offset of the WHERE predicate.
    pub where_clause: usize,
    /// One offset per GROUP BY expression, in order.
    pub group_by: Vec<usize>,
    /// One offset per ORDER BY key, in order.
    pub order_by: Vec<usize>,
}

impl SelectSpans {
    /// Offset of projection item `i`, falling back to the SELECT keyword.
    pub fn item(&self, i: usize) -> usize {
        self.items.get(i).copied().unwrap_or(self.select)
    }

    /// Offset of GROUP BY expression `i`, falling back to the SELECT keyword.
    pub fn group(&self, i: usize) -> usize {
        self.group_by.get(i).copied().unwrap_or(self.select)
    }

    /// Offset of ORDER BY key `i`, falling back to the SELECT keyword.
    pub fn order(&self, i: usize) -> usize {
        self.order_by.get(i).copied().unwrap_or(self.select)
    }

    /// Offset of JOIN `i`'s ON predicate, falling back to the SELECT keyword.
    pub fn join_on(&self, i: usize) -> usize {
        self.join_ons.get(i).copied().unwrap_or(self.select)
    }
}

/// A projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of the FROM scope.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias` if given.
        alias: Option<String>,
    },
}

/// A table reference in FROM or JOIN.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table in the catalog, with optional alias.
    Named {
        /// Catalog table name.
        name: String,
        /// Alias for qualified column references.
        alias: Option<String>,
    },
    /// A parenthesised subquery, with optional alias.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Alias for qualified column references.
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name columns get qualified with inside join scopes.
    pub fn scope_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { alias: Some(a), .. } => Some(a),
            TableRef::Named { name, .. } => Some(name),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
        }
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Rows must match on both sides.
    Inner,
    /// Keep all left rows, NULL-extend right.
    Left,
    /// Keep all rows from both sides (Appendix C's hypothesis join).
    FullOuter,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// INNER / LEFT / FULL OUTER.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableRef,
    /// The ON predicate.
    pub on: Expr,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// Binary operators in precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `LIKE` (SQL `%`/`_` wildcards)
    Like,
    /// `GLOB` (shell `*`/`?` wildcards — the paper's `disk{host=datanode*}`
    /// selector family, pushable to the TSDB tag index)
    Glob,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `NOT x`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, possibly qualified (`t.col`).
    Column(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function call (scalar, aggregate or window — resolved at execution).
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Subscript: `expr[index]` for maps (string key) and lists (int).
    Index {
        /// The container expression.
        container: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, result)` arms in order.
        when_then: Vec<(Expr, Expr)>,
        /// ELSE result (NULL if absent).
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if any node in this expression is an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                crate::functions::is_aggregate(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { operand, .. } => operand.contains_aggregate(),
            Expr::Index { container, index } => {
                container.contains_aggregate() || index.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Case { when_then, else_expr } => {
                when_then.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Literal(_) | Expr::Column(_) => false,
        }
    }

    /// A display name for unaliased projections (mirrors common SQL engines:
    /// bare columns keep their name, everything else gets a rendered form).
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
            Expr::Function { name, .. } => name.to_lowercase(),
            Expr::Literal(v) => v.render(),
            _ => "expr".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function { name: "AVG".into(), args: vec![Expr::col("v")] };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinaryOp::Add,
            left: Box::new(agg),
            right: Box::new(Expr::lit(1i64)),
        };
        assert!(nested.contains_aggregate());
        let scalar = Expr::Function { name: "CONCAT".into(), args: vec![Expr::col("a")] };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn default_names() {
        assert_eq!(Expr::col("t.runtime").default_name(), "runtime");
        assert_eq!(Expr::Function { name: "AVG".into(), args: vec![] }.default_name(), "avg");
        assert_eq!(Expr::lit(5i64).default_name(), "5");
    }

    #[test]
    fn table_ref_scope_names() {
        let named = TableRef::Named { name: "t".into(), alias: None };
        assert_eq!(named.scope_name(), Some("t"));
        let aliased = TableRef::Named { name: "t".into(), alias: Some("x".into()) };
        assert_eq!(aliased.scope_name(), Some("x"));
    }
}
