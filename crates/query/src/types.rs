//! Plan-time semantic analysis: a static type checker over the AST.
//!
//! The checker runs in [`crate::exec`] after planning and before
//! optimization, so malformed statements are rejected *before* any data is
//! scanned — with a byte position into the SQL text (threaded from the
//! lexer through [`crate::ast::SelectSpans`]) instead of a runtime error
//! minutes into a fleet-sized scan.
//!
//! # The `ColType` lattice
//!
//! Column types form a flat lattice: the concrete types `Int`, `Float`,
//! `Str`, `Bool`, `Map`, `List` at the bottom and [`ColType::Any`] (type
//! statically unknown) on top, with one diagonal edge — `Int ⊔ Float =
//! Float`, because the engine freely coerces between the numeric types.
//! Every column additionally carries a nullability flag ([`ColInfo`]).
//!
//! # Conservativeness
//!
//! The engine is dynamically typed at runtime, so the checker must reject
//! only what is *guaranteed* to error on any non-empty input: a statement
//! is rejected when an expression applies an operation to an operand whose
//! type is definitely known (not `Any`) and definitely unsupported —
//! `-host`, `'a' * 2`, `UPPER(value)` — or when a function is called with
//! an arity the runtime always rejects. Value-dependent failures (a
//! `List` index that is a non-integral float, `SPLIT` on a column that is
//! sometimes a map) still surface at execution; the differential suites
//! rely on this asymmetry: well-typed statements never get *new* errors.
//!
//! Two deliberate exceptions, called out in the ISSUE and pinned by tests,
//! reject at plan time what the runtime only detects on specific data:
//! `PERCENTILE` with a non-constant `p` (runtime needs two distinct values
//! in one group to notice) and `UNION` arity mismatches over empty inputs.
//!
//! The same inference drives the `EXPLAIN` kernel-refinability annotation
//! (see [`crate::plan::render_with`]): a filter over statically-numeric
//! columns is marked refinable without probing minicolumn runs.

use crate::ast::{BinaryOp, Expr, JoinKind, Query, SelectItem, SelectStmt, TableRef, UnaryOp};
use crate::catalog::Catalog;
use crate::column::Column;
use crate::functions::{is_aggregate, is_window};
use crate::table::Schema;
use crate::value::Value;
use crate::{QueryError, Result};

/// A column's static type: the flat value-type lattice with `Any` on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// String-to-string map (TSDB tag sets).
    Map,
    /// List of values (`SPLIT` results).
    List,
    /// Statically unknown — anything may flow here at runtime.
    Any,
}

impl ColType {
    /// Least upper bound: equal types join to themselves, the numeric
    /// types join to `Float`, everything else joins to `Any`.
    pub fn join(self, other: ColType) -> ColType {
        use ColType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Any,
        }
    }

    /// True for `Int` / `Float` — operands the arithmetic kernels accept.
    pub fn is_numeric(self) -> bool {
        matches!(self, ColType::Int | ColType::Float)
    }
}

impl std::fmt::Display for ColType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ColType::Int => "Int",
            ColType::Float => "Float",
            ColType::Str => "Str",
            ColType::Bool => "Bool",
            ColType::Map => "Map",
            ColType::List => "List",
            ColType::Any => "Any",
        })
    }
}

/// A column's inferred type plus nullability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColInfo {
    /// The lattice type.
    pub ty: ColType,
    /// True when NULL may appear in this column.
    pub nullable: bool,
}

impl ColInfo {
    /// A concrete, non-null column.
    pub fn new(ty: ColType, nullable: bool) -> ColInfo {
        ColInfo { ty, nullable }
    }

    /// The lattice top: unknown type, possibly null.
    pub fn any() -> ColInfo {
        ColInfo { ty: ColType::Any, nullable: true }
    }

    /// Pointwise least upper bound.
    pub fn join(self, other: ColInfo) -> ColInfo {
        ColInfo { ty: self.ty.join(other.ty), nullable: self.nullable || other.nullable }
    }

    /// The definitely-known type, `None` when `Any`.
    fn def(self) -> Option<ColType> {
        (self.ty != ColType::Any).then_some(self.ty)
    }

    /// True when the type is definitely one of `set`.
    fn def_in(self, set: &[ColType]) -> bool {
        self.def().is_some_and(|t| set.contains(&t))
    }
}

/// A [`Schema`] with per-column [`ColInfo`], the unit the checker threads
/// through FROM/JOIN scopes and derives per plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedSchema {
    schema: Schema,
    cols: Vec<ColInfo>,
}

impl TypedSchema {
    /// Pairs names with types.
    ///
    /// # Panics
    /// Panics when the lengths disagree (internal construction only).
    pub fn new(schema: Schema, cols: Vec<ColInfo>) -> TypedSchema {
        assert_eq!(schema.len(), cols.len(), "typed schema width mismatch");
        TypedSchema { schema, cols }
    }

    /// Zero columns (the `SELECT 1` unit scope).
    pub fn empty() -> TypedSchema {
        TypedSchema { schema: Schema::default(), cols: Vec::new() }
    }

    /// A schema with every column typed `Any` (lenient fallback).
    pub fn opaque(schema: Schema) -> TypedSchema {
        let cols = vec![ColInfo::any(); schema.len()];
        TypedSchema { schema, cols }
    }

    /// The column names.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The column types, parallel to [`TypedSchema::schema`].
    pub fn cols(&self) -> &[ColInfo] {
        &self.cols
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Resolves a column reference (same rules as [`Schema::resolve`]) to
    /// its type.
    pub fn resolve(&self, name: &str) -> Result<ColInfo> {
        Ok(self.cols[self.schema.resolve(name)?])
    }

    /// Join-scope qualification: prefixes names, keeps types.
    fn qualified(&self, alias: &str) -> TypedSchema {
        TypedSchema { schema: self.schema.qualified(alias), cols: self.cols.clone() }
    }

    /// Marks every column nullable (the NULL-extended side of an outer
    /// join).
    fn make_nullable(&mut self) {
        for c in &mut self.cols {
            c.nullable = true;
        }
    }

    /// Concatenates two scopes (join output).
    fn concat(mut self, right: TypedSchema) -> TypedSchema {
        let mut names = self.schema.columns().to_vec();
        names.extend(right.schema.columns().iter().cloned());
        self.cols.extend(right.cols);
        TypedSchema { schema: Schema::new(names), cols: self.cols }
    }
}

/// The observation-schema types of a TSDB binding:
/// `timestamp Int, metric_name Str, tag Map, value Float`, all non-null.
pub(crate) const TSDB_COL_TYPES: [ColType; 4] =
    [ColType::Int, ColType::Str, ColType::Map, ColType::Float];

/// Columns larger than this are typed `Any` instead of scanned — typing is
/// a plan-time pass and must stay O(1)-ish per table.
const TYPE_SCAN_CAP: usize = 65_536;

/// Infers a physical column's static type by inspecting its encoding:
/// dense typed vectors are exact and non-null for free; dictionaries scan
/// their (small) value set; generic value vectors are scanned up to
/// [`TYPE_SCAN_CAP`] entries.
fn column_type(col: &Column) -> ColInfo {
    fn fold_values<'a>(vals: impl Iterator<Item = &'a Value>) -> ColInfo {
        let mut ty: Option<ColType> = None;
        let mut nullable = false;
        for v in vals {
            let t = match v {
                Value::Null => {
                    nullable = true;
                    continue;
                }
                Value::Int(_) => ColType::Int,
                Value::Float(_) => ColType::Float,
                Value::Str(_) => ColType::Str,
                Value::Bool(_) => ColType::Bool,
                Value::Map(_) => ColType::Map,
                Value::List(_) => ColType::List,
            };
            ty = Some(match ty {
                None => t,
                Some(prev) => prev.join(t),
            });
        }
        // An all-null or empty column constrains nothing: Any, nullable.
        ColInfo { ty: ty.unwrap_or(ColType::Any), nullable: nullable || ty.is_none() }
    }
    match col {
        Column::Int(_) => ColInfo::new(ColType::Int, false),
        Column::Float(_) => ColInfo::new(ColType::Float, false),
        Column::Str(_) => ColInfo::new(ColType::Str, false),
        Column::Bool(_) => ColInfo::new(ColType::Bool, false),
        Column::Dict { values, .. } => fold_values(values.iter()),
        Column::Values(v) if v.len() <= TYPE_SCAN_CAP => fold_values(v.iter()),
        Column::Values(_) => ColInfo::any(),
    }
}

/// The typed schema of a catalog base table. TSDB bindings get the fixed
/// observation-schema types without materializing anything; in-memory
/// tables are typed from their physical column encodings.
pub(crate) fn base_table_types(catalog: &Catalog, name: &str) -> Result<TypedSchema> {
    let schema =
        catalog.schema_of(name).ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
    if catalog.is_tsdb(name) {
        let cols = TSDB_COL_TYPES.iter().map(|&t| ColInfo::new(t, false)).collect();
        return Ok(TypedSchema::new(schema, cols));
    }
    // Mem tables are cheap Arc clones; only TSDB `get` would materialize.
    let table = catalog.get(name).ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
    let cols = table.columns().iter().map(column_type).collect();
    Ok(TypedSchema::new(schema, cols))
}

// ---------------------------------------------------------------------------
// Statement checking
// ---------------------------------------------------------------------------

/// Type-checks a whole query (all UNION branches) against the catalog.
///
/// Called by the executor between planning and optimization; also usable
/// standalone. Every rejection carries an `at byte N` source position.
pub fn check_query(catalog: &Catalog, query: &Query) -> Result<()> {
    query_types(catalog, query).map(|_| ())
}

/// Type-checks a query and returns its output [`TypedSchema`] (the first
/// branch's names; types joined across UNION branches).
pub fn query_types(catalog: &Catalog, query: &Query) -> Result<TypedSchema> {
    let mut out: Option<TypedSchema> = None;
    for select in &query.selects {
        let s = check_select(catalog, select)?;
        match &mut out {
            None => out = Some(s),
            Some(first) => {
                if s.len() != first.len() {
                    // Mirrors the executor's Union-arm message, caught
                    // before any branch runs.
                    return Err(QueryError::Plan(format!(
                        "UNION arity mismatch: [{}] has {} columns, [{}] has {}",
                        first.schema.columns().join(", "),
                        first.len(),
                        s.schema.columns().join(", "),
                        s.len()
                    ))
                    .at_byte(select.spans.select));
                }
                for (a, b) in first.cols.iter_mut().zip(s.cols.iter()) {
                    *a = a.join(*b);
                }
            }
        }
    }
    out.ok_or_else(|| QueryError::Plan("query has no SELECT".into()))
}

/// Expression evaluation context, mirroring the executor's split in
/// [`crate::eval`].
#[derive(Clone, Copy)]
enum Ctx<'a> {
    /// Row-at-a-time evaluation (WHERE, ON, GROUP BY keys, projection
    /// items of ungrouped queries, aggregate arguments): an aggregate call
    /// here is the runtime's "outside GROUP BY context" plan error.
    Row,
    /// Per-group evaluation (items / hidden keys of a grouped query):
    /// aggregates allowed; carries the GROUP BY keys for the PERCENTILE-p
    /// constancy analysis.
    Grouped {
        /// The statement's GROUP BY expressions.
        group_by: &'a [Expr],
    },
}

/// Checks one SELECT, mirroring `plan::build_select`'s scoping rules
/// exactly (join qualification, wildcard expansion, ORDER BY resolution),
/// and returns its output schema with types.
fn check_select(catalog: &Catalog, select: &SelectStmt) -> Result<TypedSchema> {
    let spans = &select.spans;

    // ---- FROM + JOINs: build the input scope --------------------------
    let mut scope = match &select.from {
        Some(tref) => {
            let base = table_ref_types(catalog, tref).map_err(|e| e.at_byte(spans.from))?;
            if select.joins.is_empty() {
                base
            } else {
                let alias = tref.scope_name().ok_or_else(|| {
                    QueryError::Plan("subquery in a join needs an alias".into()).at_byte(spans.from)
                })?;
                base.qualified(alias)
            }
        }
        None => TypedSchema::empty(),
    };
    for (ji, join) in select.joins.iter().enumerate() {
        let right = table_ref_types(catalog, &join.table).map_err(|e| e.at_byte(spans.from))?;
        let alias = join.table.scope_name().ok_or_else(|| {
            QueryError::Plan("joined subquery needs an alias".into()).at_byte(spans.from)
        })?;
        let mut right = right.qualified(alias);
        match join.kind {
            JoinKind::Inner => {}
            JoinKind::Left => right.make_nullable(),
            JoinKind::FullOuter => {
                scope.make_nullable();
                right.make_nullable();
            }
        }
        scope = scope.concat(right);
        // ON sees the cumulative scope of everything joined so far.
        infer(&join.on, &scope, Ctx::Row).map_err(|e| e.at_byte(spans.join_on(ji)))?;
    }

    // ---- WHERE --------------------------------------------------------
    if let Some(pred) = &select.where_clause {
        infer(pred, &scope, Ctx::Row).map_err(|e| e.at_byte(spans.where_clause))?;
    }

    // ---- GROUP BY keys ------------------------------------------------
    for (i, key) in select.group_by.iter().enumerate() {
        infer(key, &scope, Ctx::Row).map_err(|e| e.at_byte(spans.group(i)))?;
    }

    // ---- projection items ---------------------------------------------
    let has_aggregates = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    });
    let grouped = !select.group_by.is_empty() || has_aggregates;
    let item_ctx = if grouped { Ctx::Grouped { group_by: &select.group_by } } else { Ctx::Row };

    let mut names: Vec<String> = Vec::new();
    let mut cols: Vec<ColInfo> = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                if grouped {
                    return Err(QueryError::Plan(
                        "SELECT * cannot be combined with GROUP BY".into(),
                    )
                    .at_byte(spans.item(i)));
                }
                names.extend(scope.schema.columns().iter().cloned());
                cols.extend(scope.cols.iter().copied());
            }
            SelectItem::Expr { expr, alias } => {
                let info = infer(expr, &scope, item_ctx).map_err(|e| e.at_byte(spans.item(i)))?;
                names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                cols.push(info);
            }
        }
    }

    // ---- ORDER BY -----------------------------------------------------
    // A bare column resolving in the output schema sorts the projected
    // value (already typed); anything else is a hidden key evaluated
    // against the projection input, per group when grouped.
    let out_names = Schema::new(names.clone());
    for (i, ok) in select.order_by.iter().enumerate() {
        let sorts_output =
            matches!(&ok.expr, Expr::Column(name) if out_names.resolve(name).is_ok());
        if !sorts_output {
            infer(&ok.expr, &scope, item_ctx).map_err(|e| e.at_byte(spans.order(i)))?;
        }
    }

    Ok(TypedSchema::new(out_names, cols))
}

fn table_ref_types(catalog: &Catalog, tref: &TableRef) -> Result<TypedSchema> {
    match tref {
        TableRef::Named { name, .. } => base_table_types(catalog, name),
        TableRef::Subquery { query, .. } => query_types(catalog, query),
    }
}

// ---------------------------------------------------------------------------
// Expression inference
// ---------------------------------------------------------------------------

/// Infers an expression's type against a scope in row context (WHERE-like
/// evaluation), rejecting definitely-ill-typed operations. The public
/// entry point for tests and tooling; statement checking goes through
/// [`check_query`].
pub fn infer_expr(expr: &Expr, scope: &TypedSchema) -> Result<ColInfo> {
    infer(expr, scope, Ctx::Row)
}

const NOT_STRING: [ColType; 5] =
    [ColType::Int, ColType::Float, ColType::Bool, ColType::Map, ColType::List];
const NOT_NUMERIC: [ColType; 3] = [ColType::Str, ColType::Map, ColType::List];

fn infer(expr: &Expr, scope: &TypedSchema, ctx: Ctx<'_>) -> Result<ColInfo> {
    match expr {
        Expr::Literal(v) => Ok(literal_type(v)),
        Expr::Column(name) => match scope.resolve(name) {
            // An ambiguous bare column is *not* a guaranteed runtime error:
            // pushdown re-scopes join predicates into the side where the
            // name is unique, and the reference interpreter resolves it
            // positionally. Keep it opaque rather than over-reject.
            Err(QueryError::UnknownColumn(m)) if m.contains("ambiguous") => Ok(ColInfo::any()),
            other => other,
        },
        Expr::Binary { op, left, right } => {
            let l = infer(left, scope, ctx)?;
            let r = infer(right, scope, ctx)?;
            infer_binary(*op, l, r)
        }
        Expr::Unary { op, operand } => {
            let v = infer(operand, scope, ctx)?;
            match op {
                UnaryOp::Neg => {
                    if v.def_in(&[ColType::Str, ColType::Bool, ColType::Map, ColType::List]) {
                        return Err(QueryError::Type(format!("cannot negate a {}", v.ty)));
                    }
                    Ok(ColInfo::new(
                        if v.ty.is_numeric() { v.ty } else { ColType::Any },
                        v.nullable,
                    ))
                }
                UnaryOp::Not => Ok(ColInfo::new(ColType::Bool, v.nullable)),
            }
        }
        Expr::Function { name, args } => infer_function(name, args, scope, ctx),
        Expr::Index { container, index } => {
            let c = infer(container, scope, ctx)?;
            let i = infer(index, scope, ctx)?;
            match c.def() {
                Some(ColType::Map) => {
                    if i.def_in(&NOT_STRING) {
                        return Err(QueryError::Type("map index must be a string".into()));
                    }
                    Ok(ColInfo::new(ColType::Str, true))
                }
                Some(ColType::List) => {
                    if i.def_in(&NOT_NUMERIC) {
                        return Err(QueryError::Type("list index must be an integer".into()));
                    }
                    Ok(ColInfo::any())
                }
                Some(other) => Err(QueryError::Type(format!("cannot index into a {other}"))),
                None => Ok(ColInfo::any()),
            }
        }
        // IN / BETWEEN / IS NULL compare via sql_cmp (never a type error),
        // but their operands evaluate row-at-a-time even inside a grouped
        // projection (the executor's eval_group falls back to the group's
        // first row), so aggregates beneath them are rejected.
        Expr::InList { expr, list, .. } => {
            infer(expr, scope, Ctx::Row)?;
            for item in list {
                infer(item, scope, Ctx::Row)?;
            }
            Ok(ColInfo::new(ColType::Bool, true))
        }
        Expr::Between { expr, low, high, .. } => {
            infer(expr, scope, Ctx::Row)?;
            infer(low, scope, Ctx::Row)?;
            infer(high, scope, Ctx::Row)?;
            Ok(ColInfo::new(ColType::Bool, true))
        }
        Expr::IsNull { expr, .. } => {
            infer(expr, scope, Ctx::Row)?;
            Ok(ColInfo::new(ColType::Bool, false))
        }
        Expr::Case { when_then, else_expr } => {
            let mut out: Option<ColInfo> = None;
            for (cond, result) in when_then {
                infer(cond, scope, ctx)?;
                let r = infer(result, scope, ctx)?;
                out = Some(match out {
                    None => r,
                    Some(prev) => prev.join(r),
                });
            }
            let out = out.unwrap_or_else(ColInfo::any);
            match else_expr {
                Some(e) => {
                    let e = infer(e, scope, ctx)?;
                    Ok(out.join(e))
                }
                // No ELSE: NULL when no arm matches.
                None => Ok(ColInfo::new(out.ty, true)),
            }
        }
    }
}

fn literal_type(v: &Value) -> ColInfo {
    match v {
        Value::Null => ColInfo::any(),
        Value::Int(_) => ColInfo::new(ColType::Int, false),
        Value::Float(_) => ColInfo::new(ColType::Float, false),
        Value::Str(_) => ColInfo::new(ColType::Str, false),
        Value::Bool(_) => ColInfo::new(ColType::Bool, false),
        Value::Map(_) => ColInfo::new(ColType::Map, false),
        Value::List(_) => ColInfo::new(ColType::List, false),
    }
}

fn infer_binary(op: BinaryOp, l: ColInfo, r: ColInfo) -> Result<ColInfo> {
    use BinaryOp::*;
    match op {
        // Three-valued logic; operands are always evaluated, never
        // type-checked at runtime.
        And | Or => Ok(ColInfo::new(ColType::Bool, true)),
        // sql_cmp yields NULL for incomparable operands, never an error.
        Eq | NotEq | Lt | LtEq | Gt | GtEq => Ok(ColInfo::new(ColType::Bool, true)),
        Like | Glob => {
            if l.def_in(&NOT_STRING) {
                let name = if op == Like { "LIKE" } else { "GLOB" };
                return Err(QueryError::Type(format!("{name} expects a string operand")));
            }
            if r.def_in(&NOT_STRING) {
                let name = if op == Like { "LIKE" } else { "GLOB" };
                return Err(QueryError::Type(format!("{name} expects a string pattern")));
            }
            Ok(ColInfo::new(ColType::Bool, true))
        }
        Add | Sub | Mul | Div | Mod => {
            // `+` doubles as string concatenation when BOTH sides are
            // strings; everything else goes through numeric coercion
            // (bools count as 0/1).
            if op == Add && l.def() == Some(ColType::Str) && r.def() == Some(ColType::Str) {
                return Ok(ColInfo::new(ColType::Str, l.nullable || r.nullable));
            }
            let cross_str = |a: ColInfo, b: ColInfo| {
                op == Add && a.def() == Some(ColType::Str) && b.def().is_some()
            };
            for side in [l, r] {
                let bad = if op == Add {
                    side.def_in(&[ColType::Map, ColType::List])
                } else {
                    side.def_in(&NOT_NUMERIC)
                };
                if bad {
                    return Err(QueryError::Type(format!(
                        "arithmetic on non-number ({} operand)",
                        side.ty
                    )));
                }
            }
            if cross_str(l, r) || cross_str(r, l) {
                return Err(QueryError::Type("arithmetic on non-number (Str operand)".into()));
            }
            let nullable = l.nullable
                || r.nullable
                // Division / modulo by zero yields NULL.
                || matches!(op, Div | Mod);
            let ty = match (l.def(), r.def()) {
                _ if op == Div => ColType::Float,
                (Some(ColType::Int), Some(ColType::Int)) => ColType::Int,
                (Some(a), Some(b)) if a.is_numeric() && b.is_numeric() => ColType::Float,
                _ => ColType::Any,
            };
            Ok(ColInfo::new(ty, nullable))
        }
    }
}

fn infer_function(name: &str, args: &[Expr], scope: &TypedSchema, ctx: Ctx<'_>) -> Result<ColInfo> {
    if is_aggregate(name) {
        let group_by = match ctx {
            Ctx::Row => {
                return Err(QueryError::Plan(format!(
                    "aggregate {name} used outside GROUP BY context"
                )));
            }
            Ctx::Grouped { group_by } => group_by,
        };
        // Aggregate arguments are evaluated row-at-a-time: a nested
        // aggregate is the runtime's outside-GROUP-BY plan error.
        let arg_tys: Vec<ColInfo> =
            args.iter().map(|a| infer(a, scope, Ctx::Row)).collect::<Result<_>>()?;
        if name == "PERCENTILE" {
            check_percentile_p(args, group_by)?;
        }
        let first = arg_tys.first().copied().unwrap_or_else(ColInfo::any);
        return Ok(match name {
            "COUNT" => ColInfo::new(ColType::Int, false),
            "AVG" | "STDDEV" | "VARIANCE" | "PERCENTILE" => ColInfo::new(ColType::Float, true),
            "MIN" | "MAX" => ColInfo::new(first.ty, true),
            // SUM stays integer-exact over Int inputs but promotes to
            // Float on overflow, so only a definitely-Float input gives a
            // definite output type.
            "SUM" if first.def() == Some(ColType::Float) => ColInfo::new(ColType::Float, true),
            _ => ColInfo::any(),
        });
    }
    if is_window(name) {
        // LAG / LEAD: value, optional integer offset, optional default.
        if args.is_empty() || args.len() > 3 {
            return Err(QueryError::BadFunction(format!("{name} expects 1-3 arguments")));
        }
        let arg_tys: Vec<ColInfo> =
            args.iter().map(|a| infer(a, scope, Ctx::Row)).collect::<Result<_>>()?;
        if let Some(offset) = arg_tys.get(1) {
            if offset.def_in(&NOT_NUMERIC) {
                return Err(QueryError::Type(format!("{name} offset must be integer")));
            }
        }
        let mut out = ColInfo::new(arg_tys[0].ty, true);
        if let Some(default) = arg_tys.get(2) {
            out = out.join(*default);
            out.nullable = true;
        }
        return Ok(out);
    }
    infer_scalar(name, args, scope, ctx)
}

/// Static PERCENTILE-p analysis: `p` must be a literal in `[0, 1]` after
/// constant folding, or (syntactically) one of the GROUP BY keys — the two
/// shapes that guarantee per-group constancy. The runtime only notices a
/// varying `p` when one group sees two distinct values, which makes the
/// failure data-dependent; rejecting statically is this module's one
/// deliberate strictness (pinned by the differential suite).
fn check_percentile_p(args: &[Expr], group_by: &[Expr]) -> Result<()> {
    let Some(p) = args.get(1) else {
        return Err(QueryError::BadFunction("PERCENTILE needs a p argument".into()));
    };
    let folded = crate::optimize::fold_expr(p.clone());
    if let Expr::Literal(v) = &folded {
        return match v.as_f64() {
            Some(f) if (0.0..=1.0).contains(&f) => Ok(()),
            Some(_) => Err(QueryError::BadFunction("PERCENTILE p must be in [0,1]".into())),
            None => Err(QueryError::BadFunction("PERCENTILE needs a p argument".into())),
        };
    }
    if group_by.iter().any(|g| g == p || *g == folded) {
        return Ok(());
    }
    Err(QueryError::BadFunction(
        "PERCENTILE p must be constant per group (a literal or a GROUP BY key)".into(),
    ))
}

fn infer_scalar(name: &str, args: &[Expr], scope: &TypedSchema, ctx: Ctx<'_>) -> Result<ColInfo> {
    let tys: Vec<ColInfo> = args.iter().map(|a| infer(a, scope, ctx)).collect::<Result<_>>()?;
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(QueryError::BadFunction(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    let want_str = |i: usize, msg: &str| -> Result<()> {
        if tys[i].def_in(&NOT_STRING) {
            Err(QueryError::Type(msg.to_string()))
        } else {
            Ok(())
        }
    };
    let want_num = |i: usize| -> Result<()> {
        if tys[i].def_in(&NOT_NUMERIC) {
            Err(QueryError::Type(format!("{name} expects a numeric argument")))
        } else {
            Ok(())
        }
    };
    match name {
        // CONCAT renders anything (NULLs as empty) — no constraints.
        "CONCAT" => Ok(ColInfo::new(ColType::Str, false)),
        "SPLIT" => {
            arity(2)?;
            want_str(0, "SPLIT expects (string, string)")?;
            want_str(1, "SPLIT expects (string, string)")?;
            Ok(ColInfo::new(ColType::List, true))
        }
        "UPPER" | "LOWER" | "TRIM" => {
            arity(1)?;
            want_str(0, &format!("{name} expects a string"))?;
            Ok(ColInfo::new(ColType::Str, tys[0].nullable))
        }
        "LENGTH" => {
            arity(1)?;
            if tys[0].def_in(&[ColType::Int, ColType::Float, ColType::Bool, ColType::Map]) {
                return Err(QueryError::Type("LENGTH expects a string or list".into()));
            }
            Ok(ColInfo::new(ColType::Int, tys[0].nullable))
        }
        "COALESCE" => {
            let joined = tys.iter().copied().reduce(ColInfo::join);
            Ok(match joined {
                Some(j) => ColInfo::new(j.ty, tys.iter().all(|t| t.nullable)),
                None => ColInfo::any(),
            })
        }
        "GREATEST" | "LEAST" => {
            if args.is_empty() {
                return Err(QueryError::BadFunction(format!("{name} needs arguments")));
            }
            for i in 0..tys.len() {
                want_num(i)?;
            }
            Ok(ColInfo::new(ColType::Float, true))
        }
        "ABS" | "SQRT" | "LN" | "EXP" | "FLOOR" | "CEIL" => {
            arity(1)?;
            want_num(0)?;
            Ok(ColInfo::new(ColType::Float, tys[0].nullable))
        }
        "ROUND" => {
            if args.len() != 1 {
                arity(2)?;
            }
            want_num(0)?;
            if tys.len() == 2 && tys[1].def_in(&NOT_NUMERIC) {
                return Err(QueryError::Type("ROUND digits must be integer".into()));
            }
            Ok(ColInfo::new(ColType::Float, tys[0].nullable))
        }
        "POW" | "POWER" => {
            arity(2)?;
            want_num(0)?;
            want_num(1)?;
            Ok(ColInfo::new(ColType::Float, true))
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(QueryError::BadFunction(format!("{name} expects 2 or 3 args")));
            }
            want_str(0, "SUBSTR expects a string")?;
            for (i, ty) in tys.iter().enumerate().skip(1) {
                if ty.def_in(&NOT_NUMERIC) {
                    return Err(QueryError::Type(format!(
                        "SUBSTR {} must be integer",
                        if i == 1 { "start" } else { "length" }
                    )));
                }
            }
            Ok(ColInfo::new(ColType::Str, tys[0].nullable))
        }
        "REPLACE" => {
            arity(3)?;
            for i in 0..3 {
                want_str(i, "REPLACE expects three strings")?;
            }
            Ok(ColInfo::new(ColType::Str, tys[0].nullable))
        }
        "HOSTGROUP" => {
            arity(1)?;
            want_str(0, "HOSTGROUP expects a string")?;
            Ok(ColInfo::new(ColType::Str, tys[0].nullable))
        }
        // IF takes any condition (truthiness) and any branch types.
        "IF" => {
            arity(3)?;
            Ok(tys[1].join(tys[2]))
        }
        "NULLIF" => {
            arity(2)?;
            Ok(ColInfo::new(tys[0].ty, true))
        }
        other => Err(QueryError::BadFunction(format!("unknown function {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::table::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "t",
            Table::from_rows(
                &["ts", "host", "v"],
                vec![
                    vec![Value::Int(0), Value::str("web-1"), Value::Float(1.0)],
                    vec![Value::Int(1), Value::str("web-2"), Value::Float(2.0)],
                ],
            ),
        );
        c.register(
            "u",
            Table::from_rows(
                &["ts", "w"],
                vec![vec![Value::Int(0), Value::Null], vec![Value::Int(1), Value::Int(7)]],
            ),
        );
        c
    }

    fn check(sql: &str) -> Result<TypedSchema> {
        let q = parse_query(sql).expect("parse");
        query_types(&catalog(), &q)
    }

    #[test]
    fn lattice_joins() {
        assert_eq!(ColType::Int.join(ColType::Float), ColType::Float);
        assert_eq!(ColType::Float.join(ColType::Int), ColType::Float);
        assert_eq!(ColType::Str.join(ColType::Str), ColType::Str);
        assert_eq!(ColType::Str.join(ColType::Int), ColType::Any);
        assert_eq!(ColType::Any.join(ColType::Int), ColType::Any);
    }

    #[test]
    fn base_table_typing_from_columns() {
        let ts = base_table_types(&catalog(), "t").unwrap();
        assert_eq!(ts.cols()[0], ColInfo::new(ColType::Int, false));
        assert_eq!(ts.cols()[1], ColInfo::new(ColType::Str, false));
        assert_eq!(ts.cols()[2], ColInfo::new(ColType::Float, false));
        // u.w mixes Null and Int -> nullable Int.
        let us = base_table_types(&catalog(), "u").unwrap();
        assert_eq!(us.cols()[1], ColInfo::new(ColType::Int, true));
    }

    #[test]
    fn well_typed_statements_pass() {
        for sql in [
            "SELECT ts, v * 2 AS d FROM t WHERE v > 1",
            "SELECT host, AVG(v) AS m FROM t GROUP BY host ORDER BY m DESC",
            "SELECT UPPER(host) AS h, -v AS nv FROM t",
            "SELECT COALESCE(w, 0) AS w0 FROM u",
            "SELECT t.v FROM t JOIN u ON t.ts = u.ts",
            "SELECT PERCENTILE(v, 0.5) AS p50 FROM t",
            "SELECT PERCENTILE(v, ts) AS p FROM t GROUP BY ts",
            "SELECT CONCAT(host, '-', ts) AS k FROM t",
            "SELECT v FROM t UNION ALL SELECT w FROM u",
            "SELECT 1 + 2 AS three",
        ] {
            assert!(check(sql).is_ok(), "{sql}: {:?}", check(sql));
        }
    }

    #[test]
    fn string_arithmetic_rejected_with_position() {
        let err = check("SELECT host * 2 FROM t").unwrap_err();
        let QueryError::Type(msg) = &err else { panic!("{err:?}") };
        assert!(msg.contains("at byte 7"), "{msg}");
        assert!(check("SELECT v FROM t WHERE host - 1 > 0").is_err());
    }

    #[test]
    fn negation_of_string_rejected() {
        assert!(matches!(check("SELECT -host FROM t"), Err(QueryError::Type(_))));
        // Negating a nullable Int is fine.
        assert!(check("SELECT -w FROM u").is_ok());
    }

    #[test]
    fn bad_arity_rejected() {
        assert!(matches!(
            check("SELECT UPPER(host, host) FROM t"),
            Err(QueryError::BadFunction(_))
        ));
        assert!(matches!(check("SELECT SUBSTR(host) FROM t"), Err(QueryError::BadFunction(_))));
        assert!(matches!(check("SELECT NOSUCHFN(v) FROM t"), Err(QueryError::BadFunction(_))));
    }

    #[test]
    fn percentile_p_rules() {
        // Non-constant p that is not a group key: the ISSUE's flagship
        // static rejection.
        assert!(matches!(
            check("SELECT PERCENTILE(v, ts * 0.1) AS p FROM t"),
            Err(QueryError::BadFunction(_))
        ));
        assert!(matches!(check("SELECT PERCENTILE(v) FROM t"), Err(QueryError::BadFunction(_))));
        assert!(matches!(
            check("SELECT PERCENTILE(v, 1.5) FROM t"),
            Err(QueryError::BadFunction(_))
        ));
        // Constant-foldable p is fine.
        assert!(check("SELECT PERCENTILE(v, 1.0 / 2.0) AS p FROM t").is_ok());
    }

    #[test]
    fn aggregate_outside_group_context_rejected() {
        assert!(matches!(check("SELECT v FROM t WHERE AVG(v) > 1"), Err(QueryError::Plan(_))));
        // Nested aggregate: argument evaluation is row-at-a-time.
        assert!(matches!(check("SELECT AVG(SUM(v)) FROM t"), Err(QueryError::Plan(_))));
    }

    #[test]
    fn union_arity_mismatch_with_position() {
        let err = check("SELECT ts, v FROM t UNION ALL SELECT ts FROM u").unwrap_err();
        let QueryError::Plan(msg) = &err else { panic!("{err:?}") };
        assert!(msg.contains("UNION arity mismatch"), "{msg}");
        assert!(msg.contains("at byte 30"), "{msg}");
    }

    #[test]
    fn unknown_columns_and_tables_positioned() {
        let err = check("SELECT nope FROM t").unwrap_err();
        let QueryError::UnknownColumn(msg) = &err else { panic!("{err:?}") };
        assert!(msg.contains("at byte 7"), "{msg}");
        assert!(matches!(check("SELECT v FROM missing"), Err(QueryError::UnknownTable(_))));
    }

    #[test]
    fn map_and_list_indexing() {
        // Indexing a scalar is definitely wrong.
        assert!(matches!(check("SELECT v['x'] FROM t"), Err(QueryError::Type(_))));
        // SPLIT yields a list; integer indexing is fine, string is not.
        assert!(check("SELECT SPLIT(host, '-')[0] FROM t").is_ok());
        assert!(matches!(check("SELECT SPLIT(host, '-')['x'] FROM t"), Err(QueryError::Type(_))));
    }

    #[test]
    fn outer_join_nullability() {
        let ts = check("SELECT t.v, u.w FROM t LEFT JOIN u ON t.ts = u.ts").unwrap();
        assert!(!ts.cols()[0].nullable, "left side of LEFT JOIN stays non-null");
        assert!(ts.cols()[1].nullable, "right side of LEFT JOIN is nullable");
    }

    #[test]
    fn subquery_types_flow_through() {
        let ts = check("SELECT d FROM (SELECT v * 2 AS d FROM t) s").unwrap();
        assert_eq!(ts.cols()[0].ty, ColType::Float);
        // Errors inside a subquery surface too.
        assert!(check("SELECT d FROM (SELECT host * 2 AS d FROM t) s").is_err());
    }

    #[test]
    fn infer_expr_public_entry() {
        let scope = base_table_types(&catalog(), "t").unwrap();
        let q = parse_query("SELECT v + 1 FROM t").unwrap();
        let crate::ast::SelectItem::Expr { expr, .. } = &q.selects[0].items[0] else {
            panic!("expected expr item")
        };
        let info = infer_expr(expr, &scope).unwrap();
        assert_eq!(info.ty, ColType::Float);
    }
}
