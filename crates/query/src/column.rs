//! Typed column vectors — the physical storage of the columnar executor.
//!
//! A [`Column`] stores homogeneous `Int` / `Float` / `Str` / `Bool` data in
//! dense native vectors and falls back to a boxed [`Value`] vector
//! (`Values`) for NULLs, maps, lists, or mixed content. Construction never
//! changes a value's identity: pushing `Value::Int` into a `Float` column
//! demotes the column to `Values` rather than silently rewriting the value
//! (explicit numeric coercion is a `UNION` policy, see
//! [`Column::append_coercing`]).

use crate::value::Value;

/// A single table column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dense non-null 64-bit integers.
    Int(Vec<i64>),
    /// Dense non-null 64-bit floats.
    Float(Vec<f64>),
    /// Dense non-null strings.
    Str(Vec<String>),
    /// Dense non-null booleans.
    Bool(Vec<bool>),
    /// Generic fallback: any values, including NULLs, maps and lists.
    Values(Vec<Value>),
}

impl Column {
    /// An empty generic column.
    pub fn empty() -> Column {
        Column::Values(Vec::new())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Values(v) => v.len(),
        }
    }

    /// True when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` (cloned into a [`Value`]).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Values(v) => v[i].clone(),
        }
    }

    /// Builds the densest representation of `values`: a typed vector when
    /// homogeneous and null-free, the generic fallback otherwise.
    pub fn from_values(values: Vec<Value>) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Str,
            Bool,
            Mixed,
        }
        let mut kind: Option<Kind> = None;
        for v in &values {
            let k = match v {
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => Kind::Str,
                Value::Bool(_) => Kind::Bool,
                _ => Kind::Mixed,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => {
                    kind = Some(Kind::Mixed);
                    break;
                }
            }
        }
        match kind {
            Some(Kind::Int) => Column::Int(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("homogeneous int column"),
                    })
                    .collect(),
            ),
            Some(Kind::Float) => Column::Float(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Float(f) => f,
                        _ => unreachable!("homogeneous float column"),
                    })
                    .collect(),
            ),
            Some(Kind::Str) => Column::Str(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("homogeneous string column"),
                    })
                    .collect(),
            ),
            Some(Kind::Bool) => Column::Bool(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Bool(b) => b,
                        _ => unreachable!("homogeneous bool column"),
                    })
                    .collect(),
            ),
            _ => Column::Values(values),
        }
    }

    /// Demotes the column to the generic representation in place.
    fn make_generic(&mut self) -> &mut Vec<Value> {
        if !matches!(self, Column::Values(_)) {
            let generic: Vec<Value> = (0..self.len()).map(|i| self.get(i)).collect();
            *self = Column::Values(generic);
        }
        match self {
            Column::Values(v) => v,
            _ => unreachable!("just converted"),
        }
    }

    /// Appends one value, demoting the representation when the type does
    /// not match (value identity is always preserved).
    pub fn push(&mut self, value: Value) {
        match (&mut *self, value) {
            (Column::Int(v), Value::Int(i)) => v.push(i),
            (Column::Float(v), Value::Float(f)) => v.push(f),
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (Column::Bool(v), Value::Bool(b)) => v.push(b),
            (Column::Values(v), other) => v.push(other),
            (_, other) => self.make_generic().push(other),
        }
    }

    /// Selects the entries at `indices` into a new column.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Values(v) => Column::Values(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Gather with optional indices: `None` produces NULL (used by outer
    /// joins to null-extend the unmatched side).
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Column {
        if indices.iter().all(Option::is_some) {
            let dense: Vec<usize> = indices.iter().map(|i| i.expect("checked")).collect();
            return self.gather(&dense);
        }
        Column::Values(
            indices
                .iter()
                .map(|i| match i {
                    Some(i) => self.get(*i),
                    None => Value::Null,
                })
                .collect(),
        )
    }

    /// Keeps only entries whose mask bit is set.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter().zip(mask.iter()).filter(|(_, &m)| m).map(|(x, _)| x.clone()).collect()
        }
        match self {
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Str(v) => Column::Str(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Values(v) => Column::Values(keep(v, mask)),
        }
    }

    /// Truncates to the first `n` entries.
    pub fn truncate(&mut self, n: usize) {
        match self {
            Column::Int(v) => v.truncate(n),
            Column::Float(v) => v.truncate(n),
            Column::Str(v) => v.truncate(n),
            Column::Bool(v) => v.truncate(n),
            Column::Values(v) => v.truncate(n),
        }
    }

    /// Appends another column with `UNION` numeric coercion: an `Int`
    /// column meeting a `Float` column (either way) becomes `Float`; any
    /// other kind mismatch demotes to the generic representation.
    pub fn append_coercing(&mut self, other: Column) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend(b),
            (Column::Float(a), Column::Float(b)) => a.extend(b),
            (Column::Str(a), Column::Str(b)) => a.extend(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend(b),
            (Column::Values(a), b) => {
                for i in 0..b.len() {
                    a.push(b.get(i));
                }
            }
            (Column::Int(a), Column::Float(b)) => {
                let mut floats: Vec<f64> = a.iter().map(|&i| i as f64).collect();
                floats.extend(b);
                *self = Column::Float(floats);
            }
            (Column::Float(a), Column::Int(b)) => {
                a.extend(b.into_iter().map(|i| i as f64));
            }
            (_, b) => {
                let generic = self.make_generic();
                for i in 0..b.len() {
                    generic.push(b.get(i));
                }
            }
        }
    }

    /// Numeric view: each entry as `f64`, non-numeric entries as NaN
    /// (mirrors the row-era `Table::numeric_column` semantics).
    pub fn to_f64_lossy(&self) -> Vec<f64> {
        match self {
            Column::Int(v) => v.iter().map(|&i| i as f64).collect(),
            Column::Float(v) => v.clone(),
            Column::Bool(v) => v.iter().map(|&b| f64::from(b)).collect(),
            Column::Str(v) => vec![f64::NAN; v.len()],
            Column::Values(v) => v.iter().map(|x| x.as_f64().unwrap_or(f64::NAN)).collect(),
        }
    }

    /// Borrow as native i64 slice when the column is dense `Int`.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as native f64 slice when the column is dense `Float`.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Iterates entries as [`Value`]s.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_picks_dense_representation() {
        let c = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(c, Column::Int(_)));
        let c = Column::from_values(vec![Value::Float(1.5)]);
        assert!(matches!(c, Column::Float(_)));
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(c, Column::Values(_)));
        let c = Column::from_values(vec![Value::Null]);
        assert!(matches!(c, Column::Values(_)));
    }

    #[test]
    fn push_preserves_value_identity() {
        let mut c = Column::Int(vec![1]);
        c.push(Value::Float(2.5));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Float(2.5));
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        assert_eq!(c.gather(&[3, 0]), Column::Int(vec![40, 10]));
        assert_eq!(c.filter(&[true, false, false, true]), Column::Int(vec![10, 40]));
    }

    #[test]
    fn gather_opt_null_extends() {
        let c = Column::Int(vec![1, 2]);
        let out = c.gather_opt(&[Some(1), None]);
        assert_eq!(out.get(0), Value::Int(2));
        assert_eq!(out.get(1), Value::Null);
    }

    #[test]
    fn union_coercion_promotes_numerics() {
        let mut c = Column::Int(vec![1, 2]);
        c.append_coercing(Column::Float(vec![0.5]));
        assert_eq!(c, Column::Float(vec![1.0, 2.0, 0.5]));
        let mut c = Column::Float(vec![0.5]);
        c.append_coercing(Column::Int(vec![3]));
        assert_eq!(c, Column::Float(vec![0.5, 3.0]));
        let mut c = Column::Str(vec!["a".into()]);
        c.append_coercing(Column::Int(vec![1]));
        assert_eq!(c.get(1), Value::Int(1));
    }

    #[test]
    fn lossy_numeric_view() {
        let c = Column::Values(vec![Value::Int(1), Value::str("x"), Value::Null]);
        let f = c.to_f64_lossy();
        assert_eq!(f[0], 1.0);
        assert!(f[1].is_nan() && f[2].is_nan());
    }
}
