//! Typed column vectors — the physical storage of the columnar executor.
//!
//! A [`Column`] stores homogeneous `Int` / `Float` / `Str` / `Bool` data in
//! dense native vectors and falls back to a boxed [`Value`] vector
//! (`Values`) for NULLs, maps, lists, or mixed content. Construction never
//! changes a value's identity: pushing `Value::Int` into a `Float` column
//! demotes the column to `Values` rather than silently rewriting the value
//! (explicit numeric coercion is a `UNION` policy, see
//! [`Column::append_coercing`]).
//!
//! The [`Column::Dict`] variant is a *dictionary-encoded* column: a shared
//! `Arc` dictionary of distinct values plus one `u32` code per row. The
//! TSDB scan emits its `metric_name` and `tag` columns this way — the
//! dictionary is built once per bound store, so scanning a million rows
//! clones one `Arc` instead of a million `String`s/tag maps — and the
//! vectorized kernels in [`crate::veval`] evaluate predicates per distinct
//! dictionary entry instead of per row.

use std::sync::Arc;

use crate::value::Value;

/// A single table column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dense non-null 64-bit integers.
    Int(Vec<i64>),
    /// Dense non-null 64-bit floats.
    Float(Vec<f64>),
    /// Dense non-null strings.
    Str(Vec<String>),
    /// Dense non-null booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded values: `values[codes[i]]` is row `i`'s value.
    /// The dictionary is shared (`Arc`) across columns, morsels and scans.
    Dict {
        /// Distinct values (may be any [`Value`], typically `Str` or `Map`).
        values: Arc<Vec<Value>>,
        /// Per-row index into `values`.
        codes: Vec<u32>,
    },
    /// Generic fallback: any values, including NULLs, maps and lists.
    Values(Vec<Value>),
}

impl Column {
    /// An empty generic column.
    pub fn empty() -> Column {
        Column::Values(Vec::new())
    }

    /// Builds a dictionary column from shared values and row codes.
    ///
    /// # Panics
    /// Panics (in debug builds) when a code is out of range.
    pub fn dict(values: Arc<Vec<Value>>, codes: Vec<u32>) -> Column {
        debug_assert!(codes.iter().all(|&c| (c as usize) < values.len()));
        Column::Dict { values, codes }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Values(v) => v.len(),
        }
    }

    /// True when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` (cloned into a [`Value`]).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Dict { values, codes } => values[codes[i] as usize].clone(),
            Column::Values(v) => v[i].clone(),
        }
    }

    /// Builds the densest representation of `values`: a typed vector when
    /// homogeneous and null-free, the generic fallback otherwise.
    pub fn from_values(values: Vec<Value>) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Str,
            Bool,
            Mixed,
        }
        let mut kind: Option<Kind> = None;
        for v in &values {
            let k = match v {
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => Kind::Str,
                Value::Bool(_) => Kind::Bool,
                _ => Kind::Mixed,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => {
                    kind = Some(Kind::Mixed);
                    break;
                }
            }
        }
        match kind {
            Some(Kind::Int) => Column::Int(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("homogeneous int column"),
                    })
                    .collect(),
            ),
            Some(Kind::Float) => Column::Float(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Float(f) => f,
                        _ => unreachable!("homogeneous float column"),
                    })
                    .collect(),
            ),
            Some(Kind::Str) => Column::Str(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("homogeneous string column"),
                    })
                    .collect(),
            ),
            Some(Kind::Bool) => Column::Bool(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Bool(b) => b,
                        _ => unreachable!("homogeneous bool column"),
                    })
                    .collect(),
            ),
            _ => Column::Values(values),
        }
    }

    /// Demotes the column to the generic representation in place.
    fn make_generic(&mut self) -> &mut Vec<Value> {
        if !matches!(self, Column::Values(_)) {
            let generic: Vec<Value> = (0..self.len()).map(|i| self.get(i)).collect();
            *self = Column::Values(generic);
        }
        match self {
            Column::Values(v) => v,
            _ => unreachable!("just converted"),
        }
    }

    /// Appends one value, demoting the representation when the type does
    /// not match (value identity is always preserved).
    pub fn push(&mut self, value: Value) {
        match (&mut *self, value) {
            (Column::Int(v), Value::Int(i)) => v.push(i),
            (Column::Float(v), Value::Float(f)) => v.push(f),
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (Column::Bool(v), Value::Bool(b)) => v.push(b),
            (Column::Values(v), other) => v.push(other),
            (_, other) => self.make_generic().push(other),
        }
    }

    /// Selects the entries at `indices` into a new column.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Dict { values, codes } => Column::Dict {
                values: Arc::clone(values),
                codes: indices.iter().map(|&i| codes[i]).collect(),
            },
            Column::Values(v) => Column::Values(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Selects the entries at the selection-vector row ids (the `u32`
    /// form the typed filter kernels produce) into a new column.
    pub fn gather_u32(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(v) => Column::Str(sel.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Bool(v) => Column::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Dict { values, codes } => Column::Dict {
                values: Arc::clone(values),
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
            },
            Column::Values(v) => {
                Column::Values(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Gather with optional indices: `None` produces NULL (used by outer
    /// joins to null-extend the unmatched side).
    ///
    /// Padding is type-preserving: a dictionary column stays
    /// dictionary-encoded (the dictionary grows a NULL entry instead of
    /// cloning a value per row), and dense columns demote to the generic
    /// representation whose present values keep their exact identity — an
    /// `Int` column padded with NULLs still yields `Value::Int` for every
    /// matched row, never a float or a rendered string.
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Column {
        if indices.iter().all(Option::is_some) {
            let dense: Vec<usize> = indices.iter().map(|i| i.expect("checked")).collect(); // invariant: the all-dense check on the line above
            return self.gather(&dense);
        }
        if let Column::Dict { values, codes } = self {
            let mut padded = values.as_ref().clone();
            let null_code = u32::try_from(padded.len()).expect("dictionary size fits u32"); // invariant: a dictionary never outgrows u32 codes
            padded.push(Value::Null);
            return Column::dict(
                Arc::new(padded),
                indices.iter().map(|i| i.map_or(null_code, |i| codes[i])).collect(),
            );
        }
        Column::Values(
            indices
                .iter()
                .map(|i| match i {
                    Some(i) => self.get(*i),
                    None => Value::Null,
                })
                .collect(),
        )
    }

    /// Keeps only entries whose mask bit is set.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter().zip(mask.iter()).filter(|(_, &m)| m).map(|(x, _)| x.clone()).collect()
        }
        match self {
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Str(v) => Column::Str(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Dict { values, codes } => {
                Column::Dict { values: Arc::clone(values), codes: keep(codes, mask) }
            }
            Column::Values(v) => Column::Values(keep(v, mask)),
        }
    }

    /// Copies the `[start, end)` subrange into a new column — the morsel
    /// cut of the partition-parallel executor. Cheap for dense numeric and
    /// dictionary columns (a memcpy of natives / codes).
    pub fn slice(&self, start: usize, end: usize) -> Column {
        match self {
            Column::Int(v) => Column::Int(v[start..end].to_vec()),
            Column::Float(v) => Column::Float(v[start..end].to_vec()),
            Column::Str(v) => Column::Str(v[start..end].to_vec()),
            Column::Bool(v) => Column::Bool(v[start..end].to_vec()),
            Column::Dict { values, codes } => {
                Column::Dict { values: Arc::clone(values), codes: codes[start..end].to_vec() }
            }
            Column::Values(v) => Column::Values(v[start..end].to_vec()),
        }
    }

    /// Truncates to the first `n` entries.
    pub fn truncate(&mut self, n: usize) {
        match self {
            Column::Int(v) => v.truncate(n),
            Column::Float(v) => v.truncate(n),
            Column::Str(v) => v.truncate(n),
            Column::Bool(v) => v.truncate(n),
            Column::Dict { codes, .. } => codes.truncate(n),
            Column::Values(v) => v.truncate(n),
        }
    }

    /// Appends another column with `UNION` numeric coercion: an `Int`
    /// column meeting a `Float` column (either way) becomes `Float`; any
    /// other combination behaves like [`Column::append_preserving`].
    pub fn append_coercing(&mut self, other: Column) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Float(b)) => {
                let mut floats: Vec<f64> = a.iter().map(|&i| i as f64).collect();
                floats.extend(b);
                *self = Column::Float(floats);
            }
            (Column::Float(a), Column::Int(b)) => {
                a.extend(b.into_iter().map(|i| i as f64));
            }
            (_, b) => self.append_preserving(b),
        }
    }

    /// Appends another column *without* coercion: same-kind dense columns
    /// extend in place, anything else demotes to the generic
    /// representation, preserving every value's identity. This is how the
    /// partition-parallel executor concatenates morsel outputs so the
    /// result is value-identical to a single-pass evaluation.
    pub fn append_preserving(&mut self, other: Column) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend(b),
            (Column::Float(a), Column::Float(b)) => a.extend(b),
            (Column::Str(a), Column::Str(b)) => a.extend(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend(b),
            (Column::Dict { values: av, codes: ac }, Column::Dict { values: bv, codes: bc })
                if Arc::ptr_eq(av, &bv) =>
            {
                ac.extend(bc)
            }
            (Column::Values(a), b) => {
                for i in 0..b.len() {
                    a.push(b.get(i));
                }
            }
            (_, b) => {
                let generic = self.make_generic();
                for i in 0..b.len() {
                    generic.push(b.get(i));
                }
            }
        }
    }

    /// Numeric view: each entry as `f64`, non-numeric entries as NaN
    /// (mirrors the row-era `Table::numeric_column` semantics).
    pub fn to_f64_lossy(&self) -> Vec<f64> {
        match self {
            Column::Int(v) => v.iter().map(|&i| i as f64).collect(),
            Column::Float(v) => v.clone(),
            Column::Bool(v) => v.iter().map(|&b| f64::from(b)).collect(),
            Column::Str(v) => vec![f64::NAN; v.len()],
            Column::Dict { values, codes } => {
                let per: Vec<f64> = values.iter().map(|v| v.as_f64().unwrap_or(f64::NAN)).collect();
                codes.iter().map(|&c| per[c as usize]).collect()
            }
            Column::Values(v) => v.iter().map(|x| x.as_f64().unwrap_or(f64::NAN)).collect(),
        }
    }

    /// Borrow as native i64 slice when the column is dense `Int`.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as native f64 slice when the column is dense `Float`.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Iterates entries as [`Value`]s.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_picks_dense_representation() {
        let c = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(c, Column::Int(_)));
        let c = Column::from_values(vec![Value::Float(1.5)]);
        assert!(matches!(c, Column::Float(_)));
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(c, Column::Values(_)));
        let c = Column::from_values(vec![Value::Null]);
        assert!(matches!(c, Column::Values(_)));
    }

    #[test]
    fn push_preserves_value_identity() {
        let mut c = Column::Int(vec![1]);
        c.push(Value::Float(2.5));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Float(2.5));
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        assert_eq!(c.gather(&[3, 0]), Column::Int(vec![40, 10]));
        assert_eq!(c.filter(&[true, false, false, true]), Column::Int(vec![10, 40]));
    }

    #[test]
    fn gather_opt_null_extends() {
        let c = Column::Int(vec![1, 2]);
        let out = c.gather_opt(&[Some(1), None]);
        assert_eq!(out.get(0), Value::Int(2));
        assert_eq!(out.get(1), Value::Null);
    }

    #[test]
    fn gather_opt_padding_preserves_value_identity() {
        // Outer-join null padding must never rewrite the present values:
        // Int stays Int (not Float, not a rendered string).
        let c = Column::Int(vec![7, 8]);
        let out = c.gather_opt(&[Some(0), None, Some(1)]);
        assert_eq!(
            out.iter_values().collect::<Vec<_>>(),
            vec![Value::Int(7), Value::Null, Value::Int(8)]
        );
        let c = Column::Float(vec![1.5]);
        let out = c.gather_opt(&[None, Some(0)]);
        assert_eq!(out.get(1), Value::Float(1.5));
    }

    #[test]
    fn gather_opt_keeps_dictionary_encoding() {
        // A dictionary column survives null padding as a dictionary with a
        // NULL entry — no per-row value cloning through outer joins.
        let values = Arc::new(vec![Value::str("a"), Value::str("b")]);
        let c = Column::dict(values, vec![0, 1, 0]);
        let out = c.gather_opt(&[Some(2), None, Some(1)]);
        assert!(matches!(out, Column::Dict { .. }), "stays dict-encoded: {out:?}");
        assert_eq!(out.get(0), Value::str("a"));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::str("b"));
        // The all-matched fast path shares the original dictionary.
        let dense = c.gather_opt(&[Some(1), Some(0)]);
        assert!(matches!(dense, Column::Dict { .. }));
        assert_eq!(dense.get(0), Value::str("b"));
    }

    #[test]
    fn union_coercion_promotes_numerics() {
        let mut c = Column::Int(vec![1, 2]);
        c.append_coercing(Column::Float(vec![0.5]));
        assert_eq!(c, Column::Float(vec![1.0, 2.0, 0.5]));
        let mut c = Column::Float(vec![0.5]);
        c.append_coercing(Column::Int(vec![3]));
        assert_eq!(c, Column::Float(vec![0.5, 3.0]));
        let mut c = Column::Str(vec!["a".into()]);
        c.append_coercing(Column::Int(vec![1]));
        assert_eq!(c.get(1), Value::Int(1));
    }

    #[test]
    fn append_preserving_never_rewrites_values() {
        let mut c = Column::Int(vec![1, 2]);
        c.append_preserving(Column::Float(vec![0.5]));
        // No Int→Float coercion: identities survive, repr demotes.
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(2), Value::Float(0.5));
        let mut c = Column::Int(vec![1]);
        c.append_preserving(Column::Int(vec![2]));
        assert_eq!(c, Column::Int(vec![1, 2]));
    }

    #[test]
    fn lossy_numeric_view() {
        let c = Column::Values(vec![Value::Int(1), Value::str("x"), Value::Null]);
        let f = c.to_f64_lossy();
        assert_eq!(f[0], 1.0);
        assert!(f[1].is_nan() && f[2].is_nan());
    }

    fn sample_dict() -> Column {
        let values = Arc::new(vec![Value::str("cpu"), Value::str("disk"), Value::str("net")]);
        Column::dict(values, vec![0, 1, 0, 2, 1])
    }

    #[test]
    fn dict_column_basics() {
        let c = sample_dict();
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(0), Value::str("cpu"));
        assert_eq!(c.get(3), Value::str("net"));
        assert_eq!(c.gather(&[4, 0]).get(0), Value::str("disk"));
        let filtered = c.filter(&[false, true, false, false, true]);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.get(0), Value::str("disk"));
        let sliced = c.slice(1, 4);
        assert_eq!(sliced.len(), 3);
        assert_eq!(sliced.get(0), Value::str("disk"));
        let mut t = sample_dict();
        t.truncate(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dict_append_shares_or_demotes() {
        // Same dictionary: code-level extend.
        let mut a = sample_dict();
        let b = a.slice(0, 2);
        a.append_preserving(b);
        assert_eq!(a.len(), 7);
        assert!(matches!(a, Column::Dict { .. }));
        // Different dictionary: demote, values preserved.
        let mut a = sample_dict();
        let other = Column::dict(Arc::new(vec![Value::str("io")]), vec![0]);
        a.append_preserving(other);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(5), Value::str("io"));
        assert!(matches!(a, Column::Values(_)));
    }

    #[test]
    fn dict_push_demotes_to_generic() {
        let mut c = sample_dict();
        c.push(Value::str("new"));
        assert_eq!(c.len(), 6);
        assert_eq!(c.get(0), Value::str("cpu"));
        assert_eq!(c.get(5), Value::str("new"));
    }

    #[test]
    fn dict_numeric_view_decodes_per_entry() {
        let values = Arc::new(vec![Value::Int(7), Value::str("x")]);
        let c = Column::dict(values, vec![0, 1, 0]);
        let f = c.to_f64_lossy();
        assert_eq!(f[0], 7.0);
        assert!(f[1].is_nan());
        assert_eq!(f[2], 7.0);
    }
}
