//! Row-oriented tables with named columns.

use crate::value::Value;
use crate::{QueryError, Result};

/// Column names of a table. Names may be qualified (`t.col`) after joins;
/// resolution matches on the unqualified suffix when unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names.
    pub fn new(columns: Vec<String>) -> Self {
        Schema { columns }
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolves a (possibly qualified) column reference to an index.
    ///
    /// Resolution order: exact match, then unique suffix match on the
    /// unqualified name (`runtime` finds `t.runtime` when only one table has
    /// a `runtime` column). Ambiguity and misses produce
    /// [`QueryError::UnknownColumn`].
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            return Ok(i);
        }
        // Suffix match: "col" matches "tbl.col".
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.rsplit('.')
                    .next()
                    .is_some_and(|last| last.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(QueryError::UnknownColumn(name.to_string())),
            _ => Err(QueryError::UnknownColumn(format!(
                "{name} is ambiguous (candidates: {})",
                matches
                    .iter()
                    .map(|&i| self.columns[i].as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }

    /// Prefixes every column with `alias.` (stripping any previous
    /// qualifier), used when a table enters a join scope.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let base = c.rsplit('.').next().unwrap_or(c);
                    format!("{alias}.{base}")
                })
                .collect(),
        }
    }
}

/// An in-memory table: schema plus rows of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn empty(columns: &[&str]) -> Self {
        Table {
            schema: Schema::new(columns.iter().map(|s| s.to_string()).collect()),
            rows: Vec::new(),
        }
    }

    /// Creates a table from rows.
    ///
    /// # Panics
    /// Panics if any row width differs from the column count.
    pub fn from_rows(columns: &[&str], rows: Vec<Vec<Value>>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), columns.len(), "row width mismatch");
        }
        Table {
            schema: Schema::new(columns.iter().map(|s| s.to_string()).collect()),
            rows,
        }
    }

    /// Creates a table taking ownership of schema and rows (internal fast
    /// path for the executor).
    pub fn from_parts(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Table { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Consumes the table into its rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Extracts a column by name as a value vector.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let i = self.schema.resolve(name)?;
        Ok(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// Extracts a column as f64s; non-numeric / NULL entries become NaN.
    pub fn numeric_column(&self, name: &str) -> Result<Vec<f64>> {
        let i = self.schema.resolve(name)?;
        Ok(self
            .rows
            .iter()
            .map(|r| r[i].as_f64().unwrap_or(f64::NAN))
            .collect())
    }

    /// Renders the table as an aligned-text report (first `max_rows` rows).
    pub fn render(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.schema.columns().iter().map(String::len).collect();
        let shown = self.rows.iter().take(max_rows);
        let rendered: Vec<Vec<String>> = shown
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.schema.columns().iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_exact_and_suffix() {
        let s = Schema::new(vec!["a.ts".into(), "b.ts".into(), "a.v".into()]);
        assert_eq!(s.resolve("a.ts").unwrap(), 0);
        assert_eq!(s.resolve("v").unwrap(), 2);
        assert!(matches!(s.resolve("ts"), Err(QueryError::UnknownColumn(_))));
        assert!(matches!(s.resolve("nope"), Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = Schema::new(vec!["Timestamp".into()]);
        assert_eq!(s.resolve("timestamp").unwrap(), 0);
        assert_eq!(s.resolve("TIMESTAMP").unwrap(), 0);
    }

    #[test]
    fn qualify_strips_old_prefix() {
        let s = Schema::new(vec!["old.v".into(), "w".into()]);
        let q = s.qualified("t");
        assert_eq!(q.columns(), &["t.v".to_string(), "t.w".to_string()]);
    }

    #[test]
    fn table_round_trip() {
        let t = Table::from_rows(
            &["ts", "v"],
            vec![
                vec![Value::Int(0), Value::Float(1.0)],
                vec![Value::Int(1), Value::Float(2.0)],
            ],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.column("v").unwrap(), vec![Value::Float(1.0), Value::Float(2.0)]);
        assert_eq!(t.numeric_column("ts").unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn numeric_column_nan_for_strings() {
        let t = Table::from_rows(&["x"], vec![vec![Value::str("abc")], vec![Value::Null]]);
        let v = t.numeric_column("x").unwrap();
        assert!(v[0].is_nan() && v[1].is_nan());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut t = Table::empty(&["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn render_truncates() {
        let t = Table::from_rows(
            &["n"],
            (0..5).map(|i| vec![Value::Int(i)]).collect(),
        );
        let s = t.render(2);
        assert!(s.contains("3 more rows"));
    }
}
