//! Tables: named, typed column vectors with a row-compatibility shim.
//!
//! Physically a [`Table`] is columnar — one [`Column`] per schema entry —
//! which is what the vectorized executor operates on. The row-oriented
//! views (`rows()`, `into_rows()`) that the rest of the workspace and the
//! retained naive reference executor use are served by a lazily
//! materialized cache, so purely columnar pipelines never pay for row
//! construction.

use explainit_sync::{LockClass, OnceLock};

use crate::column::Column;
use crate::value::Value;

/// The lazily materialized row-compat shim; init only walks this table's
/// own columns, so nothing nests inside it.
static TABLE_ROWS: LockClass = LockClass::new("query.table.rows", 34);
use crate::{QueryError, Result};

/// Column names of a table. Names may be qualified (`t.col`) after joins;
/// resolution matches on the unqualified suffix when unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names.
    pub fn new(columns: Vec<String>) -> Self {
        Schema { columns }
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolves a (possibly qualified) column reference to an index.
    ///
    /// Resolution order: exact match, then unique suffix match on the
    /// unqualified name (`runtime` finds `t.runtime` when only one table has
    /// a `runtime` column). Ambiguity and misses produce
    /// [`QueryError::UnknownColumn`].
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            return Ok(i);
        }
        // Suffix match: "col" matches "tbl.col".
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.rsplit('.').next().is_some_and(|last| last.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => {
                let near = self.near_misses(name);
                if near.is_empty() {
                    Err(QueryError::UnknownColumn(name.to_string()))
                } else {
                    Err(QueryError::UnknownColumn(format!(
                        "{name} (did you mean {}?)",
                        near.join(" or ")
                    )))
                }
            }
            _ => Err(QueryError::UnknownColumn(format!(
                "{name} is ambiguous (candidates: {})",
                matches.iter().map(|&i| self.columns[i].as_str()).collect::<Vec<_>>().join(", ")
            ))),
        }
    }

    /// Plausible intended columns for a name that failed to resolve: both
    /// the qualified names and their unqualified suffixes are considered,
    /// matched by small edit distance (scaled to the name's length) or by
    /// one being a prefix of the other. At most three, closest first.
    fn near_misses(&self, name: &str) -> Vec<String> {
        let budget = match name.len() {
            0..=3 => 1,
            _ => 2,
        };
        let target = name.to_ascii_lowercase();
        let mut scored: Vec<(usize, &String)> = self
            .columns
            .iter()
            .filter_map(|col| {
                let candidates = [col.as_str(), col.rsplit('.').next().unwrap_or(col)];
                candidates
                    .iter()
                    .filter_map(|c| {
                        let c = c.to_ascii_lowercase();
                        if target.len().min(c.len()) >= 3
                            && (c.starts_with(&target) || target.starts_with(&c))
                        {
                            return Some(1);
                        }
                        let d = edit_distance(&target, &c);
                        (d <= budget).then_some(d)
                    })
                    .min()
                    .map(|d| (d, col))
            })
            .collect();
        scored.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
        scored.into_iter().take(3).map(|(_, c)| c.clone()).collect()
    }

    /// Prefixes every column with `alias.` (stripping any previous
    /// qualifier), used when a table enters a join scope.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let base = c.rsplit('.').next().unwrap_or(c);
                    format!("{alias}.{base}")
                })
                .collect(),
        }
    }
}

/// Levenshtein distance over bytes (column names are ASCII in practice).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// An in-memory table: schema plus typed value columns.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    /// Explicit row count: a table can have rows but no columns
    /// (`SELECT 1`-style constant queries start from one empty row).
    len: usize,
    /// Lazily materialized row view (the row-compat shim).
    row_cache: OnceLock<Vec<Vec<Value>>>,
}

impl Default for Table {
    fn default() -> Self {
        Table {
            schema: Schema::default(),
            columns: Vec::new(),
            len: 0,
            row_cache: OnceLock::new(&TABLE_ROWS),
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.len == other.len && self.columns == other.columns
    }
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn empty(columns: &[&str]) -> Self {
        Table {
            schema: Schema::new(columns.iter().map(|s| s.to_string()).collect()),
            columns: columns.iter().map(|_| Column::empty()).collect(),
            len: 0,
            row_cache: OnceLock::new(&TABLE_ROWS),
        }
    }

    /// Creates a table from rows.
    ///
    /// # Panics
    /// Panics if any row width differs from the column count.
    pub fn from_rows(columns: &[&str], rows: Vec<Vec<Value>>) -> Self {
        let schema = Schema::new(columns.iter().map(|s| s.to_string()).collect());
        Table::from_parts(schema, rows)
    }

    /// Creates a table taking ownership of schema and rows (the row-era
    /// constructor, still used by the naive reference executor).
    ///
    /// # Panics
    /// Panics if any row width differs from the schema width.
    pub fn from_parts(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        let width = schema.len();
        let len = rows.len();
        let mut per_column: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(len)).collect();
        for row in &rows {
            assert_eq!(row.len(), width, "row width mismatch");
            for (acc, v) in per_column.iter_mut().zip(row.iter()) {
                acc.push(v.clone());
            }
        }
        let columns = per_column.into_iter().map(Column::from_values).collect();
        let row_cache = OnceLock::new(&TABLE_ROWS);
        let _ = row_cache.set(rows); // seed the shim: we already own the rows
        Table { schema, columns, len, row_cache }
    }

    /// Creates a table directly from columns (the columnar fast path).
    ///
    /// # Panics
    /// Panics if column lengths disagree or the count differs from the
    /// schema width.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let len = columns.first().map_or(0, Column::len);
        assert!(columns.iter().all(|c| c.len() == len), "column length mismatch");
        Table { schema, columns, len, row_cache: OnceLock::new(&TABLE_ROWS) }
    }

    /// Creates a zero-column table with `len` (empty) rows — the input of a
    /// constant `SELECT` without FROM.
    pub fn unit(len: usize) -> Self {
        Table {
            schema: Schema::default(),
            columns: Vec::new(),
            len,
            row_cache: OnceLock::new(&TABLE_ROWS),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Decomposes into `(schema, columns, len)` for operator pipelines.
    pub(crate) fn into_columnar_parts(self) -> (Schema, Vec<Column>, usize) {
        (self.schema, self.columns, self.len)
    }

    /// Rebuilds a table from operator output without a width-zero length
    /// guess (zero-column tables keep an explicit row count).
    pub(crate) fn from_columnar_parts(schema: Schema, columns: Vec<Column>, len: usize) -> Table {
        debug_assert_eq!(schema.len(), columns.len());
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Table { schema, columns, len, row_cache: OnceLock::new(&TABLE_ROWS) }
    }

    /// Replaces the schema (a pure rename — used by join-scope
    /// qualification).
    ///
    /// # Panics
    /// Panics if the new schema's width differs.
    pub(crate) fn with_schema(mut self, schema: Schema) -> Table {
        assert_eq!(schema.len(), self.schema.len(), "rename must preserve width");
        self.schema = schema;
        self
    }

    /// Keeps only the first `n` rows.
    pub(crate) fn truncated(mut self, n: usize) -> Table {
        if n >= self.len {
            return self;
        }
        for c in &mut self.columns {
            c.truncate(n);
        }
        self.len = n;
        self.row_cache = OnceLock::new(&TABLE_ROWS);
        self
    }

    /// The physical columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One physical column by index.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The rows (materialized on first use and cached).
    pub fn rows(&self) -> &[Vec<Value>] {
        self.row_cache.get_or_init(|| {
            (0..self.len).map(|r| self.columns.iter().map(|c| c.get(r)).collect()).collect()
        })
    }

    /// Consumes the table into its rows.
    pub fn into_rows(mut self) -> Vec<Vec<Value>> {
        self.rows();
        self.row_cache.take().expect("cache was just filled") // invariant: filled by the get_or_init above
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        self.len += 1;
        self.row_cache = OnceLock::new(&TABLE_ROWS); // invalidate the shim
    }

    /// Extracts a column by name as a value vector.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let i = self.schema.resolve(name)?;
        Ok(self.columns[i].iter_values().collect())
    }

    /// Extracts a column as f64s; non-numeric / NULL entries become NaN.
    /// Dense `Float`/`Int` columns convert without touching [`Value`]s.
    pub fn numeric_column(&self, name: &str) -> Result<Vec<f64>> {
        let i = self.schema.resolve(name)?;
        Ok(self.columns[i].to_f64_lossy())
    }

    /// Renders the table as an aligned-text report (first `max_rows` rows).
    pub fn render(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.schema.columns().iter().map(String::len).collect();
        let shown = self.len.min(max_rows);
        let rendered: Vec<Vec<String>> =
            (0..shown).map(|r| self.columns.iter().map(|c| c.get(r).render()).collect()).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.schema.columns().iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.len > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.len - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_exact_and_suffix() {
        let s = Schema::new(vec!["a.ts".into(), "b.ts".into(), "a.v".into()]);
        assert_eq!(s.resolve("a.ts").unwrap(), 0);
        assert_eq!(s.resolve("v").unwrap(), 2);
        assert!(matches!(s.resolve("ts"), Err(QueryError::UnknownColumn(_))));
        assert!(matches!(s.resolve("nope"), Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn resolve_miss_suggests_near_columns() {
        let s = Schema::new(vec!["timestamp".into(), "metric_name".into(), "value".into()]);
        // One transposition away.
        let err = s.resolve("vlaue").unwrap_err();
        assert!(
            matches!(&err, QueryError::UnknownColumn(m) if m.contains("did you mean value?")),
            "{err}"
        );
        // Prefix of a real column.
        let err = s.resolve("metric").unwrap_err();
        assert!(matches!(&err, QueryError::UnknownColumn(m) if m.contains("metric_name")), "{err}");
        // Qualified candidates surface their full names.
        let q = Schema::new(vec!["t.runtime".into(), "u.w".into()]);
        let err = q.resolve("runtmie").unwrap_err();
        assert!(matches!(&err, QueryError::UnknownColumn(m) if m.contains("t.runtime")), "{err}");
        // Nothing close: the bare name, no suggestion clause.
        let err = s.resolve("zzz").unwrap_err();
        assert!(matches!(&err, QueryError::UnknownColumn(m) if m == "zzz"), "{err}");
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = Schema::new(vec!["Timestamp".into()]);
        assert_eq!(s.resolve("timestamp").unwrap(), 0);
        assert_eq!(s.resolve("TIMESTAMP").unwrap(), 0);
    }

    #[test]
    fn qualify_strips_old_prefix() {
        let s = Schema::new(vec!["old.v".into(), "w".into()]);
        let q = s.qualified("t");
        assert_eq!(q.columns(), &["t.v".to_string(), "t.w".to_string()]);
    }

    #[test]
    fn table_round_trip() {
        let t = Table::from_rows(
            &["ts", "v"],
            vec![vec![Value::Int(0), Value::Float(1.0)], vec![Value::Int(1), Value::Float(2.0)]],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.column("v").unwrap(), vec![Value::Float(1.0), Value::Float(2.0)]);
        assert_eq!(t.numeric_column("ts").unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn homogeneous_rows_become_typed_columns() {
        let t = Table::from_rows(
            &["ts", "v", "host"],
            vec![
                vec![Value::Int(0), Value::Float(1.0), Value::str("a")],
                vec![Value::Int(1), Value::Float(2.0), Value::str("b")],
            ],
        );
        assert!(matches!(t.column_at(0), Column::Int(_)));
        assert!(matches!(t.column_at(1), Column::Float(_)));
        assert!(matches!(t.column_at(2), Column::Str(_)));
    }

    #[test]
    fn columnar_construction_and_row_shim() {
        let t = Table::from_columns(
            Schema::new(vec!["ts".into(), "v".into()]),
            vec![Column::Int(vec![0, 1]), Column::Float(vec![1.0, 2.0])],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1], vec![Value::Int(1), Value::Float(2.0)]);
        assert_eq!(t.into_rows().len(), 2);
    }

    #[test]
    fn push_row_invalidates_row_cache() {
        let mut t = Table::from_rows(&["x"], vec![vec![Value::Int(1)]]);
        assert_eq!(t.rows().len(), 1);
        t.push_row(vec![Value::Int(2)]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[1][0], Value::Int(2));
    }

    #[test]
    fn numeric_column_nan_for_strings() {
        let t = Table::from_rows(&["x"], vec![vec![Value::str("abc")], vec![Value::Null]]);
        let v = t.numeric_column("x").unwrap();
        assert!(v[0].is_nan() && v[1].is_nan());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut t = Table::empty(&["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn unit_table_has_rows_without_columns() {
        let t = Table::unit(1);
        assert_eq!(t.len(), 1);
        assert!(t.schema().is_empty());
        assert_eq!(t.rows(), &[Vec::<Value>::new()]);
    }

    #[test]
    fn render_truncates() {
        let t = Table::from_rows(&["n"], (0..5).map(|i| vec![Value::Int(i)]).collect());
        let s = t.render(2);
        assert!(s.contains("3 more rows"));
    }
}
