//! Custom source lints for contracts `rustc`/`clippy` cannot express,
//! run as a CI gate (`cargo run -p explainit-lint`):
//!
//! 1. **No `as f64` in the exactness-critical kernels** — the typed kernel
//!    and vectorized-evaluator paths compare `i64` values exactly; casting
//!    through `f64` silently rounds values above 2^53. Flagged in
//!    `crates/query/src/kernel.rs` and `crates/query/src/veval.rs` unless
//!    the line carries a `lint: allow as f64` marker explaining why the
//!    cast is exact (or deliberately widening).
//! 2. **No `unwrap()`/`expect()` in query library code or anywhere in
//!    the store** — outside `#[cfg(test)]` modules, every potential panic
//!    site in `crates/query/src` and `crates/tsdb/src` (all of it, the
//!    WAL/segment I/O paths included) must either be converted to the
//!    crate's error type (`QueryError` / `StorageError`) or justified
//!    with an `// invariant:` comment on the same or a nearby preceding
//!    line. A panic in the storage layer is worse than an error: it can
//!    tear a WAL append or leave a half-written segment behind.
//! 3. **`#![forbid(unsafe_code)]` everywhere** — every crate root
//!    (`src/lib.rs`) in the workspace must carry the attribute.
//! 4. **No raw `std::sync::{Mutex, RwLock}` outside `crates/sync`** —
//!    every lock goes through the `explainit-sync` wrappers so it gets a
//!    `LockClass` rank and lockdep order checking; naming the std types
//!    anywhere else needs a `lint: allow raw lock` marker explaining why
//!    the lock must stay untracked.
//!
//! The binary prints one `file:line: message` per finding and exits
//! non-zero when any rule fires. It reads sources directly and uses only
//! the standard library, so it builds offline and never depends on
//! nightly lint plumbing.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();

    lint_as_f64(&root, &mut findings);
    lint_panics(&root, &mut findings);
    lint_forbid_unsafe(&root, &mut findings);
    lint_raw_locks(&root, &mut findings);

    if findings.is_empty() {
        println!("lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/lint")
        .to_path_buf()
}

fn read(path: &Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => panic!("lint: cannot read {}: {e}", path.display()),
    }
}

/// Rule 1: `as f64` in the exactness-critical files.
fn lint_as_f64(root: &Path, findings: &mut Vec<String>) {
    for file in ["crates/query/src/kernel.rs", "crates/query/src/veval.rs"] {
        let path = root.join(file);
        let source = read(&path);
        for (lineno, raw, code) in library_code_lines(&source) {
            if code.contains(" as f64") && !raw.contains("lint: allow as f64") {
                findings.push(format!(
                    "{file}:{lineno}: `as f64` in an exactness-critical kernel \
                     (values above 2^53 round; compare exactly or mark `lint: allow as f64`)"
                ));
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Rule 2: unjustified `unwrap()`/`expect()` in query library code and
/// anywhere in the store (the WAL/segment/pager I/O paths included).
fn lint_panics(root: &Path, findings: &mut Vec<String>) {
    for (dir, err_ty) in [("crates/query/src", "QueryError"), ("crates/tsdb/src", "StorageError")] {
        for path in rust_files_under(&root.join(dir)) {
            let source = read(&path);
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            let lines: Vec<(usize, String, String)> = library_code_lines(&source).collect();
            for (i, (lineno, _, code)) in lines.iter().enumerate() {
                if !code.contains(".unwrap()") && !code.contains(".expect(") {
                    continue;
                }
                // Escape hatch: an `// invariant:` justification on the
                // same line or within the two preceding source lines.
                let justified = lines[i.saturating_sub(2)..=i]
                    .iter()
                    .any(|(_, raw, _)| raw.contains("invariant:"));
                if !justified {
                    findings.push(format!(
                        "{rel}:{lineno}: unwrap/expect in library code \
                         (return a {err_ty} or justify with an `// invariant:` comment)"
                    ));
                }
            }
        }
    }
}

/// Rule 3: every crate root forbids `unsafe`.
fn lint_forbid_unsafe(root: &Path, findings: &mut Vec<String>) {
    let mut roots = vec![root.join("src/lib.rs")];
    for crates_dir in [root.join("crates"), root.join("crates/devstubs")] {
        let Ok(entries) = std::fs::read_dir(&crates_dir) else { continue };
        for entry in entries.filter_map(|e| e.ok()) {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    for lib in roots {
        let source = read(&lib);
        if !source.contains("#![forbid(unsafe_code)]") {
            let rel = lib.strip_prefix(root).unwrap_or(&lib).display();
            findings.push(format!("{rel}:1: crate root is missing `#![forbid(unsafe_code)]`"));
        }
    }
}

/// True when `word` occurs in `code` as a whole identifier (not as a
/// prefix of a longer one, so `Mutex` does not match `MutexGuard`).
fn has_word(code: &str, word: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !ident(code[..start].chars().next_back().unwrap());
        let after_ok = !code[end..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Rule 4: raw `std::sync::{Mutex, RwLock}` outside `crates/sync`. Both
/// fully-qualified uses and `use std::sync::…` imports of the types are
/// flagged, whole-file (test modules included — tests run under lockdep
/// too, and a raw lock there escapes the analysis just the same).
fn lint_raw_locks(root: &Path, findings: &mut Vec<String>) {
    let mut dirs = vec![root.join("src"), root.join("tests")];
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() && path.file_name().is_some_and(|n| n != "sync") {
            dirs.push(path);
        }
    }
    for dir in dirs {
        for path in rust_files_under(&dir) {
            let source = read(&path);
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            let stripped = strip_comments_and_strings(&source);
            for ((i, code), raw) in stripped.iter().enumerate().zip(source.lines()) {
                if raw.contains("lint: allow raw lock") {
                    continue;
                }
                let qualified = (code.contains("std::sync::Mutex")
                    && !code.contains("std::sync::MutexGuard"))
                    || (code.contains("std::sync::RwLock")
                        && !code.contains("std::sync::RwLockReadGuard")
                        && !code.contains("std::sync::RwLockWriteGuard"));
                let imported = code.contains("use std::sync::")
                    && (has_word(code, "Mutex") || has_word(code, "RwLock"));
                if qualified || imported {
                    findings.push(format!(
                        "{rel}:{}: raw std::sync lock outside crates/sync \
                         (use the explainit-sync wrappers with a LockClass, \
                         or mark `lint: allow raw lock`)",
                        i + 1
                    ));
                }
            }
        }
    }
}

/// Yields `(line number, raw line, comment-and-string-stripped line)` for
/// the library region of a source file — everything before the first
/// `#[cfg(test)]` line (test modules sit at the end of every file in this
/// workspace, which the assertion below keeps honest).
fn library_code_lines(source: &str) -> impl Iterator<Item = (usize, String, String)> + '_ {
    let test_start = source
        .lines()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(usize::MAX);
    strip_comments_and_strings(source)
        .into_iter()
        .enumerate()
        .zip(source.lines())
        .take_while(move |((i, _), _)| *i < test_start)
        .map(|((i, code), raw)| (i + 1, raw.to_string(), code))
}

/// Replaces comments and string-literal contents with spaces, line by
/// line, so lints match only real code. Handles `//` line comments,
/// `/* */` block comments (nesting ignored — unused in this workspace)
/// and double-quoted strings with backslash escapes.
fn strip_comments_and_strings(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment,
        Str,
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    let mut line = String::new();
    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push(std::mem::take(&mut line));
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    state = State::LineComment;
                    line.push(' ');
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    state = State::BlockComment;
                    line.push_str("  ");
                }
                '"' => {
                    state = State::Str;
                    line.push('"');
                }
                other => line.push(other),
            },
            State::LineComment => line.push(' '),
            State::BlockComment => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    state = State::Code;
                    line.push_str("  ");
                } else {
                    line.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    chars.next();
                    line.push_str("  ");
                }
                '"' => {
                    state = State::Code;
                    line.push('"');
                }
                _ => line.push(' '),
            },
        }
    }
    if !line.is_empty() {
        out.push(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_blanks_comments_and_strings() {
        let src = "let x = \"a // not a comment\"; // real comment\nas f64\n";
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped[0].contains("not a comment"));
        assert!(!stripped[0].contains("real comment"));
        assert!(stripped[0].contains("let x = "));
        assert_eq!(stripped[1], "as f64");
    }

    #[test]
    fn library_region_stops_at_test_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() { x.unwrap(); } }\n";
        let lines: Vec<_> = library_code_lines(src).collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, 1);
    }

    #[test]
    fn whole_tree_is_clean() {
        let root = repo_root();
        let mut findings = Vec::new();
        lint_as_f64(&root, &mut findings);
        lint_panics(&root, &mut findings);
        lint_forbid_unsafe(&root, &mut findings);
        lint_raw_locks(&root, &mut findings);
        assert!(findings.is_empty(), "lint findings:\n{}", findings.join("\n"));
    }
}
