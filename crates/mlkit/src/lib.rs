//! Regression models, cross-validation and random projections.
//!
//! This crate is the stand-in for the scikit-learn routines the paper's
//! implementation calls into (§4): ordinary least squares, multi-target
//! ridge regression (primal and kernel/dual form for the p ≫ n regime),
//! lasso via coordinate descent, time-series-aware k-fold cross-validation
//! with a λ grid search, and Gaussian random projections.
//!
//! The central entry point for scoring is [`cv::cross_validated_r2`], which
//! implements §3.5's protocol exactly: k = 5 contiguous folds whose
//! validation time ranges never overlap the training ranges, a grid search
//! over the ridge penalty, and an out-of-sample r² ("adjusted r²" in the
//! paper's sense) as the returned score.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // indexed loops read naturally in these math kernels
pub mod cv;
pub mod lasso;
pub mod ols;
pub mod projection;
pub mod ridge;
pub mod standardize;

pub use cv::{cross_validated_r2, CvConfig, TimeSeriesSplit};
pub use lasso::LassoModel;
pub use ols::OlsModel;
pub use projection::GaussianProjection;
pub use ridge::RidgeModel;
pub use standardize::Standardizer;

/// Errors surfaced by model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Design/target row counts differ.
    RowMismatch {
        /// Rows in the design matrix.
        x_rows: usize,
        /// Rows in the target matrix.
        y_rows: usize,
    },
    /// Not enough rows to fit or cross-validate.
    TooFewRows {
        /// Rows available.
        rows: usize,
        /// Rows required.
        needed: usize,
    },
    /// The design matrix contains NaN or infinite entries.
    NonFiniteInput,
    /// An inner linear solve failed (singular / not positive definite).
    SolveFailed(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::RowMismatch { x_rows, y_rows } => {
                write!(f, "design has {x_rows} rows but target has {y_rows}")
            }
            MlError::TooFewRows { rows, needed } => {
                write!(f, "need at least {needed} rows, got {rows}")
            }
            MlError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            MlError::SolveFailed(msg) => write!(f, "linear solve failed: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Result alias for model fitting.
pub type Result<T> = std::result::Result<T, MlError>;
