//! Column standardisation (zero mean, unit variance) fitted on training
//! data and applied to held-out data.
//!
//! Ridge and lasso penalties are scale-sensitive, so every penalised fit in
//! the scoring path standardises its design on the training fold only —
//! applying training statistics to the validation fold keeps the
//! cross-validation honest about unseen data.

use explainit_linalg::Matrix;

/// Per-column centering/scaling parameters learned from a training matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns means and (population) standard deviations per column.
    /// Constant columns get `std = 0` and are centred but not scaled.
    pub fn fit(x: &Matrix) -> Self {
        Standardizer { means: x.column_means(), stds: x.column_stds() }
    }

    /// Column means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations captured at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the transform, returning a new matrix.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.means.len(), "standardizer column mismatch");
        let mut out = x.clone();
        self.transform_in_place(&mut out);
        out
    }

    /// Applies the transform in place.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform_in_place(&self, x: &mut Matrix) {
        assert_eq!(x.ncols(), self.means.len(), "standardizer column mismatch");
        let cols = x.ncols();
        for i in 0..x.nrows() {
            let row = x.row_mut(i);
            for j in 0..cols {
                row[j] -= self.means[j];
                if self.stds[j] > 0.0 {
                    row[j] /= self.stds[j];
                }
            }
        }
    }

    /// Convenience: fit on `x` and return the transformed copy.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let s = Standardizer::fit(x);
        let t = s.transform(x);
        (s, t)
    }

    /// Undoes the transform for predictions expressed in standardised target
    /// space: `y_raw = y_std * std + mean` column-wise.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn inverse_transform_in_place(&self, y: &mut Matrix) {
        assert_eq!(y.ncols(), self.means.len(), "standardizer column mismatch");
        let cols = y.ncols();
        for i in 0..y.nrows() {
            let row = y.row_mut(i);
            for j in 0..cols {
                if self.stds[j] > 0.0 {
                    row[j] *= self.stds[j];
                }
                row[j] += self.means[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[[1.0, 100.0], [2.0, 200.0], [3.0, 300.0]]);
        let (_, t) = Standardizer::fit_transform(&x);
        let means = t.column_means();
        let stds = t.column_stds();
        for j in 0..2 {
            assert!(means[j].abs() < 1e-12);
            assert!((stds[j] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_not_scaled() {
        let x = Matrix::from_rows(&[[5.0, 1.0], [5.0, 2.0]]);
        let (s, t) = Standardizer::fit_transform(&x);
        assert_eq!(s.stds()[0], 0.0);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 0)], 0.0);
    }

    #[test]
    fn train_statistics_applied_to_test() {
        let train = Matrix::from_rows(&[[0.0], [2.0]]); // mean 1, std 1
        let s = Standardizer::fit(&train);
        let test = Matrix::from_rows(&[[3.0]]);
        let t = s.transform(&test);
        assert!((t[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let x = Matrix::from_rows(&[[1.0, -3.0], [4.0, 9.0], [2.5, 0.0]]);
        let (s, mut t) = Standardizer::fit_transform(&x);
        s.inverse_transform_in_place(&mut t);
        for i in 0..3 {
            for j in 0..2 {
                assert!((t[(i, j)] - x[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn rejects_wrong_width() {
        let s = Standardizer::fit(&Matrix::zeros(2, 2));
        s.transform(&Matrix::zeros(2, 3));
    }
}
