//! Multi-target ridge regression, closed form.
//!
//! The paper's joint scorer ("L2") fits `min ‖Y − Xβ‖² + λ‖β‖²`. Two solve
//! paths are provided and selected automatically by shape:
//!
//! * **primal** — factor `X^T X + λI` (p × p) when `p <= n`;
//! * **dual / kernel** — `β = X^T (X X^T + λI)^{-1} Y` (n × n) when
//!   `p > n`, the common regime for the paper's big feature families
//!   (F up to 80 000 with T ≈ 1 440–2 880 minutes).
//!
//! Fits centre X and Y (intercept handling) and standardise X columns so the
//! penalty treats features symmetrically, matching scikit-learn's
//! `Ridge(normalize=...)`-era behaviour the paper relied on.

use explainit_linalg::{Cholesky, Matrix};

use crate::standardize::Standardizer;
use crate::{MlError, Result};

/// A fitted multi-target ridge model.
#[derive(Debug, Clone)]
pub struct RidgeModel {
    /// Coefficients in the *standardised* design space, `p × m`.
    beta_std: Matrix,
    /// Standardiser for the design.
    x_standardizer: Standardizer,
    /// Target column means (intercept in standardised space).
    y_means: Vec<f64>,
    lambda: f64,
}

impl RidgeModel {
    /// Fits ridge regression with penalty `lambda >= 0`.
    ///
    /// `lambda = 0` is permitted but may fail with
    /// [`MlError::SolveFailed`] on singular designs; scoring always uses
    /// positive penalties.
    pub fn fit(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Self> {
        if x.nrows() != y.nrows() {
            return Err(MlError::RowMismatch { x_rows: x.nrows(), y_rows: y.nrows() });
        }
        if x.nrows() < 2 {
            return Err(MlError::TooFewRows { rows: x.nrows(), needed: 2 });
        }
        if x.has_non_finite() || y.has_non_finite() {
            return Err(MlError::NonFiniteInput);
        }
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be non-negative");
        let (x_standardizer, xs) = Standardizer::fit_transform(x);
        let y_means = y.column_means();
        let mut yc = y.clone();
        yc.center_columns_in_place(&y_means);

        let (n, p) = xs.shape();
        let beta_std = if p <= n {
            // Primal: (X^T X + λI) β = X^T Y.
            let mut gram = xs.xtx();
            gram.add_diagonal(lambda.max(0.0));
            let chol = Cholesky::factor(&gram).map_err(|e| MlError::SolveFailed(e.to_string()))?;
            let xty = xs.xt_mul(&yc).expect("shapes checked");
            chol.solve(&xty).map_err(|e| MlError::SolveFailed(e.to_string()))?
        } else {
            // Dual: β = X^T (X X^T + λI)^{-1} Y.
            let mut k = xs.xxt();
            k.add_diagonal(lambda.max(1e-12));
            let chol = Cholesky::factor(&k).map_err(|e| MlError::SolveFailed(e.to_string()))?;
            let alpha = chol.solve(&yc).map_err(|e| MlError::SolveFailed(e.to_string()))?;
            xs.xt_mul(&alpha).expect("shapes checked")
        };
        Ok(RidgeModel { beta_std, x_standardizer, y_means, lambda })
    }

    /// The penalty this model was fitted with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Coefficients in standardised design space (`p × m`).
    pub fn coefficients_std(&self) -> &Matrix {
        &self.beta_std
    }

    /// Squared Frobenius norm of the coefficients — used by tests to verify
    /// shrinkage monotonicity in λ.
    pub fn coefficient_norm_sq(&self) -> f64 {
        let f = self.beta_std.frobenius_norm();
        f * f
    }

    /// Predicts targets for new rows.
    ///
    /// # Panics
    /// Panics if the column count differs from the training design.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let xs = self.x_standardizer.transform(x);
        let mut out = xs.matmul(&self.beta_std).expect("shape checked");
        for i in 0..out.nrows() {
            let row = out.row_mut(i);
            for (v, &m) in row.iter_mut().zip(self.y_means.iter()) {
                *v += m;
            }
        }
        out
    }

    /// Residuals `Y - Ŷ`.
    pub fn residuals(&self, x: &Matrix, y: &Matrix) -> Matrix {
        y.sub(&self.predict(x)).expect("prediction shape matches target")
    }

    /// Out-of-sample r² on held-out data, averaged over target columns.
    ///
    /// `baseline_means` are the *training* target means (§3.5: the baseline
    /// model predicts the training mean). Columns whose held-out variance is
    /// zero are skipped.
    pub fn r2_out_of_sample(&self, x: &Matrix, y: &Matrix, baseline_means: &[f64]) -> f64 {
        let pred = self.predict(x);
        r2_columns_mean(y, &pred, baseline_means)
    }
}

/// Precomputed sufficient statistics for fitting ridge models at many
/// penalties on the same training data.
///
/// The grid search of §3.5 fits `L` penalties per fold; the Gram matrix
/// (`X^T X` or `X X^T`) and `X^T Y` do not depend on λ, so computing them
/// once per fold and re-factorising per λ removes the dominant cost of the
/// grid (the paper's "optimisations deferred to the runtime system", §4.2).
#[derive(Debug, Clone)]
pub struct RidgePrecomputed {
    xs: Matrix,
    x_standardizer: Standardizer,
    y_means: Vec<f64>,
    /// Primal path: `X^T X` and `X^T Y`; dual path: `X X^T` and centred Y.
    gram: Matrix,
    rhs: Matrix,
    primal: bool,
}

impl RidgePrecomputed {
    /// Builds the λ-independent statistics.
    pub fn new(x: &Matrix, y: &Matrix) -> Result<Self> {
        if x.nrows() != y.nrows() {
            return Err(MlError::RowMismatch { x_rows: x.nrows(), y_rows: y.nrows() });
        }
        if x.nrows() < 2 {
            return Err(MlError::TooFewRows { rows: x.nrows(), needed: 2 });
        }
        if x.has_non_finite() || y.has_non_finite() {
            return Err(MlError::NonFiniteInput);
        }
        let (x_standardizer, xs) = Standardizer::fit_transform(x);
        let y_means = y.column_means();
        let mut yc = y.clone();
        yc.center_columns_in_place(&y_means);
        let (n, p) = xs.shape();
        let primal = p <= n;
        let (gram, rhs) = if primal {
            (xs.xtx(), xs.xt_mul(&yc).expect("shapes checked"))
        } else {
            (xs.xxt(), yc)
        };
        Ok(RidgePrecomputed { xs, x_standardizer, y_means, gram, rhs, primal })
    }

    /// Fits a model at the given penalty, reusing the precomputed Gram.
    pub fn fit(&self, lambda: f64) -> Result<RidgeModel> {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be non-negative");
        let mut g = self.gram.clone();
        g.add_diagonal(if self.primal { lambda.max(0.0) } else { lambda.max(1e-12) });
        let chol = Cholesky::factor(&g).map_err(|e| MlError::SolveFailed(e.to_string()))?;
        let beta_std = if self.primal {
            chol.solve(&self.rhs).map_err(|e| MlError::SolveFailed(e.to_string()))?
        } else {
            let alpha = chol.solve(&self.rhs).map_err(|e| MlError::SolveFailed(e.to_string()))?;
            self.xs.xt_mul(&alpha).expect("shapes checked")
        };
        Ok(RidgeModel {
            beta_std,
            x_standardizer: self.x_standardizer.clone(),
            y_means: self.y_means.clone(),
            lambda,
        })
    }
}

/// Mean r² over target columns: `1 - RSS_j / TSS_j` with TSS around
/// `baseline_means[j]`; degenerate columns (TSS = 0) are skipped. Returns 0
/// when every column is degenerate.
pub fn r2_columns_mean(y: &Matrix, pred: &Matrix, baseline_means: &[f64]) -> f64 {
    assert_eq!(y.shape(), pred.shape(), "r2 shape mismatch");
    assert_eq!(y.ncols(), baseline_means.len(), "baseline length mismatch");
    let mut total = 0.0;
    let mut counted = 0usize;
    for j in 0..y.ncols() {
        let mut rss = 0.0;
        let mut tss = 0.0;
        for i in 0..y.nrows() {
            let e = y[(i, j)] - pred[(i, j)];
            rss += e * e;
            let d = y[(i, j)] - baseline_means[j];
            tss += d * d;
        }
        if tss > 0.0 {
            total += 1.0 - rss / tss;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Matrix) {
        // y = 3 x0 - 2 x1 + 1 with deterministic pseudo-noise.
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.7).sin();
            let b = (i as f64 * 0.3).cos();
            rows.push([a, b]);
            ys.push(3.0 * a - 2.0 * b + 1.0 + 0.01 * ((i * 7919 % 13) as f64 - 6.0));
        }
        (Matrix::from_rows(&rows), Matrix::column_vector(&ys))
    }

    #[test]
    fn small_lambda_recovers_signal() {
        let (x, y) = linear_data(200);
        let m = RidgeModel::fit(&x, &y, 1e-6).unwrap();
        let pred = m.predict(&x);
        let r2 = r2_columns_mean(&y, &pred, &y.column_means());
        assert!(r2 > 0.999, "r2 = {r2}");
    }

    #[test]
    fn shrinkage_monotone_in_lambda() {
        let (x, y) = linear_data(100);
        let mut prev = f64::INFINITY;
        for &l in &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let m = RidgeModel::fit(&x, &y, l).unwrap();
            let norm = m.coefficient_norm_sq();
            assert!(norm <= prev + 1e-9, "norm must shrink with lambda");
            prev = norm;
        }
    }

    #[test]
    fn huge_lambda_predicts_mean() {
        let (x, y) = linear_data(100);
        let m = RidgeModel::fit(&x, &y, 1e12).unwrap();
        let pred = m.predict(&x);
        let ymean = y.column_means()[0];
        for i in 0..pred.nrows() {
            assert!((pred[(i, 0)] - ymean).abs() < 1e-3);
        }
    }

    #[test]
    fn dual_path_matches_primal() {
        // p > n triggers the kernel path; verify it agrees with the primal
        // path on a square-ish problem by comparing predictions.
        let x_tall = Matrix::from_rows(&[
            [1.0, 0.2, -0.5],
            [0.3, -1.0, 0.8],
            [-0.7, 0.5, 0.1],
            [0.9, -0.3, -0.9],
            [0.0, 1.0, 0.4],
        ]);
        let y = Matrix::column_vector(&[1.0, -0.5, 0.2, 0.8, -0.1]);
        let primal = RidgeModel::fit(&x_tall, &y, 0.5).unwrap();
        // Wide version: transpose roles by padding with zero columns so p>n.
        let x_wide = x_tall.hcat(&Matrix::zeros(5, 10)).unwrap();
        let dual = RidgeModel::fit(&x_wide, &y, 0.5).unwrap();
        let p1 = primal.predict(&x_tall);
        let p2 = dual.predict(&x_wide);
        for i in 0..5 {
            assert!((p1[(i, 0)] - p2[(i, 0)]).abs() < 1e-8, "row {i}");
        }
    }

    #[test]
    fn p_much_larger_than_n_is_stable() {
        // 10 rows, 200 features; must not error and must shrink sensibly.
        let mut rows = Vec::new();
        for i in 0..10 {
            let row: Vec<f64> =
                (0..200).map(|j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5).collect();
            rows.push(row);
        }
        let x = Matrix::from_rows(&rows);
        let y = Matrix::column_vector(&(0..10).map(|i| i as f64).collect::<Vec<_>>());
        let m = RidgeModel::fit(&x, &y, 1.0).unwrap();
        let pred = m.predict(&x);
        assert!(!pred.has_non_finite());
    }

    #[test]
    fn constant_feature_is_harmless() {
        let x = Matrix::from_rows(&[[1.0, 7.0], [2.0, 7.0], [3.0, 7.0], [4.0, 7.0]]);
        let y = Matrix::column_vector(&[2.0, 4.0, 6.0, 8.0]);
        let m = RidgeModel::fit(&x, &y, 1e-6).unwrap();
        let pred = m.predict(&x);
        for i in 0..4 {
            assert!((pred[(i, 0)] - y[(i, 0)]).abs() < 1e-4);
        }
    }

    #[test]
    fn multi_target_prediction_shapes() {
        let (x, y1) = linear_data(50);
        let y = y1.hcat(&y1).unwrap();
        let m = RidgeModel::fit(&x, &y, 0.1).unwrap();
        let pred = m.predict(&x);
        assert_eq!(pred.shape(), (50, 2));
        // Identical targets get identical predictions.
        for i in 0..50 {
            assert!((pred[(i, 0)] - pred[(i, 1)]).abs() < 1e-10);
        }
    }

    #[test]
    fn error_cases() {
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(4, 1);
        assert!(matches!(RidgeModel::fit(&x, &y, 1.0), Err(MlError::RowMismatch { .. })));
        let x = Matrix::zeros(1, 2);
        let y = Matrix::zeros(1, 1);
        assert!(matches!(RidgeModel::fit(&x, &y, 1.0), Err(MlError::TooFewRows { .. })));
        let mut x = Matrix::zeros(4, 2);
        x[(0, 0)] = f64::INFINITY;
        let y = Matrix::zeros(4, 1);
        assert!(matches!(RidgeModel::fit(&x, &y, 1.0), Err(MlError::NonFiniteInput)));
    }

    #[test]
    fn precomputed_fit_matches_direct_fit() {
        let (x, y) = linear_data(80);
        let pre = RidgePrecomputed::new(&x, &y).unwrap();
        for &l in &[0.01, 1.0, 100.0] {
            let a = pre.fit(l).unwrap();
            let b = RidgeModel::fit(&x, &y, l).unwrap();
            let pa = a.predict(&x);
            let pb = b.predict(&x);
            for i in 0..x.nrows() {
                assert!((pa[(i, 0)] - pb[(i, 0)]).abs() < 1e-10, "λ={l} row {i}");
            }
        }
        // Dual path equivalence too.
        let x_wide = x.hcat(&Matrix::zeros(80, 100)).unwrap();
        let pre = RidgePrecomputed::new(&x_wide, &y).unwrap();
        let a = pre.fit(0.5).unwrap();
        let b = RidgeModel::fit(&x_wide, &y, 0.5).unwrap();
        let pa = a.predict(&x_wide);
        let pb = b.predict(&x_wide);
        for i in 0..80 {
            assert!((pa[(i, 0)] - pb[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_sample_r2_uses_training_baseline() {
        let (x, y) = linear_data(120);
        let x_train = x.row_range(0, 100);
        let y_train = y.row_range(0, 100);
        let x_test = x.row_range(100, 120);
        let y_test = y.row_range(100, 120);
        let m = RidgeModel::fit(&x_train, &y_train, 0.01).unwrap();
        let r2 = m.r2_out_of_sample(&x_test, &y_test, &y_train.column_means());
        assert!(r2 > 0.99, "r2 = {r2}");
    }
}
