//! Ordinary least squares via Householder QR.
//!
//! Used by the residual-regression conditional-independence procedure
//! (Appendix B) and by the Figure-12 null-distribution experiment. Fits with
//! an intercept by centring both sides, which is algebraically identical to
//! an explicit all-ones column but keeps the design well-conditioned.

use explainit_linalg::{Matrix, QrDecomposition};

use crate::{MlError, Result};

/// A fitted multi-target OLS model.
#[derive(Debug, Clone)]
pub struct OlsModel {
    /// Coefficients, `p × m` (one column per target).
    beta: Matrix,
    /// Intercepts per target.
    intercept: Vec<f64>,
    x_means: Vec<f64>,
}

impl OlsModel {
    /// Fits `Y ≈ X β + b` by least squares.
    ///
    /// Requires `n > p` rows; rank-deficient designs surface as
    /// [`MlError::SolveFailed`].
    pub fn fit(x: &Matrix, y: &Matrix) -> Result<Self> {
        if x.nrows() != y.nrows() {
            return Err(MlError::RowMismatch { x_rows: x.nrows(), y_rows: y.nrows() });
        }
        if x.nrows() <= x.ncols() {
            return Err(MlError::TooFewRows { rows: x.nrows(), needed: x.ncols() + 1 });
        }
        if x.has_non_finite() || y.has_non_finite() {
            return Err(MlError::NonFiniteInput);
        }
        let x_means = x.column_means();
        let y_means = y.column_means();
        let mut xc = x.clone();
        xc.center_columns_in_place(&x_means);
        let mut yc = y.clone();
        yc.center_columns_in_place(&y_means);
        let qr = QrDecomposition::factor(&xc).map_err(|e| MlError::SolveFailed(e.to_string()))?;
        let beta = qr.solve(&yc).map_err(|e| MlError::SolveFailed(e.to_string()))?;
        // intercept_j = mean(y_j) - mean(x) . beta_j
        let mut intercept = Vec::with_capacity(y.ncols());
        for j in 0..y.ncols() {
            let bcol = beta.column(j);
            let dot: f64 = x_means.iter().zip(bcol.iter()).map(|(&m, &b)| m * b).sum();
            intercept.push(y_means[j] - dot);
        }
        Ok(OlsModel { beta, intercept, x_means })
    }

    /// Coefficient matrix (`p × m`).
    pub fn coefficients(&self) -> &Matrix {
        &self.beta
    }

    /// Intercepts per target column.
    pub fn intercepts(&self) -> &[f64] {
        &self.intercept
    }

    /// Predicts targets for new rows.
    ///
    /// # Panics
    /// Panics if `x` has a different column count than the training design.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.x_means.len(), "predict column mismatch");
        let mut out = x.matmul(&self.beta).expect("shape checked");
        for i in 0..out.nrows() {
            let row = out.row_mut(i);
            for (v, &b) in row.iter_mut().zip(self.intercept.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Residuals `Y - Ŷ` on the given data.
    pub fn residuals(&self, x: &Matrix, y: &Matrix) -> Matrix {
        let pred = self.predict(x);
        y.sub(&pred).expect("prediction shape matches target")
    }

    /// In-sample plain r² averaged over target columns.
    pub fn r2_in_sample(&self, x: &Matrix, y: &Matrix) -> f64 {
        let pred = self.predict(x);
        let y_means = y.column_means();
        let mut total = 0.0;
        let mut counted = 0usize;
        for j in 0..y.ncols() {
            let mut rss = 0.0;
            let mut tss = 0.0;
            for i in 0..y.nrows() {
                let e = y[(i, j)] - pred[(i, j)];
                rss += e * e;
                let d = y[(i, j)] - y_means[j];
                tss += d * d;
            }
            if tss > 0.0 {
                total += 1.0 - rss / tss;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 x0 - 3 x1 + 5
        let x = Matrix::from_rows(&[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0], [0.5, 2.0]]);
        let y_vals: Vec<f64> = (0..5).map(|i| 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)] + 5.0).collect();
        let y = Matrix::column_vector(&y_vals);
        let m = OlsModel::fit(&x, &y).unwrap();
        assert!((m.coefficients()[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((m.coefficients()[(1, 0)] + 3.0).abs() < 1e-10);
        assert!((m.intercepts()[0] - 5.0).abs() < 1e-10);
        assert!((m.r2_in_sample(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residuals_sum_to_zero_with_intercept() {
        let x = Matrix::from_rows(&[[1.0], [2.0], [3.0], [4.0]]);
        let y = Matrix::column_vector(&[1.1, 1.9, 3.2, 3.8]);
        let m = OlsModel::fit(&x, &y).unwrap();
        let r = m.residuals(&x, &y);
        let s: f64 = r.column(0).iter().sum();
        assert!(s.abs() < 1e-10);
    }

    #[test]
    fn multi_target_fit() {
        let x = Matrix::from_rows(&[[1.0], [2.0], [3.0], [4.0]]);
        // col0 = 2x, col1 = -x + 1
        let y = Matrix::from_rows(&[[2.0, 0.0], [4.0, -1.0], [6.0, -2.0], [8.0, -3.0]]);
        let m = OlsModel::fit(&x, &y).unwrap();
        assert!((m.coefficients()[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((m.coefficients()[(0, 1)] + 1.0).abs() < 1e-10);
        assert!((m.intercepts()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_row_mismatch_and_saturation() {
        let x = Matrix::zeros(3, 1);
        let y = Matrix::zeros(4, 1);
        assert!(matches!(OlsModel::fit(&x, &y), Err(MlError::RowMismatch { .. })));
        let x = Matrix::zeros(2, 2);
        let y = Matrix::zeros(2, 1);
        assert!(matches!(OlsModel::fit(&x, &y), Err(MlError::TooFewRows { .. })));
    }

    #[test]
    fn rejects_non_finite() {
        let mut x = Matrix::zeros(4, 1);
        x[(1, 0)] = f64::NAN;
        let y = Matrix::zeros(4, 1);
        assert!(matches!(OlsModel::fit(&x, &y), Err(MlError::NonFiniteInput)));
    }

    #[test]
    fn collinear_design_fails_cleanly() {
        // Second column is a multiple of the first.
        let x = Matrix::from_rows(&[[1.0, 2.0], [2.0, 4.0], [3.0, 6.0], [4.0, 8.0]]);
        let y = Matrix::column_vector(&[1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(OlsModel::fit(&x, &y), Err(MlError::SolveFailed(_))));
    }

    #[test]
    fn constant_target_r2_zero() {
        let x = Matrix::from_rows(&[[1.0], [2.0], [3.0]]);
        let y = Matrix::column_vector(&[7.0, 7.0, 7.0]);
        let m = OlsModel::fit(&x, &y).unwrap();
        assert_eq!(m.r2_in_sample(&x, &y), 0.0);
    }
}
