//! Lasso (L1-penalised least squares) via cyclic coordinate descent.
//!
//! §3.5 of the paper: "we experimented with both L1 penalty (Lasso) and L2
//! penalty (Ridge) … it is preferable to use Ridge regression as its
//! implementation is often faster than Lasso on the same data". This module
//! exists so the repo can reproduce that comparison (the `ablation` bench),
//! and so the Lasso scorer is available as an engine option.
//!
//! Solves `min (1/2n) ‖y − Xβ‖² + λ‖β‖₁` per target column on a
//! standardised design.

use explainit_linalg::Matrix;

use crate::standardize::Standardizer;
use crate::{MlError, Result};

/// A fitted multi-target lasso model.
#[derive(Debug, Clone)]
pub struct LassoModel {
    beta_std: Matrix,
    x_standardizer: Standardizer,
    y_means: Vec<f64>,
    lambda: f64,
    iterations: usize,
}

impl LassoModel {
    /// Fits with penalty `lambda >= 0`, at most `max_iter` full coordinate
    /// sweeps per target, stopping when the largest coefficient update in a
    /// sweep falls below `tol`.
    pub fn fit(x: &Matrix, y: &Matrix, lambda: f64, max_iter: usize, tol: f64) -> Result<Self> {
        if x.nrows() != y.nrows() {
            return Err(MlError::RowMismatch { x_rows: x.nrows(), y_rows: y.nrows() });
        }
        if x.nrows() < 2 {
            return Err(MlError::TooFewRows { rows: x.nrows(), needed: 2 });
        }
        if x.has_non_finite() || y.has_non_finite() {
            return Err(MlError::NonFiniteInput);
        }
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be non-negative");
        let (x_standardizer, xs) = Standardizer::fit_transform(x);
        let y_means = y.column_means();
        let (n, p) = xs.shape();
        let nf = n as f64;
        // Precompute column squared norms (constant columns give 0).
        let mut col_sq = vec![0.0; p];
        for i in 0..n {
            let row = xs.row(i);
            for (c, &v) in col_sq.iter_mut().zip(row.iter()) {
                *c += v * v;
            }
        }
        // Columns of xs, contiguous for the inner loops.
        let cols: Vec<Vec<f64>> = (0..p).map(|j| xs.column(j)).collect();

        let mut beta_std = Matrix::zeros(p, y.ncols());
        let mut iterations = 0usize;
        for t in 0..y.ncols() {
            // Residual starts as centred target.
            let mut resid: Vec<f64> = (0..n).map(|i| y[(i, t)] - y_means[t]).collect();
            let mut beta = vec![0.0; p];
            for _sweep in 0..max_iter {
                iterations += 1;
                let mut max_delta = 0.0f64;
                for j in 0..p {
                    if col_sq[j] <= 0.0 {
                        continue;
                    }
                    let xj = &cols[j];
                    // rho = x_j . (resid + x_j * beta_j)
                    let mut rho = 0.0;
                    for (r, &xv) in resid.iter().zip(xj.iter()) {
                        rho += r * xv;
                    }
                    rho += col_sq[j] * beta[j];
                    // Soft threshold at n * lambda (matching 1/2n loss).
                    let thresh = nf * lambda;
                    let new_beta = soft_threshold(rho, thresh) / col_sq[j];
                    let delta = new_beta - beta[j];
                    if delta != 0.0 {
                        for (r, &xv) in resid.iter_mut().zip(xj.iter()) {
                            *r -= delta * xv;
                        }
                        beta[j] = new_beta;
                        max_delta = max_delta.max(delta.abs());
                    }
                }
                if max_delta < tol {
                    break;
                }
            }
            beta_std.set_column(t, &beta);
        }
        Ok(LassoModel { beta_std, x_standardizer, y_means, lambda, iterations })
    }

    /// The penalty this model was fitted with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Total coordinate-descent sweeps executed across all targets.
    pub fn sweeps(&self) -> usize {
        self.iterations
    }

    /// Coefficients in standardised design space (`p × m`).
    pub fn coefficients_std(&self) -> &Matrix {
        &self.beta_std
    }

    /// Number of non-zero coefficients (sparsity diagnostic).
    pub fn nonzero_count(&self) -> usize {
        self.beta_std.as_slice().iter().filter(|&&v| v != 0.0).count()
    }

    /// Predicts targets for new rows.
    ///
    /// # Panics
    /// Panics if the column count differs from the training design.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let xs = self.x_standardizer.transform(x);
        let mut out = xs.matmul(&self.beta_std).expect("shape checked");
        for i in 0..out.nrows() {
            let row = out.row_mut(i);
            for (v, &m) in row.iter_mut().zip(self.y_means.iter()) {
                *v += m;
            }
        }
        out
    }
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridge::r2_columns_mean;

    fn sparse_data(n: usize, p: usize) -> (Matrix, Matrix) {
        // Only features 0 and 3 matter.
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<f64> =
                (0..p).map(|j| ((i * 131 + j * 733) % 97) as f64 / 97.0 - 0.5).collect();
            let y = 4.0 * row[0] - 3.0 * row[3.min(p - 1)];
            ys.push(y);
            rows.push(row);
        }
        (Matrix::from_rows(&rows), Matrix::column_vector(&ys))
    }

    #[test]
    fn zero_lambda_fits_like_least_squares() {
        let (x, y) = sparse_data(80, 5);
        let m = LassoModel::fit(&x, &y, 0.0, 500, 1e-10).unwrap();
        let pred = m.predict(&x);
        let r2 = r2_columns_mean(&y, &pred, &y.column_means());
        assert!(r2 > 0.999, "r2 = {r2}");
    }

    #[test]
    fn moderate_lambda_recovers_support() {
        let (x, y) = sparse_data(120, 8);
        let m = LassoModel::fit(&x, &y, 0.01, 500, 1e-10).unwrap();
        let beta = m.coefficients_std().column(0);
        // True support {0, 3} should dominate.
        let mag: Vec<f64> = beta.iter().map(|v| v.abs()).collect();
        assert!(mag[0] > 0.1 && mag[3] > 0.1);
        for (j, &v) in mag.iter().enumerate() {
            if j != 0 && j != 3 {
                assert!(v < mag[0] / 5.0, "feature {j} should be small, got {v}");
            }
        }
    }

    #[test]
    fn large_lambda_zeroes_everything() {
        let (x, y) = sparse_data(60, 5);
        let m = LassoModel::fit(&x, &y, 1e6, 100, 1e-10).unwrap();
        assert_eq!(m.nonzero_count(), 0);
    }

    #[test]
    fn sparsity_increases_with_lambda() {
        let (x, y) = sparse_data(100, 10);
        let mut prev = usize::MAX;
        for &l in &[0.0001, 0.01, 0.1, 1.0] {
            let m = LassoModel::fit(&x, &y, l, 500, 1e-10).unwrap();
            let nz = m.nonzero_count();
            assert!(nz <= prev, "non-zeros must not grow with lambda");
            prev = nz;
        }
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.5, 2.0), 0.0);
        assert_eq!(soft_threshold(-1.5, 2.0), 0.0);
    }

    #[test]
    fn constant_feature_skipped() {
        let x = Matrix::from_rows(&[[1.0, 3.0], [2.0, 3.0], [3.0, 3.0], [4.0, 3.0]]);
        let y = Matrix::column_vector(&[1.0, 2.0, 3.0, 4.0]);
        let m = LassoModel::fit(&x, &y, 0.001, 200, 1e-10).unwrap();
        // Constant column must get zero coefficient.
        assert_eq!(m.coefficients_std()[(1, 0)], 0.0);
        let pred = m.predict(&x);
        assert!(!pred.has_non_finite());
    }

    #[test]
    fn error_cases() {
        let x = Matrix::zeros(3, 1);
        let y = Matrix::zeros(2, 1);
        assert!(matches!(LassoModel::fit(&x, &y, 0.1, 10, 1e-8), Err(MlError::RowMismatch { .. })));
    }

    #[test]
    fn multi_target_independent_columns() {
        let (x, y1) = sparse_data(60, 4);
        let zeros = Matrix::zeros(60, 1);
        let y = y1.hcat(&zeros).unwrap();
        let m = LassoModel::fit(&x, &y, 0.01, 300, 1e-10).unwrap();
        // Second target is constant zero -> all zero coefficients.
        for j in 0..4 {
            assert_eq!(m.coefficients_std()[(j, 1)], 0.0);
        }
    }
}
