//! Gaussian random projections (§4.2, "Random projections").
//!
//! The paper projects feature matrices whose dimensionality exceeds `d` into
//! a `d`-dimensional space using a matrix of i.i.d. standard normal entries,
//! then runs the penalised regression there. Projections are resampled per
//! score and the paper averages three scores; the scorer in
//! `explainit-core` handles the averaging, this module provides one
//! projection.
//!
//! Note on the paper's notation: the text writes `P_d` as `T × d`, but
//! `X P_d` with `X : T × n_x` requires `n_x × d` — the cost formula in
//! Table 2 (`O(kLTd(n_x + …))`) and the scikit-learn implementation the
//! authors used both correspond to the feature-space projection implemented
//! here. See DESIGN.md §7.

use explainit_linalg::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A sampled Gaussian projection from `in_dim` to `out_dim` dimensions.
#[derive(Debug, Clone)]
pub struct GaussianProjection {
    matrix: Matrix,
}

impl GaussianProjection {
    /// Samples a projection with entries `N(0, 1/out_dim)` (the `1/√d`
    /// scaling keeps squared norms approximately preserved, per
    /// Johnson–Lindenstrauss).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn sample(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "projection dims must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = 1.0 / (out_dim as f64).sqrt();
        let mut m = Matrix::zeros(in_dim, out_dim);
        for i in 0..in_dim {
            let row = m.row_mut(i);
            for v in row.iter_mut() {
                *v = sample_standard_normal(&mut rng) * scale;
            }
        }
        GaussianProjection { matrix: m }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.matrix.nrows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.matrix.ncols()
    }

    /// Projects a `T × in_dim` matrix to `T × out_dim`.
    ///
    /// # Panics
    /// Panics if `x.ncols() != in_dim`.
    pub fn project(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.in_dim(), "projection input width mismatch");
        x.matmul(&self.matrix).expect("shape checked")
    }
}

/// Projects only when the width exceeds `d` (the paper's rule: identity for
/// matrices already at or below the target dimension). Returns the original
/// matrix clone when no projection is needed.
pub fn project_if_wide(x: &Matrix, d: usize, seed: u64) -> Matrix {
    if x.ncols() <= d {
        x.clone()
    } else {
        GaussianProjection::sample(x.ncols(), d, seed).project(x)
    }
}

/// Box–Muller standard normal sampler (keeps us off rand_distr, which is not
/// in the approved dependency set).
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_shape() {
        let p = GaussianProjection::sample(100, 10, 42);
        assert_eq!(p.in_dim(), 100);
        assert_eq!(p.out_dim(), 10);
        let x = Matrix::filled(20, 100, 1.0);
        assert_eq!(p.project(&x).shape(), (20, 10));
    }

    #[test]
    fn identity_when_narrow() {
        let x = Matrix::filled(5, 8, 2.0);
        let out = project_if_wide(&x, 10, 1);
        assert_eq!(out, x);
    }

    #[test]
    fn projects_when_wide() {
        let x = Matrix::filled(5, 50, 1.0);
        let out = project_if_wide(&x, 10, 1);
        assert_eq!(out.shape(), (5, 10));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = GaussianProjection::sample(20, 5, 7);
        let b = GaussianProjection::sample(20, 5, 7);
        assert_eq!(a.project(&Matrix::identity(20)), b.project(&Matrix::identity(20)));
        let c = GaussianProjection::sample(20, 5, 8);
        assert_ne!(a.project(&Matrix::identity(20)), c.project(&Matrix::identity(20)));
    }

    #[test]
    fn approximately_preserves_norms() {
        // JL property: squared norm preserved in expectation.
        let n = 2000;
        let d = 400;
        let x = {
            let mut m = Matrix::zeros(1, n);
            for j in 0..n {
                m[(0, j)] = ((j % 7) as f64) - 3.0;
            }
            m
        };
        let orig_norm = x.frobenius_norm();
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let p = GaussianProjection::sample(n, d, seed);
            let y = p.project(&x);
            ratios.push(y.frobenius_norm() / orig_norm);
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((mean_ratio - 1.0).abs() < 0.15, "mean ratio {mean_ratio}");
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
