//! Time-series-aware k-fold cross-validation with penalty grid search.
//!
//! §3.5 of the paper: *"we use k-fold cross-validation for model selection
//! (with k = 5), which ensures that the r² score is an estimate of the model
//! performance on unseen data … Since we are dealing with time series data
//! that has rich auto-correlation, we ensure that the validation set's time
//! range does not overlap the training set's time range."*
//!
//! [`TimeSeriesSplit`] partitions the row range into `k` *contiguous* blocks
//! — each validation fold is one block, training is the remaining rows — so
//! validation timestamps never interleave with training timestamps.
//! [`cross_validated_r2`] runs the full protocol: for every penalty in the
//! grid, fit on each training fold, score out-of-sample r² on the held-out
//! block (against the training-mean baseline), and report the best
//! grid-point's mean.

use explainit_linalg::Matrix;

use crate::lasso::LassoModel;
use crate::ridge::{r2_columns_mean, RidgePrecomputed};
use crate::{MlError, Result};

/// Which penalised model the grid search fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenaltyKind {
    /// Ridge (L2) — the paper's recommended default.
    #[default]
    Ridge,
    /// Lasso (L1) — slower; kept for the paper's Ridge-vs-Lasso comparison.
    Lasso,
}

/// Cross-validation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CvConfig {
    /// Number of contiguous folds (the paper uses 5).
    pub k_folds: usize,
    /// Penalty grid (the paper grid-searches over a handful of values).
    pub lambda_grid: Vec<f64>,
    /// Ridge or Lasso.
    pub penalty: PenaltyKind,
}

impl Default for CvConfig {
    fn default() -> Self {
        CvConfig {
            k_folds: 5,
            // Log-spaced grid; Figure 13 shows CV selecting very large λ
            // under the null, so the grid must reach high.
            lambda_grid: vec![1e-1, 1e1, 1e3, 1e5, 1e7],
            penalty: PenaltyKind::Ridge,
        }
    }
}

/// The outcome of a cross-validated fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvScore {
    /// Mean out-of-sample r² at the best grid point (can be negative; the
    /// engine clamps to `[0, 1]` when ranking).
    pub r2: f64,
    /// The penalty selected by the grid search.
    pub best_lambda: f64,
}

/// Contiguous-block splitter for time-ordered rows.
#[derive(Debug, Clone, Copy)]
pub struct TimeSeriesSplit {
    n: usize,
    k: usize,
}

impl TimeSeriesSplit {
    /// Creates a splitter over `n` rows with `k` folds.
    ///
    /// # Panics
    /// Panics if `k < 2` or `n < 2k` (each fold needs at least two rows to
    /// carry any variance signal).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "need at least 2 folds");
        assert!(n >= 2 * k, "need at least {} rows for {k} folds, got {n}", 2 * k);
        TimeSeriesSplit { n, k }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The half-open row range of validation fold `fold`.
    ///
    /// # Panics
    /// Panics if `fold >= k`.
    pub fn validation_range(&self, fold: usize) -> (usize, usize) {
        assert!(fold < self.k, "fold {fold} out of range");
        let base = self.n / self.k;
        let rem = self.n % self.k;
        // First `rem` folds get one extra row.
        let start = fold * base + fold.min(rem);
        let len = base + usize::from(fold < rem);
        (start, start + len)
    }

    /// Training row indices for `fold` (everything outside the validation
    /// block, order preserved).
    pub fn training_indices(&self, fold: usize) -> Vec<usize> {
        let (vs, ve) = self.validation_range(fold);
        (0..vs).chain(ve..self.n).collect()
    }
}

/// Runs the paper's scoring protocol on `(X, Y)` and returns the best
/// cross-validated r².
///
/// Fold-level failures (e.g. a singular fold with λ = 0) count as r² = 0 for
/// that fold rather than aborting the whole hypothesis — one degenerate
/// block of a long time range should not zero out the entire score.
pub fn cross_validated_r2(x: &Matrix, y: &Matrix, cfg: &CvConfig) -> Result<CvScore> {
    if x.nrows() != y.nrows() {
        return Err(MlError::RowMismatch { x_rows: x.nrows(), y_rows: y.nrows() });
    }
    if cfg.lambda_grid.is_empty() {
        return Err(MlError::SolveFailed("empty lambda grid".into()));
    }
    let n = x.nrows();
    if n < 2 * cfg.k_folds {
        return Err(MlError::TooFewRows { rows: n, needed: 2 * cfg.k_folds });
    }
    if x.has_non_finite() || y.has_non_finite() {
        return Err(MlError::NonFiniteInput);
    }
    let split = TimeSeriesSplit::new(n, cfg.k_folds);

    // Pre-slice folds once; reuse across the lambda grid. For ridge, also
    // precompute the λ-independent Gram statistics per fold — the grid then
    // only pays one Cholesky per (fold, λ).
    let mut folds = Vec::with_capacity(cfg.k_folds);
    for f in 0..cfg.k_folds {
        let (vs, ve) = split.validation_range(f);
        let train_idx = split.training_indices(f);
        let x_train = x.select_rows(&train_idx);
        let y_train = y.select_rows(&train_idx);
        let x_val = x.row_range(vs, ve);
        let y_val = y.row_range(vs, ve);
        let pre = match cfg.penalty {
            PenaltyKind::Ridge => Some(RidgePrecomputed::new(&x_train, &y_train)?),
            PenaltyKind::Lasso => None,
        };
        folds.push((x_train, y_train, x_val, y_val, pre));
    }

    let mut best: Option<CvScore> = None;
    for &lambda in &cfg.lambda_grid {
        let mut acc = 0.0;
        for (x_train, y_train, x_val, y_val, pre) in &folds {
            let baseline = y_train.column_means();
            let fold_r2 = match cfg.penalty {
                PenaltyKind::Ridge => pre
                    .as_ref()
                    .expect("precomputed for ridge")
                    .fit(lambda)
                    .map(|m| r2_columns_mean(y_val, &m.predict(x_val), &baseline)),
                PenaltyKind::Lasso => LassoModel::fit(x_train, y_train, lambda, 200, 1e-7)
                    .map(|m| r2_columns_mean(y_val, &m.predict(x_val), &baseline)),
            }
            .unwrap_or(0.0);
            // The paper's score lives in [0, 1] ("percent variance
            // explained"); clamp per fold so one catastrophic
            // extrapolation fold (negative r² of large magnitude, e.g.
            // collinear features whose cancellation breaks out of fold)
            // reads as "no evidence" rather than vetoing the other folds.
            acc += fold_r2.clamp(0.0, 1.0);
        }
        let mean = acc / cfg.k_folds as f64;
        if best.is_none_or(|b| mean > b.r2) {
            best = Some(CvScore { r2: mean, best_lambda: lambda });
        }
    }
    Ok(best.expect("non-empty grid produces a score"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal_data(n: usize) -> (Matrix, Matrix) {
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.11).sin();
            let b = (i as f64 * 0.05).cos();
            rows.push([a, b]);
            ys.push(2.0 * a + b + 0.05 * ((i * 37 % 11) as f64 - 5.0));
        }
        (Matrix::from_rows(&rows), Matrix::column_vector(&ys))
    }

    fn noise_data(n: usize, p: usize) -> (Matrix, Matrix) {
        // Deterministic pseudo-random, no real relationship.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push((0..p).map(|_| next()).collect::<Vec<f64>>());
            ys.push(next());
        }
        (Matrix::from_rows(&rows), Matrix::column_vector(&ys))
    }

    #[test]
    fn split_blocks_are_contiguous_and_cover() {
        let split = TimeSeriesSplit::new(23, 5);
        let mut covered = [false; 23];
        let mut prev_end = 0;
        for f in 0..5 {
            let (s, e) = split.validation_range(f);
            assert_eq!(s, prev_end, "blocks must be contiguous");
            for c in covered[s..e].iter_mut() {
                assert!(!*c);
                *c = true;
            }
            prev_end = e;
        }
        assert_eq!(prev_end, 23);
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn training_excludes_validation() {
        let split = TimeSeriesSplit::new(20, 4);
        for f in 0..4 {
            let (vs, ve) = split.validation_range(f);
            let train = split.training_indices(f);
            assert_eq!(train.len(), 20 - (ve - vs));
            assert!(train.iter().all(|&i| i < vs || i >= ve));
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn split_rejects_tiny_n() {
        TimeSeriesSplit::new(5, 5);
    }

    #[test]
    fn real_signal_scores_high() {
        let (x, y) = signal_data(300);
        let score = cross_validated_r2(&x, &y, &CvConfig::default()).unwrap();
        assert!(score.r2 > 0.8, "score = {:?}", score);
    }

    #[test]
    fn pure_noise_scores_near_zero() {
        let (x, y) = noise_data(300, 5);
        let score = cross_validated_r2(&x, &y, &CvConfig::default()).unwrap();
        assert!(score.r2 < 0.15, "score = {:?}", score);
    }

    #[test]
    fn overfitting_controlled_with_many_features() {
        // p close to n/2: in-sample r² would be huge; CV must stay low.
        let (x, y) = noise_data(100, 40);
        let score = cross_validated_r2(&x, &y, &CvConfig::default()).unwrap();
        assert!(score.r2 < 0.3, "score = {:?}", score);
    }

    #[test]
    fn grid_prefers_small_lambda_for_clean_signal() {
        let (x, y) = signal_data(200);
        let cfg = CvConfig { lambda_grid: vec![0.01, 1e6], ..CvConfig::default() };
        let score = cross_validated_r2(&x, &y, &cfg).unwrap();
        assert_eq!(score.best_lambda, 0.01);
    }

    #[test]
    fn lasso_penalty_path_works() {
        let (x, y) = signal_data(150);
        let cfg = CvConfig {
            penalty: PenaltyKind::Lasso,
            lambda_grid: vec![1e-4, 1e-2, 1.0],
            ..CvConfig::default()
        };
        let score = cross_validated_r2(&x, &y, &cfg).unwrap();
        assert!(score.r2 > 0.7, "score = {:?}", score);
    }

    #[test]
    fn error_on_too_few_rows() {
        let x = Matrix::zeros(6, 2);
        let y = Matrix::zeros(6, 1);
        assert!(matches!(
            cross_validated_r2(&x, &y, &CvConfig::default()),
            Err(MlError::TooFewRows { .. })
        ));
    }

    #[test]
    fn error_on_empty_grid() {
        let (x, y) = signal_data(60);
        let cfg = CvConfig { lambda_grid: vec![], ..CvConfig::default() };
        assert!(cross_validated_r2(&x, &y, &cfg).is_err());
    }
}
