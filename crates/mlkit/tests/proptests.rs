//! Property tests for the ML kit: regression invariants that must hold for
//! any data, not just hand-picked fixtures.

use explainit_linalg::Matrix;
use explainit_ml::ridge::r2_columns_mean;
use explainit_ml::{cross_validated_r2, CvConfig, LassoModel, OlsModel, RidgeModel, Standardizer};
use proptest::prelude::*;

fn data_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ridge_shrinkage_is_monotone(x in data_strategy(40, 4), y in data_strategy(40, 1)) {
        let mut prev = f64::INFINITY;
        for &l in &[0.01, 1.0, 100.0, 1e4] {
            let m = RidgeModel::fit(&x, &y, l).expect("fit");
            let norm = m.coefficient_norm_sq();
            prop_assert!(norm <= prev + 1e-9, "shrinkage must be monotone in lambda");
            prev = norm;
        }
    }

    #[test]
    fn ridge_prediction_is_finite(x in data_strategy(30, 5), y in data_strategy(30, 2)) {
        let m = RidgeModel::fit(&x, &y, 1.0).expect("fit");
        prop_assert!(!m.predict(&x).has_non_finite());
    }

    #[test]
    fn ols_residuals_orthogonal_to_design(x in data_strategy(30, 3), y in data_strategy(30, 1)) {
        let m = match OlsModel::fit(&x, &y) {
            Ok(m) => m,
            Err(_) => return Ok(()), // rank-deficient draw
        };
        let resid = m.residuals(&x, &y);
        // Orthogonality to the *centred* design (fit is through centring).
        let means = x.column_means();
        let mut xc = x.clone();
        xc.center_columns_in_place(&means);
        let dot = xc.xt_mul(&resid).expect("shape");
        prop_assert!(dot.max_abs() < 1e-6 * (1.0 + x.max_abs() * y.max_abs()) * 30.0);
        // Residuals sum to ~0 per column (intercept).
        let col = resid.column(0);
        let s: f64 = col.iter().sum();
        prop_assert!(s.abs() < 1e-6 * (1.0 + y.max_abs()) * 30.0);
    }

    #[test]
    fn lasso_sparsity_monotone(x in data_strategy(40, 6), y in data_strategy(40, 1)) {
        let mut prev = usize::MAX;
        for &l in &[1e-4, 1e-2, 1.0, 100.0] {
            let m = LassoModel::fit(&x, &y, l, 300, 1e-9).expect("fit");
            let nz = m.nonzero_count();
            prop_assert!(nz <= prev, "sparsity must grow with lambda");
            prev = nz;
        }
    }

    #[test]
    fn standardizer_round_trip(x in data_strategy(20, 3)) {
        let (s, mut t) = Standardizer::fit_transform(&x);
        s.inverse_transform_in_place(&mut t);
        let diff = t.sub(&x).expect("shape");
        prop_assert!(diff.max_abs() < 1e-9 * (1.0 + x.max_abs()));
    }

    #[test]
    fn cv_score_is_clamped_to_unit_interval(x in data_strategy(40, 3), y in data_strategy(40, 1)) {
        let score = cross_validated_r2(&x, &y, &CvConfig::default()).expect("cv");
        prop_assert!(score.r2 >= 0.0 && score.r2 <= 1.0, "score {}", score.r2);
    }

    #[test]
    fn perfect_linear_signal_scores_near_one(x in data_strategy(60, 2), b0 in 0.5f64..3.0, b1 in -3.0f64..-0.5) {
        // y constructed exactly from x: CV r² must approach 1 unless the
        // design is degenerate.
        let y_vals: Vec<f64> = (0..60).map(|i| b0 * x[(i, 0)] + b1 * x[(i, 1)]).collect();
        let std = explainit_stats::std_dev(&y_vals);
        prop_assume!(std > 1.0); // skip degenerate draws
        let y = Matrix::column_vector(&y_vals);
        let score = cross_validated_r2(&x, &y, &CvConfig::default()).expect("cv");
        prop_assert!(score.r2 > 0.9, "score {}", score.r2);
    }

    #[test]
    fn r2_of_exact_prediction_is_one(y in data_strategy(25, 2)) {
        let means = y.column_means();
        let r2 = r2_columns_mean(&y, &y, &means);
        // 1.0 unless a column is constant (skipped), in which case the other
        // column still yields 1.0, or 0.0 when all constant.
        prop_assert!(r2 == 0.0 || (r2 - 1.0).abs() < 1e-12);
    }
}
