//! Property-based tests for the linear algebra kernels.

use explainit_linalg::{dot, Cholesky, Matrix, QrDecomposition};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a tall matrix (rows >= cols).
fn tall_matrix_strategy() -> impl Strategy<Value = Matrix> {
    (2..=6usize, 1..=4usize).prop_flat_map(|(extra, c)| {
        let r = c + extra;
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn xtx_is_symmetric_psd_diagonal(m in matrix_strategy(8)) {
        let g = m.xtx();
        for i in 0..g.nrows() {
            // Diagonal of a Gram matrix is a sum of squares.
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..g.ncols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_associates_with_vectors(m in matrix_strategy(6), s in -3.0f64..3.0) {
        // (s*A) v == s*(A v)
        let v: Vec<f64> = (0..m.ncols()).map(|i| (i as f64) - 1.0).collect();
        let av = m.matvec(&v).unwrap();
        let mut sm = m.clone();
        sm.scale_in_place(s);
        let smv = sm.matvec(&v).unwrap();
        for (a, b) in av.iter().zip(smv.iter()) {
            prop_assert!((a * s - b).abs() < 1e-7);
        }
    }

    #[test]
    fn dot_is_bilinear(a in proptest::collection::vec(-5.0f64..5.0, 1..32), s in -4.0f64..4.0) {
        let b: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        let scaled: Vec<f64> = a.iter().map(|v| v * s).collect();
        let lhs = dot(&scaled, &b);
        let rhs = s * dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn cholesky_round_trip(m in tall_matrix_strategy()) {
        // X^T X + I is always SPD.
        let mut a = m.xtx();
        a.add_diagonal(1.0);
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        let diff = recon.sub(&a).unwrap();
        prop_assert!(diff.max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_solve_residual_small(m in tall_matrix_strategy()) {
        let mut a = m.xtx();
        a.add_diagonal(1.0);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-7 * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn qr_residual_orthogonal_to_columns(m in tall_matrix_strategy()) {
        // Least-squares residuals are orthogonal to the design columns —
        // the exact property Appendix B's proof relies on.
        let n = m.nrows();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let qr = match QrDecomposition::factor(&m) {
            Ok(qr) => qr,
            Err(_) => return Ok(()),
        };
        let beta = match qr.solve_vec(&y) {
            Ok(b) => b,
            Err(_) => return Ok(()), // rank-deficient random draw
        };
        let fitted = m.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(fitted.iter()).map(|(a, b)| a - b).collect();
        for j in 0..m.ncols() {
            let col = m.column(j);
            prop_assert!(dot(&col, &resid).abs() < 1e-6 * (1.0 + m.max_abs() * 10.0));
        }
    }

    #[test]
    fn hcat_preserves_columns(a in matrix_strategy(5)) {
        let b = a.clone();
        let h = a.hcat(&b).unwrap();
        prop_assert_eq!(h.ncols(), a.ncols() * 2);
        for j in 0..a.ncols() {
            prop_assert_eq!(h.column(j), a.column(j));
            prop_assert_eq!(h.column(j + a.ncols()), a.column(j));
        }
    }

    #[test]
    fn select_rows_matches_row_access(m in matrix_strategy(6)) {
        let idx: Vec<usize> = (0..m.nrows()).rev().collect();
        let sel = m.select_rows(&idx);
        for (dst, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(dst), m.row(src));
        }
    }
}
